"""Java Card bytecode subset.

The paper's case study is "a java card virtual machine implemented as
functional, un-timed SystemC model" whose bytecode interpreter talks
to a hardware stack (§4.3).  This module defines the instruction
subset the interpreter executes — the stack-centric core of the Java
Card VM spec: short (16-bit) constants, locals, arithmetic, stack
manipulation, branches, static fields and static method invocation.

Programs are written as ``(mnemonic, *operands)`` tuples and assembled
into :class:`Method` objects; branch targets are label strings.
"""

from __future__ import annotations

import dataclasses
import typing

#: value range of the Java Card ``short`` type
SHORT_MIN = -0x8000
SHORT_MAX = 0x7FFF


def to_short(value: int) -> int:
    """Wrap *value* to the signed 16-bit range (JCVM arithmetic)."""
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


#: mnemonic -> number of immediate operands
OPCODES: typing.Dict[str, int] = {
    # constants
    "sconst": 1,      # push immediate short
    # locals
    "sload": 1,       # push local[i]
    "sstore": 1,      # local[i] = pop
    "sinc": 2,        # local[i] += const
    # operand stack
    "dup": 0, "pop": 0, "swap": 0,
    # arithmetic / logic (binary ops pop two, push one)
    "sadd": 0, "ssub": 0, "smul": 0, "sdiv": 0, "srem": 0,
    "sand": 0, "sor": 0, "sxor": 0, "sshl": 0, "sshr": 0,
    "sneg": 0,
    # static fields
    "getstatic": 1, "putstatic": 1,
    # control flow (operand: label)
    "goto": 1, "ifeq": 1, "ifne": 1, "iflt": 1, "ifge": 1,
    "if_scmpeq": 1, "if_scmpne": 1, "if_scmplt": 1, "if_scmpge": 1,
    # methods
    "invokestatic": 1,
    "sreturn": 0, "return": 0,
}

BINARY_OPS = {"sadd", "ssub", "smul", "sdiv", "srem", "sand", "sor",
              "sxor", "sshl", "sshr", "if_scmpeq", "if_scmpne",
              "if_scmplt", "if_scmpge"}


class BytecodeError(ValueError):
    """Malformed bytecode program."""


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One assembled instruction."""

    mnemonic: str
    operands: typing.Tuple[typing.Any, ...] = ()


@dataclasses.dataclass
class Method:
    """An assembled method: instructions + resolved branch targets."""

    name: str
    instructions: typing.List[Instruction]
    num_locals: int
    labels: typing.Dict[str, int]

    def __len__(self) -> int:
        return len(self.instructions)


Statement = typing.Union[str, typing.Tuple]


def assemble_method(name: str, statements: typing.Sequence[Statement],
                    num_locals: int = 8) -> Method:
    """Assemble *statements* into a :class:`Method`.

    A statement is a mnemonic string (no operands), a tuple
    ``(mnemonic, operand...)``, or a ``("label", name)`` marker.
    """
    labels: typing.Dict[str, int] = {}
    pending: typing.List[typing.Tuple[str, typing.Tuple]] = []
    for statement in statements:
        if isinstance(statement, str):
            mnemonic, operands = statement, ()
        else:
            mnemonic, operands = statement[0], tuple(statement[1:])
        if mnemonic == "label":
            (label,) = operands
            if label in labels:
                raise BytecodeError(f"duplicate label {label!r}")
            labels[label] = len(pending)
            continue
        if mnemonic not in OPCODES:
            raise BytecodeError(f"unknown mnemonic {mnemonic!r}")
        if len(operands) != OPCODES[mnemonic]:
            raise BytecodeError(
                f"{mnemonic} expects {OPCODES[mnemonic]} operands, "
                f"got {len(operands)}")
        pending.append((mnemonic, operands))
    instructions = [Instruction(m, ops) for m, ops in pending]
    # validate branch targets
    for instruction in instructions:
        if instruction.mnemonic in ("goto", "ifeq", "ifne", "iflt",
                                    "ifge", "if_scmpeq", "if_scmpne",
                                    "if_scmplt", "if_scmpge"):
            target = instruction.operands[0]
            if target not in labels:
                raise BytecodeError(f"undefined label {target!r}")
    return Method(name, instructions, num_locals, labels)


@dataclasses.dataclass
class Package:
    """A set of methods plus static fields — a minimal applet image."""

    methods: typing.Dict[str, Method]
    num_statics: int = 16

    def method(self, name: str) -> Method:
        try:
            return self.methods[name]
        except KeyError:
            raise BytecodeError(f"undefined method {name!r}") from None


def package(*methods: Method, num_statics: int = 16) -> Package:
    """Bundle assembled methods into a :class:`Package`."""
    return Package({method.name: method for method in methods},
                   num_statics)
