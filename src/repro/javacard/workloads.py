"""Benchmark bytecode programs for the HW/SW interface exploration.

Three applet-like kernels with different bytecode mixes:

* ``sum_of_squares`` — arithmetic-heavy (many binary operators, so the
  PACKED pop2 register pays off),
* ``fibonacci``      — loads/stores/adds with branches,
* ``checksum``       — xor/shift over static fields (statics traffic
  makes the address-map dimension matter).
"""

from __future__ import annotations

import typing

from .bytecode import Method, Package, assemble_method, package, to_short


def sum_of_squares_method() -> Method:
    """sum(i*i for i in 1..n), argument n in local 0."""
    return assemble_method("sum_of_squares/1", [
        ("sconst", 0), ("sstore", 1),        # acc = 0
        ("sconst", 1), ("sstore", 2),        # i = 1
        ("label", "loop"),
        ("sload", 2), ("sload", 2), "smul",  # i*i
        ("sload", 1), "sadd", ("sstore", 1),  # acc += i*i
        ("sinc", 2, 1),                      # i += 1
        ("sload", 2), ("sload", 0),
        ("if_scmpge", "done"),
        ("goto", "loop"),
        ("label", "done"),
        ("sload", 1), "sreturn",
    ])


def fibonacci_method() -> Method:
    """Iterative Fibonacci, argument n in local 0."""
    return assemble_method("fibonacci/1", [
        ("sconst", 0), ("sstore", 1),        # a = 0
        ("sconst", 1), ("sstore", 2),        # b = 1
        ("label", "loop"),
        ("sload", 0), ("ifeq", "done"),      # while n != 0
        ("sload", 1), ("sload", 2), "sadd", ("sstore", 3),  # t = a+b
        ("sload", 2), ("sstore", 1),         # a = b
        ("sload", 3), ("sstore", 2),         # b = t
        ("sinc", 0, -1),                     # n -= 1
        ("goto", "loop"),
        ("label", "done"),
        ("sload", 1), "sreturn",
    ])


def checksum_method() -> Method:
    """XOR/shift checksum over the first 8 static fields."""
    return assemble_method("checksum/0", [
        ("sconst", 0), ("sstore", 1),        # acc
        ("sconst", 0), ("sstore", 2),        # i
        ("label", "loop"),
        # acc = (acc << 1) ^ statics[i]  (index unrolled below)
        ("sload", 1), ("sconst", 1), "sshl",
        ("getstatic", 0), "sxor", ("sstore", 1),
        ("sload", 1), ("putstatic", 1),
        ("sinc", 2, 1),
        ("sload", 2), ("sconst", 8),
        ("if_scmplt", "loop"),
        ("sload", 1), "sreturn",
    ])


def benchmark_package() -> Package:
    """All benchmark methods bundled as one applet package."""
    return package(sum_of_squares_method(), fibonacci_method(),
                   checksum_method())


#: (method name, arguments, python reference function)
BENCHMARKS: typing.List[typing.Tuple[str, typing.Tuple[int, ...],
                                     typing.Callable[..., int]]] = [
    ("sum_of_squares/1", (12,),
     lambda n: to_short(sum(i * i for i in range(1, n)))),
    ("fibonacci/1", (10,),
     lambda n: _fib(n)),
    ("checksum/0", (), lambda: _checksum()),
]


def _fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, to_short(a + b)
    return a


def _checksum() -> int:
    acc = 0
    for _ in range(8):
        acc = to_short(to_short(acc << 1) ^ 0)
    return acc
