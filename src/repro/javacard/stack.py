"""The Java Card operand stack: functional model and hardware slave.

Figure 7 of the paper: the functional model's bytecode interpreter
calls a stack interface directly; communication refinement inserts a
master adapter, the TLM bus and a slave adapter in between, where the
slave adapter "restores the original stack interface calls and invokes
the interface method of the functional stack model".

:class:`FunctionalStack` is that functional model;
:class:`HardwareStack` is the stack coprocessor as a bus slave — the
slave adapter plus the functional stack behind special-function
registers.  Its register organisation is an exploration parameter
(§4.3: "we change the address map, organization of these registers and
used bus transactions to access them").
"""

from __future__ import annotations

import abc
import enum
import typing

from repro.ec import WaitStates

from .bytecode import to_short
from repro.soc.peripheral import Peripheral


class StackError(RuntimeError):
    """Overflow or underflow of the operand stack."""


class StackInterface(abc.ABC):
    """What the bytecode interpreter needs from an operand stack."""

    @abc.abstractmethod
    def push(self, value: int) -> None:
        """Push a short."""

    @abc.abstractmethod
    def pop(self) -> int:
        """Pop a short."""

    @abc.abstractmethod
    def top(self) -> int:
        """Peek the short on top without popping."""

    @abc.abstractmethod
    def depth(self) -> int:
        """Number of shorts on the stack."""

    # composite operations the hardware stack can accelerate ----------------

    def pop2(self) -> typing.Tuple[int, int]:
        """Pop two shorts: returns (top, below-top)."""
        return self.pop(), self.pop()

    def dup(self) -> None:
        self.push(self.top())

    def swap(self) -> None:
        first, second = self.pop(), self.pop()
        self.push(first)
        self.push(second)


class FunctionalStack(StackInterface):
    """The untimed functional stack model of Figure 7(a)."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._values: typing.List[int] = []
        self.max_depth = 0

    def push(self, value: int) -> None:
        if len(self._values) >= self.capacity:
            raise StackError("operand stack overflow")
        self._values.append(to_short(value))
        if len(self._values) > self.max_depth:
            self.max_depth = len(self._values)

    def pop(self) -> int:
        if not self._values:
            raise StackError("operand stack underflow")
        return self._values.pop()

    def top(self) -> int:
        if not self._values:
            raise StackError("operand stack underflow")
        return self._values[-1]

    def depth(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()


class SfrLayout(enum.Enum):
    """Register organisations explored for the HW/SW interface (§4.3).

    * ``COMMAND`` — one DATA register and one COMMAND register; every
      stack operation costs two bus transactions (write DATA + write
      CMD, or write CMD + read DATA).
    * ``DEDICATED`` — dedicated PUSH/POP/TOP addresses; one bus
      transaction per stack operation.
    * ``PACKED`` — like DEDICATED plus a POP2 register delivering two
      16-bit operands in one 32-bit read (binary bytecodes pay one bus
      read instead of two).
    """

    COMMAND = "command"
    DEDICATED = "dedicated"
    PACKED = "packed"


# word-offsets of the special function registers
REG_DATA = 0
REG_COMMAND = 1
REG_STATUS = 2
REG_PUSH = 3
REG_POP = 4
REG_TOP = 5
REG_POP2 = 6

NUM_REGISTERS = 8

CMD_PUSH = 1
CMD_POP = 2
CMD_TOP = 3

STATUS_EMPTY = 1 << 0
STATUS_FULL = 1 << 1
STATUS_ERROR = 1 << 2


class HardwareStack(Peripheral):
    """The stack coprocessor: SFR file in front of a functional stack."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "stack_op": 1.4,    # the coprocessor's own push/pop datapath
    })

    def __init__(self, base_address: int,
                 layout: SfrLayout = SfrLayout.DEDICATED,
                 capacity: int = 256,
                 wait_states: WaitStates = WaitStates(),
                 name: str = "hw_stack") -> None:
        super().__init__(base_address, NUM_REGISTERS, wait_states=wait_states,
                         name=name)
        self.layout = layout
        self.stack = FunctionalStack(capacity)
        self.error_flag = False
        self.on_write(REG_COMMAND, self._on_command)
        self.on_write(REG_PUSH, self._on_push)
        self.on_read(REG_POP, self._on_pop)
        self.on_read(REG_TOP, self._on_top)
        self.on_read(REG_POP2, self._on_pop2)
        self.on_read(REG_STATUS, self._status)

    # -- slave-adapter behaviour: SFR access -> stack interface calls -------

    def _guard(self, operation: typing.Callable[[], int]) -> int:
        try:
            result = operation()
        except StackError:
            self.error_flag = True
            return 0
        self.book("stack_op")
        return result & 0xFFFF

    def _on_command(self, command: int) -> None:
        if command == CMD_PUSH:
            data = to_short(self.registers[REG_DATA])
            self._guard(lambda: self.stack.push(data) or 0)
        elif command == CMD_POP:
            self.registers[REG_DATA] = self._guard(self.stack.pop)
        elif command == CMD_TOP:
            self.registers[REG_DATA] = self._guard(self.stack.top)
        else:
            self.error_flag = True

    def _on_push(self, value: int) -> None:
        if self.layout is SfrLayout.COMMAND:
            self.error_flag = True  # register absent in this layout
            return
        self._guard(lambda: self.stack.push(to_short(value)) or 0)

    def _on_pop(self) -> int:
        if self.layout is SfrLayout.COMMAND:
            self.error_flag = True
            return 0
        return self._guard(self.stack.pop)

    def _on_top(self) -> int:
        if self.layout is SfrLayout.COMMAND:
            self.error_flag = True
            return 0
        return self._guard(self.stack.top)

    def _on_pop2(self) -> int:
        if self.layout is not SfrLayout.PACKED:
            self.error_flag = True
            return 0
        first = self._guard(self.stack.pop)
        second = self._guard(self.stack.pop)
        return (second << 16) | first

    def _status(self) -> int:
        status = 0
        if self.stack.depth() == 0:
            status |= STATUS_EMPTY
        if self.stack.depth() >= self.stack.capacity:
            status |= STATUS_FULL
        if self.error_flag:
            status |= STATUS_ERROR
        return status
