"""Java Card VM case study (Figure 7, §4.3): functional bytecode
interpreter, hardware stack coprocessor, communication-refinement
adapters and the HW/SW interface design-space exploration."""

from .adapters import StackMasterAdapter, StaticsBusPort
from .bytecode import (BytecodeError, Instruction, Method, Package,
                       assemble_method, package, to_short)
from .explore import (ConfigResult, ExplorationResult, InterfaceConfig,
                      default_configurations, evaluate_configuration,
                      run_exploration)
from .interpreter import BytecodeInterpreter, InterpreterError
from .stack import (FunctionalStack, HardwareStack, SfrLayout,
                    StackError, StackInterface)
from .workloads import BENCHMARKS, benchmark_package

__all__ = [
    "BENCHMARKS",
    "BytecodeError",
    "BytecodeInterpreter",
    "ConfigResult",
    "ExplorationResult",
    "FunctionalStack",
    "HardwareStack",
    "Instruction",
    "InterfaceConfig",
    "InterpreterError",
    "Method",
    "Package",
    "SfrLayout",
    "StackError",
    "StackInterface",
    "StackMasterAdapter",
    "StaticsBusPort",
    "assemble_method",
    "benchmark_package",
    "default_configurations",
    "evaluate_configuration",
    "package",
    "run_exploration",
    "to_short",
]
