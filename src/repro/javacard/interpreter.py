"""The Java Card bytecode interpreter (functional, untimed).

The paper's case study model: "The used application is a java card
virtual machine implemented as functional, un-timed SystemC model"
whose bytecode interpreter "invokes the same interface functions as in
the pure functional model" after refinement (§4.3).  Exactly so here:
the interpreter is written once against :class:`StackInterface`; pass
a :class:`FunctionalStack` for the untimed model of Figure 7(a) or a
bus master adapter for the refined model of Figure 7(b).
"""

from __future__ import annotations

import typing

from .bytecode import (BINARY_OPS, BytecodeError, Instruction, Method,
                       Package, to_short)
from .stack import StackInterface


class InterpreterError(RuntimeError):
    """Runtime failure of the bytecode program."""


class BytecodeInterpreter:
    """Executes :class:`Package` methods against a stack interface."""

    def __init__(self, package: Package, stack: StackInterface,
                 max_steps: int = 1_000_000,
                 statics_port: typing.Optional[typing.Any] = None) -> None:
        self.package = package
        self.stack = stack
        self.statics = [0] * package.num_statics
        #: optional refined static-field storage (read/write methods);
        #: None keeps statics in the interpreter (functional model)
        self.statics_port = statics_port
        self.max_steps = max_steps
        self.instructions_executed = 0
        self.bytecode_counts: typing.Dict[str, int] = {}

    def _get_static(self, index: int) -> int:
        if self.statics_port is not None:
            return self.statics_port.read(index)
        return self.statics[index]

    def _put_static(self, index: int, value: int) -> None:
        if self.statics_port is not None:
            self.statics_port.write(index, value)
        else:
            self.statics[index] = value

    # ------------------------------------------------------------------

    def run(self, method_name: str,
            arguments: typing.Sequence[int] = ()) -> typing.Optional[int]:
        """Invoke *method_name* with *arguments*; returns the popped
        short for ``sreturn`` methods, None for ``return`` methods."""
        method = self.package.method(method_name)
        return self._invoke(method, list(arguments), depth=0)

    def _invoke(self, method: Method, arguments: typing.List[int],
                depth: int) -> typing.Optional[int]:
        if depth > 64:
            raise InterpreterError("method call depth exceeded")
        local_variables = [0] * method.num_locals
        for index, argument in enumerate(arguments):
            local_variables[index] = to_short(argument)
        pc = 0
        stack = self.stack
        while pc < len(method.instructions):
            if self.instructions_executed >= self.max_steps:
                raise InterpreterError(
                    f"step budget exhausted in {method.name}")
            instruction = method.instructions[pc]
            self.instructions_executed += 1
            mnemonic = instruction.mnemonic
            self.bytecode_counts[mnemonic] = \
                self.bytecode_counts.get(mnemonic, 0) + 1
            pc += 1
            if mnemonic == "sconst":
                stack.push(instruction.operands[0])
            elif mnemonic == "sload":
                stack.push(local_variables[instruction.operands[0]])
            elif mnemonic == "sstore":
                local_variables[instruction.operands[0]] = stack.pop()
            elif mnemonic == "sinc":
                index, constant = instruction.operands
                local_variables[index] = to_short(
                    local_variables[index] + constant)
            elif mnemonic == "dup":
                stack.dup()
            elif mnemonic == "pop":
                stack.pop()
            elif mnemonic == "swap":
                stack.swap()
            elif mnemonic == "sneg":
                stack.push(to_short(-stack.pop()))
            elif mnemonic in BINARY_OPS:
                first, second = stack.pop2()
                if mnemonic.startswith("if_"):
                    pc = self._compare_branch(method, mnemonic, second,
                                              first, instruction, pc)
                else:
                    stack.push(self._binary(mnemonic, second, first))
            elif mnemonic in ("ifeq", "ifne", "iflt", "ifge"):
                value = stack.pop()
                if self._condition(mnemonic, value):
                    pc = method.labels[instruction.operands[0]]
            elif mnemonic == "goto":
                pc = method.labels[instruction.operands[0]]
            elif mnemonic == "getstatic":
                stack.push(self._get_static(instruction.operands[0]))
            elif mnemonic == "putstatic":
                self._put_static(instruction.operands[0], stack.pop())
            elif mnemonic == "invokestatic":
                callee = self.package.method(instruction.operands[0])
                called_arguments = [stack.pop() for _ in
                                    range(self._arity(callee))][::-1]
                result = self._invoke(callee, called_arguments, depth + 1)
                if result is not None:
                    stack.push(result)
            elif mnemonic == "sreturn":
                return stack.pop()
            elif mnemonic == "return":
                return None
            else:  # pragma: no cover - assembler rejects unknowns
                raise BytecodeError(f"unhandled mnemonic {mnemonic!r}")
        raise InterpreterError(
            f"fell off the end of method {method.name!r}")

    # ------------------------------------------------------------------

    @staticmethod
    def _arity(method: Method) -> int:
        """Calling convention: methods declare arity via name suffix
        ``/N`` (e.g. ``"max/2"``); otherwise zero arguments."""
        if "/" in method.name:
            return int(method.name.rsplit("/", 1)[1])
        return 0

    @staticmethod
    def _binary(mnemonic: str, a: int, b: int) -> int:
        if mnemonic == "sadd":
            return to_short(a + b)
        if mnemonic == "ssub":
            return to_short(a - b)
        if mnemonic == "smul":
            return to_short(a * b)
        if mnemonic == "sdiv":
            if b == 0:
                raise InterpreterError("division by zero")
            return to_short(int(a / b))
        if mnemonic == "srem":
            if b == 0:
                raise InterpreterError("division by zero")
            return to_short(a - int(a / b) * b)
        if mnemonic == "sand":
            return to_short(a & b)
        if mnemonic == "sor":
            return to_short(a | b)
        if mnemonic == "sxor":
            return to_short(a ^ b)
        if mnemonic == "sshl":
            return to_short(a << (b & 0x1F))
        if mnemonic == "sshr":
            return to_short(a >> (b & 0x1F))
        raise BytecodeError(f"not a binary op: {mnemonic!r}")

    @staticmethod
    def _condition(mnemonic: str, value: int) -> bool:
        if mnemonic == "ifeq":
            return value == 0
        if mnemonic == "ifne":
            return value != 0
        if mnemonic == "iflt":
            return value < 0
        return value >= 0  # ifge

    def _compare_branch(self, method: Method, mnemonic: str, a: int,
                        b: int, instruction: Instruction, pc: int) -> int:
        taken = {
            "if_scmpeq": a == b,
            "if_scmpne": a != b,
            "if_scmplt": a < b,
            "if_scmpge": a >= b,
        }[mnemonic]
        if taken:
            return method.labels[instruction.operands[0]]
        return pc
