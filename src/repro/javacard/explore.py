"""HW/SW interface design-space exploration (§4.3, Figure 7).

"This evaluation aims to support finding the best HW/SW interface
between the java card interpreter and the hardware stack. ... During
HW/SW interface evaluation we change the address map, organization of
these registers and used bus transactions to access them."

For every explored configuration the same bytecode benchmarks run on
the refined model (interpreter → master adapter → energy-aware layer-1
bus → stack coprocessor); the result table reports bus cycles, bus
energy and transaction counts per configuration — the numbers a
designer uses to pick the interface.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import MemoryMap, MergePattern
from repro.kernel import Clock, Simulator
from repro.power import Layer1PowerModel, Layer2PowerModel
from repro.power.table import CharacterizationTable
from repro.soc.memory import Rom, ScratchpadRam
from repro.soc.smartcard import RAM_BASE, ROM_BASE
from repro.tlm import EcBusLayer1, EcBusLayer2

from .adapters import StackMasterAdapter, StaticsBusPort
from .bytecode import Package
from .interpreter import BytecodeInterpreter
from .stack import HardwareStack, SfrLayout
from .workloads import BENCHMARKS, benchmark_package

CLOCK_PERIOD = 100

#: candidate coprocessor base addresses: one a single address-bus bit
#: away from the RAM the statics live in, one across many bits
STACK_BASE_NEAR = RAM_BASE | 0x0008_0000   # Hamming distance 1 to RAM
STACK_BASE_FAR = 0x0055_5540               # many bits from RAM


@dataclasses.dataclass(frozen=True)
class InterfaceConfig:
    """One point of the explored HW/SW interface space."""

    name: str
    layout: SfrLayout
    stack_base: int
    access_pattern: MergePattern

    def describe(self) -> str:
        return (f"{self.layout.value} registers @ {self.stack_base:#010x}, "
                f"{self.access_pattern.name.lower()} accesses")


def default_configurations() -> typing.List[InterfaceConfig]:
    """The §4.3 sweep: register organisation x address map x width."""
    configs = []
    for layout in SfrLayout:
        for base, where in ((STACK_BASE_NEAR, "near"),
                            (STACK_BASE_FAR, "far")):
            for pattern in (MergePattern.HALFWORD, MergePattern.WORD):
                configs.append(InterfaceConfig(
                    f"{layout.value}/{where}/{pattern.name.lower()}",
                    layout, base, pattern))
    return configs


@dataclasses.dataclass
class ConfigResult:
    """Measured cost of one configuration over all benchmarks."""

    config: InterfaceConfig
    bus_cycles: int
    bus_energy_pj: float
    bus_transactions: int
    results_correct: bool


@dataclasses.dataclass
class ExplorationResult:
    rows: typing.List[ConfigResult]

    def best_by_energy(self) -> ConfigResult:
        return min(self.rows, key=lambda row: row.bus_energy_pj)

    def best_by_cycles(self) -> ConfigResult:
        return min(self.rows, key=lambda row: row.bus_cycles)

    def row(self, name: str) -> ConfigResult:
        for row in self.rows:
            if row.config.name == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        lines = [
            "HW/SW interface exploration (java card VM vs HW stack):",
            f"{'configuration':<26}{'cycles':>9}{'energy pJ':>12}"
            f"{'bus txns':>10}{'ok':>4}",
        ]
        for row in sorted(self.rows, key=lambda r: r.bus_energy_pj):
            lines.append(
                f"{row.config.name:<26}{row.bus_cycles:>9}"
                f"{row.bus_energy_pj:>12.1f}{row.bus_transactions:>10}"
                f"{'yes' if row.results_correct else 'NO':>4}")
        best = self.best_by_energy()
        lines.append(f"best by energy: {best.config.name} "
                     f"({best.config.describe()})")
        return "\n".join(lines)


def _build_refined_model(config: InterfaceConfig,
                         table: CharacterizationTable,
                         applet: Package, bus_layer: int = 1):
    """Figure 7(b): interpreter + adapters + TLM bus + coprocessor."""
    simulator = Simulator(f"explore_{config.name}")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = MemoryMap()
    memory_map.add_slave(Rom(ROM_BASE), "rom")
    memory_map.add_slave(ScratchpadRam(RAM_BASE), "ram")
    hw_stack = HardwareStack(config.stack_base, layout=config.layout)
    memory_map.add_slave(hw_stack, "hw_stack")
    if bus_layer == 1:
        power_model = Layer1PowerModel(table)
        bus = EcBusLayer1(simulator, clock, memory_map,
                          power_model=power_model)
    else:
        power_model = Layer2PowerModel(table)
        bus = EcBusLayer2(simulator, clock, memory_map,
                          power_model=power_model)
    adapter = StackMasterAdapter(simulator, clock, bus, config.stack_base,
                                 layout=config.layout,
                                 access_pattern=config.access_pattern)
    statics = StaticsBusPort(adapter, RAM_BASE, applet.num_statics)
    interpreter = BytecodeInterpreter(applet, adapter,
                                      statics_port=statics)
    return simulator, bus, power_model, adapter, interpreter


def evaluate_configuration(config: InterfaceConfig,
                           table: CharacterizationTable,
                           bus_layer: int = 1) -> ConfigResult:
    """Run all benchmarks on the refined model for one configuration.

    *bus_layer* selects the model accuracy: layer 1 resolves every
    exploration dimension; layer 2 is faster but its per-phase energy
    model cannot see address-map effects (it charges a characterised
    average per address phase regardless of the actual addresses).
    """
    applet = benchmark_package()
    simulator, bus, power_model, adapter, interpreter = \
        _build_refined_model(config, table, applet, bus_layer)
    correct = True
    for method_name, arguments, reference in BENCHMARKS:
        result = interpreter.run(method_name, arguments)
        if result != reference(*arguments):
            correct = False
    if bus_layer == 2:
        power_model.account_cycles(bus.cycle)
    return ConfigResult(config, bus.cycle, power_model.total_energy_pj,
                        adapter.bus_transactions, correct)


def run_exploration(table: typing.Optional[CharacterizationTable] = None,
                    configurations: typing.Optional[
                        typing.List[InterfaceConfig]] = None,
                    bus_layer: int = 1) -> ExplorationResult:
    """The §4.3 experiment: sweep the interface configurations."""
    if table is None:
        from repro.power.characterize import default_characterization
        table = default_characterization().table
    configs = configurations or default_configurations()
    rows = [evaluate_configuration(config, table, bus_layer)
            for config in configs]
    return ExplorationResult(rows)
