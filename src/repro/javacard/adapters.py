"""Communication refinement: the master adapter of Figure 7(b).

"The bytecode interpreter invokes the same interface functions as in
the pure functional model.  The master adapter translates them into
bus transactions. ... Communication is performed by using special
function register[s]."

:class:`StackMasterAdapter` implements :class:`StackInterface` on top
of an energy-aware TLM bus: each stack call becomes one or more SFR
accesses whose count, width and addresses depend on the explored
configuration.  The untimed interpreter calls are synchronous, so the
adapter co-simulates: it steps the kernel cycle by cycle, re-invoking
the non-blocking bus interface until the transaction completes —
exactly what a bus-functional model does for an untimed caller.
"""

from __future__ import annotations

import typing

from repro.ec import (BusState, MergePattern, Transaction, data_read,
                      data_write)
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Simulator

from .stack import (CMD_POP, CMD_PUSH, CMD_TOP, REG_COMMAND, REG_DATA,
                    REG_POP, REG_POP2, REG_PUSH, REG_TOP, SfrLayout,
                    StackError, StackInterface)

STATUS_CHECK_NONE = "none"
STATUS_CHECK_EVERY_OP = "every_op"


class StackMasterAdapter(StackInterface):
    """Translates stack interface calls into SFR bus transactions."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface, base_address: int,
                 layout: SfrLayout = SfrLayout.DEDICATED,
                 access_pattern: MergePattern = MergePattern.HALFWORD,
                 ) -> None:
        self.simulator = simulator
        self.clock = clock
        self.bus = bus
        self.base_address = base_address
        self.layout = layout
        self.access_pattern = access_pattern
        self.bus_transactions = 0
        self._shadow_depth = 0

    # ------------------------------------------------------------------
    # synchronous transfer: step the kernel until the bus answers
    # ------------------------------------------------------------------

    def _transfer(self, transaction: Transaction) -> Transaction:
        state = self.bus.issue(transaction)
        guard = 10_000
        while not state.finished:
            guard -= 1
            if guard == 0:
                raise RuntimeError("bus transaction wedged")
            self.simulator.run(self.clock.period)
            state = self.bus.issue(transaction)
        if state is BusState.ERROR:
            raise StackError(
                f"bus error accessing stack SFR {transaction.address:#x}")
        self.bus_transactions += 1
        return transaction

    def _register_address(self, register: int) -> int:
        return self.base_address + 4 * register

    def _write_register(self, register: int, value: int) -> None:
        address = self._register_address(register)
        if self.access_pattern is MergePattern.WORD:
            self._transfer(data_write(address, [value & 0xFFFFFFFF]))
        else:
            # 16-bit access on the low lanes of the register word
            self._transfer(data_write(address, [value & 0xFFFF],
                                      MergePattern.HALFWORD))

    def _read_register(self, register: int,
                       pattern: typing.Optional[MergePattern] = None
                       ) -> int:
        address = self._register_address(register)
        pattern = pattern or self.access_pattern
        transaction = self._transfer(data_read(address, pattern))
        value = transaction.data[0]
        if pattern is MergePattern.HALFWORD:
            value &= 0xFFFF
        return value

    # ------------------------------------------------------------------
    # StackInterface -> SFR traffic, per layout
    # ------------------------------------------------------------------

    def push(self, value: int) -> None:
        if self.layout is SfrLayout.COMMAND:
            self._write_register(REG_DATA, value)
            self._write_register(REG_COMMAND, CMD_PUSH)
        else:
            self._write_register(REG_PUSH, value)
        self._shadow_depth += 1

    def pop(self) -> int:
        self._require_depth(1)
        self._shadow_depth -= 1
        if self.layout is SfrLayout.COMMAND:
            self._write_register(REG_COMMAND, CMD_POP)
            return _sign16(self._read_register(REG_DATA))
        return _sign16(self._read_register(REG_POP))

    def top(self) -> int:
        self._require_depth(1)
        if self.layout is SfrLayout.COMMAND:
            self._write_register(REG_COMMAND, CMD_TOP)
            return _sign16(self._read_register(REG_DATA))
        return _sign16(self._read_register(REG_TOP))

    def pop2(self) -> typing.Tuple[int, int]:
        """Binary-operator accelerator: one 32-bit read on PACKED."""
        if self.layout is SfrLayout.PACKED:
            self._require_depth(2)
            packed = self._read_register(REG_POP2, MergePattern.WORD)
            self._shadow_depth -= 2
            return _sign16(packed & 0xFFFF), _sign16(packed >> 16)
        return StackInterface.pop2(self)

    def depth(self) -> int:
        return self._shadow_depth

    def _require_depth(self, needed: int) -> None:
        if self._shadow_depth < needed:
            raise StackError("operand stack underflow (adapter shadow)")


class StaticsBusPort:
    """Refined static-field storage: fields live in RAM behind the bus.

    Refining the statics as well makes the *address map* exploration
    dimension real: every switch between stack-SFR traffic and
    static-field traffic toggles the address bus by the Hamming
    distance between the two regions — which depends on where the
    stack coprocessor is mapped.
    """

    def __init__(self, adapter: StackMasterAdapter,
                 ram_base: int, num_statics: int = 16) -> None:
        self.adapter = adapter
        self.ram_base = ram_base
        self.num_statics = num_statics

    def read(self, index: int) -> int:
        self._check(index)
        transaction = self.adapter._transfer(
            data_read(self.ram_base + 4 * index))
        return _sign16(transaction.data[0])

    def write(self, index: int, value: int) -> None:
        self._check(index)
        self.adapter._transfer(
            data_write(self.ram_base + 4 * index, [value & 0xFFFF]))

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_statics:
            raise IndexError(f"static field {index} out of range")


def _sign16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value
