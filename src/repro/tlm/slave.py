"""Generic behavioural bus slaves.

These implement the paper's slave side: address range, per-phase wait
states, access-right bits (§3.1), and a non-blocking per-beat data
interface that returns ``WAIT`` for its configured number of cycles
before answering ``OK``.  Concrete peripherals in :mod:`repro.soc`
subclass :class:`MemorySlave` / :class:`RegisterSlave`.
"""

from __future__ import annotations

import typing

from repro.ec import (AccessRights, BYTES_PER_WORD, DATA_MASK, BusState,
                      SlaveResponse, WaitStates)
from repro.ec.interfaces import Slave

_OK = BusState.OK


def _lane_merge(old: int, new: int, byte_enables: int) -> int:
    """Merge *new* into *old* on the byte lanes enabled."""
    result = old
    for lane in range(BYTES_PER_WORD):
        if byte_enables & (1 << lane):
            shift = 8 * lane
            result = (result & ~(0xFF << shift)) | (new & (0xFF << shift))
    return result & DATA_MASK


class BehaviouralSlave(Slave):
    """Base class handling wait-state pacing for the data interface.

    The bus process invokes ``read_beat``/``write_beat`` every cycle of
    the data phase; this class counts the invocations and answers
    ``WAIT`` until the configured read/write wait states have elapsed,
    then delegates to :meth:`do_read` / :meth:`do_write`.
    """

    def __init__(self, base_address: int, size: int,
                 wait_states: WaitStates = WaitStates(),
                 access_rights: AccessRights = AccessRights.ALL,
                 name: str = "slave") -> None:
        self.name = name
        self._base_address = base_address
        self._size = size
        self._wait_states = wait_states
        self._access_rights = access_rights
        # one pacing slot per direction: the bus may advance a read and
        # a write beat on the same slave in the same cycle (§3.1)
        self._pending: typing.Dict[str, typing.Optional[list]] = {
            "r": None, "w": None}
        self.reads = 0
        self.writes = 0

    # -- control interface -------------------------------------------------

    @property
    def base_address(self) -> int:
        return self._base_address

    @property
    def size(self) -> int:
        return self._size

    @property
    def wait_states(self) -> WaitStates:
        return self._wait_states

    @wait_states.setter
    def wait_states(self, value: WaitStates) -> None:
        self._wait_states = value

    @property
    def access_rights(self) -> AccessRights:
        return self._access_rights

    # -- data interface -----------------------------------------------------

    def read_beat(self, offset: int, byte_enables: int) -> SlaveResponse:
        # each beat samples the wait states once, at its first cycle,
        # through the property — dynamic slaves (EEPROM busy windows)
        # override it and the beat must see the live value
        slot = self._pending["r"]
        if slot is None or slot[0] != offset:
            slot = [offset, self.wait_states.read]
            self._pending["r"] = slot
        if slot[1] > 0:
            slot[1] -= 1
            return SlaveResponse.wait()
        self._pending["r"] = None
        self.reads += 1
        return self.do_read(offset, byte_enables)

    def write_beat(self, offset: int, byte_enables: int,
                   data: int) -> SlaveResponse:
        slot = self._pending["w"]
        if slot is None or slot[0] != offset:
            slot = [offset, self.wait_states.write]
            self._pending["w"] = slot
        if slot[1] > 0:
            slot[1] -= 1
            return SlaveResponse.wait()
        self._pending["w"] = None
        self.writes += 1
        return self.do_write(offset, byte_enables, data)

    def cancel_pending(self, direction: typing.Optional[str] = None
                       ) -> None:
        """Clear the wait-state countdown of an in-progress beat.

        Called by the bus models when a watchdog evicts the transaction
        the beat belongs to, so the next beat (a different transaction,
        or a retry of the same one) re-samples the wait states instead
        of inheriting a stale countdown.  *direction* is ``"r"``,
        ``"w"`` or ``None`` for both.
        """
        for slot in ("r", "w") if direction is None else (direction,):
            self._pending[slot] = None

    # -- layer-2 block interface (pointer passing, §3.2) -----------------------

    def read_block(self, offset: int, num_words: int, byte_enables: int
                   ) -> typing.Tuple[typing.List[int], bool]:
        """Layer-2 single-call burst read; returns (words, error_flag).

        Data for the whole transaction is produced at once at the end of
        the data phase — the layer-2 "pointer passing" abstraction.
        *byte_enables* applies to single (sub-word) transfers; bursts
        are whole words.  On a mid-burst error *words* holds the beats
        served before the fault — the same partial progress the layer-1
        beat-level interface would have delivered.
        """
        words: typing.List[int] = []
        for beat in range(num_words):
            enables = byte_enables if num_words == 1 else 0b1111
            response = self.do_read(offset + beat * BYTES_PER_WORD, enables)
            if response.state is not _OK:
                return words, True
            self.reads += 1
            words.append(response.data)
        return words, False

    def write_block(self, offset: int, words: typing.Sequence[int],
                    byte_enables: int) -> typing.Tuple[int, bool]:
        """Layer-2 single-call burst write.

        Returns ``(beats_ok, error_flag)`` — the number of beats
        committed before a fault, mirroring layer 1's partial progress.
        """
        for beat, word in enumerate(words):
            enables = byte_enables if len(words) == 1 else 0b1111
            response = self.do_write(offset + beat * BYTES_PER_WORD,
                                     enables, word)
            if response.state is not _OK:
                return beat, True
            self.writes += 1
        return len(words), False

    # -- hooks ---------------------------------------------------------------

    def do_read(self, offset: int,
                byte_enables: int) -> SlaveResponse:  # pragma: no cover
        raise NotImplementedError

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r} "
                f"@{self._base_address:#x}+{self._size:#x})")


class MemorySlave(BehaviouralSlave):
    """Word-organised memory with byte-lane merging.

    Models the smart card memories of Figure 1 (ROM, EEPROM, FLASH,
    scratchpad RAM) — each instance differs only in size, wait states
    and access rights.
    """

    def __init__(self, base_address: int, size: int,
                 wait_states: WaitStates = WaitStates(),
                 access_rights: AccessRights = AccessRights.ALL,
                 name: str = "memory") -> None:
        if size % BYTES_PER_WORD:
            raise ValueError("memory size must be a whole number of words")
        super().__init__(base_address, size, wait_states, access_rights,
                         name)
        self._words = [0] * (size // BYTES_PER_WORD)

    def do_read(self, offset: int, byte_enables: int) -> SlaveResponse:
        word = self._words[offset // BYTES_PER_WORD]
        return SlaveResponse.ok(word)

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        index = offset // BYTES_PER_WORD
        self._words[index] = _lane_merge(self._words[index], data,
                                         byte_enables)
        return SlaveResponse.ok()

    # -- back-door access (loaders / checkers, no bus traffic) ----------------

    def load(self, offset: int, words: typing.Sequence[int]) -> None:
        """Back-door initialise memory contents (e.g. program images)."""
        start = offset // BYTES_PER_WORD
        for i, word in enumerate(words):
            self._words[start + i] = word & DATA_MASK

    def peek(self, offset: int) -> int:
        """Back-door read of the word containing *offset*."""
        return self._words[offset // BYTES_PER_WORD]

    def poke(self, offset: int, word: int) -> None:
        """Back-door write of the word containing *offset*."""
        self._words[offset // BYTES_PER_WORD] = word & DATA_MASK

    def image(self) -> typing.List[int]:
        """Back-door snapshot of the whole memory, one int per word.

        The persistence primitive of power-loss studies: capture the
        non-volatile image at the tear point, ``load`` it into the
        replacement device on the next power-up.
        """
        return list(self._words)


class RegisterSlave(BehaviouralSlave):
    """Memory-mapped special-function registers with callbacks.

    Peripherals (UART, timers, RNG, the Java Card stack coprocessor)
    expose word registers; optional per-register read/write hooks give
    them behaviour.
    """

    def __init__(self, base_address: int, num_registers: int,
                 wait_states: WaitStates = WaitStates(),
                 access_rights: AccessRights = (AccessRights.READ
                                                | AccessRights.WRITE),
                 name: str = "regs") -> None:
        super().__init__(base_address, num_registers * BYTES_PER_WORD,
                         wait_states, access_rights, name)
        self.registers = [0] * num_registers
        self._read_hooks: typing.Dict[int, typing.Callable[[], int]] = {}
        self._write_hooks: typing.Dict[int, typing.Callable[[int], None]] = {}

    def on_read(self, index: int,
                hook: typing.Callable[[], int]) -> None:
        """Install *hook* producing the value of register *index*."""
        self._read_hooks[index] = hook

    def on_write(self, index: int,
                 hook: typing.Callable[[int], None]) -> None:
        """Install *hook* called with the value written to *index*."""
        self._write_hooks[index] = hook

    def do_read(self, offset: int, byte_enables: int) -> SlaveResponse:
        index = offset // BYTES_PER_WORD
        hook = self._read_hooks.get(index)
        value = hook() if hook is not None else self.registers[index]
        self.registers[index] = value & DATA_MASK
        return SlaveResponse.ok(value & DATA_MASK)

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        index = offset // BYTES_PER_WORD
        merged = _lane_merge(self.registers[index], data, byte_enables)
        self.registers[index] = merged
        hook = self._write_hooks.get(index)
        if hook is not None:
            hook(merged)
        return SlaveResponse.ok()
