"""Transaction-level layer-3 (message layer, untimed) EC bus model.

The paper adopts Haverinen et al.'s layering (§2): above the transfer
layer (1) and the transaction layer (2) sits layer 3, the *message
layer* — "Systems at this level are untimed ... Data representation
may be of a very abstract data type and several data items can be
transferred by a single transaction".  The paper's own untimed Java
Card model is a layer-3 system; this module makes the layer explicit
so the full hierarchy (3 → 2 → 1 → 0) is available for top-down
refinement.

:class:`EcBusLayer3` needs no simulation kernel at all: a message is
routed, checked and completed within the call.  It still honours the
protocol's *functional* contract — memory map decode, access rights,
window containment, byte-lane merging — so software developed against
it behaves identically when re-targeted to the timed layers (the
cross-layer property tests check exactly that).

Two interfaces are offered:

* the blocking message interface (``read_message``/``write_message``)
  natural at this layer, moving arbitrarily long payloads in one call,
* the standard non-blocking :class:`BusMasterInterface`, completing
  every transaction on its first invocation, so every existing master
  and adapter runs unchanged (just infinitely fast).
"""

from __future__ import annotations

import typing

from repro.ec import (BYTES_PER_WORD, BusState, DecodeError, ErrorCause,
                      MemoryMap, Transaction, TransactionKind)
from repro.ec.interfaces import BusMasterInterface


class EcBusLayer3(BusMasterInterface):
    """Untimed functional bus: decode, check, move data, return."""

    def __init__(self, memory_map: MemoryMap,
                 name: str = "ec_bus_l3") -> None:
        self.memory_map = memory_map
        self.name = name
        self.messages = 0
        self.transactions_completed = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # the message interface (layer-3 native)
    # ------------------------------------------------------------------

    def read_message(self, address: int, num_words: int,
                     instruction: bool = False) -> typing.List[int]:
        """Read *num_words* words starting at *address* in one message.

        Messages may span any length within one slave window; there is
        no burst-length restriction at this layer.
        """
        kind = (TransactionKind.INSTRUCTION_READ if instruction
                else TransactionKind.DATA_READ)
        route = self.memory_map.resolve_checked(
            address, kind, num_words * BYTES_PER_WORD)
        for hop in route.bridges:
            hop.slave.note_message()
        region = route.terminal
        base = region.slave.offset_of(address)
        words, error = region.slave.read_block(base, num_words, 0b1111)
        if error:
            self.errors += 1
            raise DecodeError(f"slave error reading {address:#x}")
        self.messages += 1
        return words

    def write_message(self, address: int,
                      words: typing.Sequence[int]) -> None:
        """Write *words* starting at *address* in one message."""
        route = self.memory_map.resolve_checked(
            address, TransactionKind.DATA_WRITE,
            len(words) * BYTES_PER_WORD)
        for hop in route.bridges:
            hop.slave.note_message()
        region = route.terminal
        base = region.slave.offset_of(address)
        _, error = region.slave.write_block(base, list(words), 0b1111)
        if error:
            self.errors += 1
            raise DecodeError(f"slave error writing {address:#x}")
        self.messages += 1

    # ------------------------------------------------------------------
    # the non-blocking interface: completes immediately
    # ------------------------------------------------------------------

    def instruction_fetch(self, transaction: Transaction) -> BusState:
        return self._complete(transaction)

    def data_read(self, transaction: Transaction) -> BusState:
        return self._complete(transaction)

    def data_write(self, transaction: Transaction) -> BusState:
        return self._complete(transaction)

    def _complete(self, transaction: Transaction) -> BusState:
        if transaction.finished:
            return transaction.state
        try:
            route = self.memory_map.resolve_checked(
                transaction.address, transaction.kind,
                transaction.num_bytes)
        except DecodeError:
            transaction.issue_cycle = 0
            transaction.fail(0, ErrorCause.DECODE)
            self.errors += 1
            return BusState.ERROR
        # notify each bridge hop; a fault-injecting bridge may fail the
        # crossing (returning the cause) or corrupt the posted drain
        # ("drop"/"dup") — the same schedule the timed layers apply
        drop = dup = False
        for hop in route.bridges:
            forward = getattr(hop.slave, "forward_message", None)
            if forward is None:
                hop.slave.note_message()
                continue
            verdict = forward(transaction)
            if isinstance(verdict, ErrorCause):
                transaction.issue_cycle = 0
                transaction.fail(0, verdict)
                self.errors += 1
                return BusState.ERROR
            if verdict == "drop":
                drop = True
            elif verdict == "dup":
                dup = True
        region = route.terminal
        transaction.issue_cycle = 0
        transaction.address_done_cycle = 0
        slave = region.slave
        base = slave.offset_of(transaction.address)
        if transaction.kind is TransactionKind.DATA_WRITE:
            enables = (transaction.byte_enables(0)
                       if transaction.burst_length == 1 else 0b1111)
            if drop:
                # dropped posted write: acknowledged upstream, never
                # committed — complete the beats without touching the
                # slave, exactly what the timed drain process does
                beats_ok, error = transaction.burst_length, False
            else:
                beats_ok, error = slave.write_block(
                    base, transaction.data, enables)
                if dup and not error:
                    slave.write_block(base, transaction.data, enables)
            for _ in range(beats_ok):
                transaction.complete_beat(0)
            if error:
                transaction.fail(0, ErrorCause.SLAVE_ERROR)
                self.errors += 1
                return BusState.ERROR
        else:
            words, error = slave.read_block(
                base, transaction.burst_length,
                transaction.byte_enables(0))
            for word in words:
                transaction.complete_beat(0, word)
            if error:
                transaction.fail(0, ErrorCause.SLAVE_ERROR)
                self.errors += 1
                return BusState.ERROR
        self.transactions_completed += 1
        return BusState.OK

    def __repr__(self) -> str:
        return (f"EcBusLayer3({self.name!r}, messages={self.messages}, "
                f"transactions={self.transactions_completed})")
