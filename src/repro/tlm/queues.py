"""The four communication queues of the layer-1 bus model.

Figure 3 of the paper shows the internal structure: a *request* queue
fed by the master interfaces, *read* and *write* queues between the
address phase and the data phases, and a *finish* queue the master
interface drains ("the request is picked up by the next interface call
addressing this request", §3.1).
"""

from __future__ import annotations

import collections
import typing

from repro.ec import Transaction


class TransactionQueue:
    """FIFO of in-flight transactions with occupancy statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._fifo: typing.Deque[Transaction] = collections.deque()
        self.total_pushed = 0
        self.peak_occupancy = 0

    def push(self, transaction: Transaction) -> None:
        self._fifo.append(transaction)
        self.total_pushed += 1
        if len(self._fifo) > self.peak_occupancy:
            self.peak_occupancy = len(self._fifo)

    def head(self) -> typing.Optional[Transaction]:
        """The transaction at the front, or None when empty."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Transaction:
        return self._fifo.popleft()

    def remove(self, transaction: Transaction) -> bool:
        """Evict *transaction* from anywhere in the FIFO; True if held."""
        try:
            self._fifo.remove(transaction)
        except ValueError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)

    def __iter__(self) -> typing.Iterator[Transaction]:
        return iter(self._fifo)

    def __repr__(self) -> str:
        return f"TransactionQueue({self.name!r}, depth={len(self._fifo)})"


class FinishPool:
    """Completed transactions waiting for their master to pick them up.

    Unlike the FIFOs, completion is matched by transaction id — the
    master's next interface call "addressing this request" collects the
    result, so reads and writes may finish out of order (the paper's
    reordering examples, §4.1).
    """

    def __init__(self) -> None:
        self._done: typing.Dict[int, Transaction] = {}
        self.total_finished = 0

    def push(self, transaction: Transaction) -> None:
        self._done[transaction.txn_id] = transaction
        self.total_finished += 1

    def collect(self, transaction: Transaction) -> bool:
        """Remove *transaction* if it has finished; True on success."""
        return self._done.pop(transaction.txn_id, None) is not None

    def __contains__(self, transaction: Transaction) -> bool:
        return transaction.txn_id in self._done

    def __len__(self) -> int:
        return len(self._done)
