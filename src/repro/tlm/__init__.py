"""Transaction-level bus models — the paper's contribution.

* :mod:`repro.tlm.layer1` — cycle-accurate (transfer layer) EC bus,
* :mod:`repro.tlm.layer2` — timed but not cycle-accurate bus,
* :mod:`repro.tlm.layer3` — untimed message-layer bus,
* :mod:`repro.tlm.master` / :mod:`repro.tlm.slave` — reusable masters
  and behavioural slaves shared by both layers.
"""

from .arbiter import ArbiterPort, BusArbiter
from .bus_base import EcBusBase
from .layer1 import EcBusLayer1
from .layer2 import EcBusLayer2
from .layer3 import EcBusLayer3
from .master import (BlockingMaster, PipelinedMaster, ScriptedMaster,
                     normalise_script, run_script)
from .queues import FinishPool, TransactionQueue
from .slave import BehaviouralSlave, MemorySlave, RegisterSlave

__all__ = [
    "ArbiterPort",
    "BehaviouralSlave",
    "BusArbiter",
    "BlockingMaster",
    "EcBusBase",
    "EcBusLayer1",
    "EcBusLayer2",
    "EcBusLayer3",
    "FinishPool",
    "MemorySlave",
    "PipelinedMaster",
    "RegisterSlave",
    "ScriptedMaster",
    "TransactionQueue",
    "normalise_script",
    "run_script",
]
