"""Transaction-level layer-2 (timed, not cycle-accurate) EC bus model.

The paper's §3.2 model: the master interface takes whole transactions
("a burst transfer is performed as a single transaction"), data moves
by reference in one block at the end of the data phase ("pointer
passing"), and timing comes from wait-state counters "read ... when the
transaction is created during the first interface call".

The bus process — still sensitive to the falling clock edge — runs
three phases: address, read and write.  Each phase decrements the
counter of the transaction at the head of its queue; when the counter
expires the phase finishes and (for data phases) the slave's block
interface is invoked once.

Known, deliberate abstractions relative to layer 1 (§3.2 "sources of
inaccuracy"):

* wait states are snapshotted at request creation, so a slave whose
  wait states change while the request is queued (e.g. EEPROM busy
  after a programming write) is mis-timed ("missing interaction with
  the slave"),
* data is delivered only at the end of the burst, never per beat —
  consequently a read racing a write to the same address may observe
  a different (later) memory state than layer 1's beat-level read,
* control-signal activity is reconstructed per phase in isolation —
  the layer-2 energy model cannot see inter-transaction correlation.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import (BusState, DecodeError, Direction, ErrorCause,
                      MemoryMap, Region, Transaction)
from repro.kernel import Clock, Simulator

from .bus_base import EcBusBase
from .queues import TransactionQueue

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.power.layer2 import Layer2PowerModel


@dataclasses.dataclass
class _TimedRequest:
    """One entry of the layer-2 shared transaction data structure."""

    transaction: Transaction
    region: typing.Optional[Region]
    address_remaining: int  # address wait states still to elapse
    data_remaining: int     # total data-phase cycles still to elapse
    decode_failed: bool = False
    data_started: bool = False
    #: set when the first hop is a bus bridge: the data phase then
    #: forwards a clone downstream instead of invoking a block interface
    bridge: typing.Optional[typing.Any] = None
    clone: typing.Optional[Transaction] = None


class EcBusLayer2(EcBusBase):
    """Timed EC bus: wait-state counters, block data transfer."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 memory_map: MemoryMap, name: str = "ec_bus_l2",
                 power_model: typing.Optional["Layer2PowerModel"] = None,
                 requery_wait_states: bool = False) -> None:
        super().__init__(simulator, clock, memory_map, name)
        self.power_model = power_model
        #: ablation knob: re-sample the slave's wait states when the
        #: data phase starts instead of trusting the creation-time
        #: snapshot (the paper's model snapshots; see DESIGN.md)
        self.requery_wait_states = requery_wait_states
        self.address_queue = TransactionQueue("address")
        self._items: typing.Dict[int, _TimedRequest] = {}
        self._read_queue: typing.List[_TimedRequest] = []
        self._write_queue: typing.List[_TimedRequest] = []
        self.method(self._bus_process, name="bus_process",
                    sensitive=[clock.negedge_event], dont_initialize=True)

    # ------------------------------------------------------------------

    def _accept(self, transaction: Transaction) -> None:
        """First interface call: decode and snapshot the wait states."""
        try:
            route = self.memory_map.resolve_checked(
                transaction.address, transaction.kind, transaction.num_bytes)
        except DecodeError:
            item = _TimedRequest(transaction, None, 0, 0, decode_failed=True)
        else:
            region = route.regions[0]
            waits = region.slave.wait_states  # snapshot, §3.2
            data_cycles = transaction.burst_length * (
                waits.for_kind(transaction.kind) + 1)
            item = _TimedRequest(transaction, region, waits.address,
                                 data_cycles,
                                 bridge=(region.slave if route.hops > 0
                                         else None))
        self._items[transaction.txn_id] = item
        self.address_queue.push(transaction)

    # ------------------------------------------------------------------
    # the bus process: three phases per falling edge (§3.2)
    # ------------------------------------------------------------------

    def _bus_process(self) -> None:
        self._address_phase()
        self._read_phase()
        self._write_phase()
        self.cycle += 1

    def _address_phase(self) -> None:
        head = self.address_queue.head()
        if head is None:
            return
        item = self._items[head.txn_id]
        if item.address_remaining > 0:
            item.address_remaining -= 1
            return
        # address phase finishes this cycle
        self.address_queue.pop()
        head.address_done_cycle = self.cycle
        if item.decode_failed:
            self._finish_error(item, ErrorCause.DECODE)
            return
        if self.power_model is not None:
            self.power_model.address_phase_finished(head)
        if head.direction is Direction.READ:
            self._read_queue.append(item)
        else:
            self._write_queue.append(item)

    def _read_phase(self) -> None:
        self._data_phase(self._read_queue, is_read=True)

    def _write_phase(self) -> None:
        self._data_phase(self._write_queue, is_read=False)

    def _data_phase(self, queue: typing.List[_TimedRequest],
                    is_read: bool) -> None:
        if not queue:
            return
        item = queue[0]
        if item.bridge is not None:
            self._bridge_data_phase(queue, item, is_read)
            return
        if not item.data_started:
            item.data_started = True
            if self.requery_wait_states:
                waits = item.region.slave.wait_states
                item.data_remaining = item.transaction.burst_length * (
                    waits.for_kind(item.transaction.kind) + 1)
        item.data_remaining -= 1
        if item.data_remaining > 0:
            return
        # data phase finishes this cycle: single block slave invocation
        queue.pop(0)
        transaction = item.transaction
        slave = item.region.slave
        base_offset = slave.offset_of(transaction.address)
        error = False
        if is_read:
            words, error = slave.read_block(
                base_offset, transaction.burst_length,
                transaction.byte_enables(0))
            # beats served before a mid-burst error still completed on
            # the bus — record them so beats_done (and the data words
            # already latched) match the layer-1 beat-level account
            for word in words:
                transaction.complete_beat(self.cycle, word)
        else:
            beats_ok, error = slave.write_block(
                base_offset, transaction.data, transaction.byte_enables(0))
            for _ in range(beats_ok):
                transaction.complete_beat(self.cycle)
        if error:
            self._finish_error(item, ErrorCause.SLAVE_ERROR)
            return
        if self.power_model is not None:
            self.power_model.data_phase_finished(transaction)
        del self._items[transaction.txn_id]
        self.finish_pool.push(transaction)

    def _bridge_data_phase(self, queue: typing.List[_TimedRequest],
                           item: _TimedRequest, is_read: bool) -> None:
        """Data phase of a transaction whose first hop is a bridge.

        The upstream wire still carries one beat per cycle
        (``data_remaining`` counts them down); the actual data moves on
        the downstream segment via a forwarded clone — polled to
        completion for reads, latched into the bridge's posted queue
        for writes.  The downstream segment's own wait states therefore
        stretch the upstream transaction naturally, instead of being
        folded into a creation-time snapshot.
        """
        transaction = item.transaction
        bridge = item.bridge
        if not item.data_started:
            item.data_started = True
            if is_read:
                item.clone = bridge.start_read(transaction)
        if item.data_remaining > 0:
            item.data_remaining -= 1
        if is_read:
            state = bridge.timed_read_poll(item.clone)
            if state is BusState.ERROR:
                queue.pop(0)
                # beats the downstream burst did serve completed on the
                # wire; mirror them before reporting the error upstream
                for word in item.clone.data[:item.clone.beats_done]:
                    transaction.complete_beat(self.cycle, word)
                # relay the downstream cause (a decode fault two hops
                # away must not degenerate into SLAVE_ERROR upstream)
                self._finish_error(item, item.clone.error_cause
                                   or ErrorCause.SLAVE_ERROR)
                return
            if item.data_remaining > 0 or state is not BusState.OK:
                return  # still streaming upstream / still downstream
            queue.pop(0)
            for word in item.clone.data:
                transaction.complete_beat(self.cycle, word)
        else:
            if item.data_remaining > 0:
                return
            if item.clone is None:
                item.clone = transaction.clone()
            if not bridge.try_post_write(item.clone):
                return  # posted queue full: back-pressure this phase
            queue.pop(0)
            for _ in range(transaction.burst_length):
                transaction.complete_beat(self.cycle)
        if self.power_model is not None:
            self.power_model.data_phase_finished(transaction)
        del self._items[transaction.txn_id]
        self.finish_pool.push(transaction)

    def _finish_error(self, item: _TimedRequest,
                      cause: ErrorCause) -> None:
        transaction = item.transaction
        transaction.fail(self.cycle, cause)
        self._items.pop(transaction.txn_id, None)
        if self.power_model is not None:
            self.power_model.data_phase_finished(transaction)
        self.finish_pool.push(transaction)

    def _evict(self, transaction: Transaction) -> bool:
        """Remove *transaction* from whichever phase queue holds it."""
        if transaction.txn_id not in self._items:
            return False
        item = self._items[transaction.txn_id]
        if not self.address_queue.remove(transaction):
            for queue in (self._read_queue, self._write_queue):
                if item in queue:
                    queue.remove(item)
                    break
            else:
                return False
        if (item.bridge is not None and item.clone is not None
                and transaction.direction is Direction.READ
                and not item.clone.finished):
            item.bridge.downstream.cancel(item.clone)
        del self._items[transaction.txn_id]
        return True

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while any transaction is anywhere in the pipe."""
        return bool(self.address_queue or self._read_queue
                    or self._write_queue or len(self.finish_pool))
