"""Multi-master bus arbitration.

The EC interface itself "supports only one master and one slave"; the
paper adds a bus controller for multiple slaves (§1) and motivates the
whole work with processor/coprocessor systems: "these smart cards
contain coprocessors to reach the performance and power consumption
goals.  The interface between the processor and the coprocessor
influences the performance and power consumption".

This module supplies the missing piece for such systems: an arbiter
that multiplexes several masters onto one EC bus.  Arbitration is
*registered* (as in real bus fabrics): a request raised in cycle N is
granted at the end of cycle N and forwarded to the bus in cycle N+1,
so every arbitrated transaction pays one cycle of arbitration latency.

A port accepts a request immediately (``REQUEST``) into the arbiter's
request registers; the arbiter process grants up to
``grants_per_cycle`` winners at the end of each cycle and forwards
them to the bus itself, so the granted request reaches the bus one
cycle after registration.  The master keeps polling its port and is
answered from the bus once its transaction is live there.

Policies:

* ``priority`` — lowest priority number wins; ties by registration order,
* ``round_robin`` — rotating fairness over the ports.
"""

from __future__ import annotations

import typing

from repro.ec import BusState, Transaction
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Module, Simulator


class ArbiterPort(BusMasterInterface):
    """One master's view of the shared bus."""

    def __init__(self, arbiter: "BusArbiter", name: str,
                 priority: int) -> None:
        self.arbiter = arbiter
        self.name = name
        self.priority = priority
        self.grants = 0
        self.wait_cycles = 0

    def instruction_fetch(self, transaction: Transaction) -> BusState:
        return self._call(transaction)

    def data_read(self, transaction: Transaction) -> BusState:
        return self._call(transaction)

    def data_write(self, transaction: Transaction) -> BusState:
        return self._call(transaction)

    def _call(self, transaction: Transaction) -> BusState:
        arbiter = self.arbiter
        txn_id = transaction.txn_id
        if txn_id in arbiter._forwarded:
            # granted earlier and live on the bus: delegate the poll
            state = arbiter.bus.issue(transaction)
            if state.finished:
                arbiter._forwarded.discard(txn_id)
            return state
        if txn_id in arbiter._pending_ids:
            self.wait_cycles += 1
            return BusState.WAIT  # still waiting for a grant
    # a new request: the arbiter accepts it into its request register
        arbiter._register(self, transaction)
        return BusState.REQUEST

    def __repr__(self) -> str:
        return f"ArbiterPort({self.name!r}, priority={self.priority})"


class BusArbiter(Module):
    """Registered arbiter multiplexing N ports onto one EC bus."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface, policy: str = "priority",
                 grants_per_cycle: int = 1,
                 name: str = "arbiter") -> None:
        if policy not in ("priority", "round_robin"):
            raise ValueError(f"unknown arbitration policy {policy!r}")
        if grants_per_cycle < 1:
            raise ValueError("grants_per_cycle must be >= 1")
        super().__init__(simulator, name)
        self.bus = bus
        self.policy = policy
        self.grants_per_cycle = grants_per_cycle
        self.ports: typing.List[ArbiterPort] = []
        self._pending: typing.List[
            typing.Tuple[ArbiterPort, Transaction]] = []
        self._pending_ids: typing.Set[int] = set()
        self._forwarded: typing.Set[int] = set()
        self._rr_index = 0
        self.total_grants = 0
        self.method(self._arbitrate, name="arbitrate",
                    sensitive=[clock.negedge_event], dont_initialize=True)

    def port(self, name: str, priority: int = 0) -> ArbiterPort:
        """Create a new master port (lower priority number wins)."""
        new_port = ArbiterPort(self, name, priority)
        self.ports.append(new_port)
        return new_port

    def _register(self, port: ArbiterPort,
                  transaction: Transaction) -> None:
        self._pending_ids.add(transaction.txn_id)
        self._pending.append((port, transaction))

    def _arbitrate(self) -> None:
        """End of cycle: grant winners and forward them to the bus."""
        if not self._pending:
            return
        if self.policy == "priority":
            self._pending.sort(key=lambda entry: entry[0].priority)
        else:  # round robin: rotate the port order each grant cycle
            if self.ports:
                self._rr_index = (self._rr_index + 1) % len(self.ports)
                order = {port: (index - self._rr_index) % len(self.ports)
                         for index, port in enumerate(self.ports)}
                self._pending.sort(key=lambda entry: order[entry[0]])
        granted = 0
        while self._pending and granted < self.grants_per_cycle:
            port, transaction = self._pending[0]
            state = self.bus.issue(transaction)
            if state is BusState.WAIT:
                break  # bus outstanding budget full: retry next cycle
            self._pending.pop(0)
            self._pending_ids.discard(transaction.txn_id)
            granted += 1
            port.grants += 1
            self.total_grants += 1
            if not state.finished:
                self._forwarded.add(transaction.txn_id)

    @property
    def pending_requests(self) -> int:
        return len(self._pending)
