"""Multi-master bus arbitration.

The EC interface itself "supports only one master and one slave"; the
paper adds a bus controller for multiple slaves (§1) and motivates the
whole work with processor/coprocessor systems: "these smart cards
contain coprocessors to reach the performance and power consumption
goals.  The interface between the processor and the coprocessor
influences the performance and power consumption".

This module supplies the missing piece for such systems: an arbiter
that multiplexes several masters onto one EC bus.  Arbitration is
*registered* (as in real bus fabrics): a request raised in cycle N is
granted at the end of cycle N and forwarded to the bus in cycle N+1,
so every arbitrated transaction pays one cycle of arbitration latency.

A port accepts a request immediately (``REQUEST``) into the arbiter's
request registers; the arbiter process grants up to
``grants_per_cycle`` winners at the end of each cycle and forwards
them to the bus itself, so the granted request reaches the bus one
cycle after registration.  The master keeps polling its port and is
answered from the bus once its transaction is live there.

Policies:

* ``priority`` — lowest priority number wins; ties by registration
  order.  Starves low-priority ports under saturating high-priority
  traffic — deliberate, and documented by a regression test,
* ``round_robin`` — rotating fairness over the ports,
* ``priority_rr`` — priority with starvation protection: a pending
  request's *effective* priority improves by one class every
  ``aging_cycles`` arbitration cycles it has waited, and ties within
  an effective class rotate round-robin.  A saturated high-priority
  port can therefore delay, but never starve, a low-priority one.

Every port keeps an energy ledger (grant and wait-cycle costs); the
arbiter's own ``energy_pj`` is exactly the sum of its ports' ledgers,
so the arbiter is one per-link bucket in the fabric's telescoping
energy report while still decomposing per master.
"""

from __future__ import annotations

import typing

from repro.ec import BusState, Transaction
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Module, Simulator


#: energy cost of one grant decision driven onto the request/grant
#: wires, and of one registered-but-waiting cycle (request line held)
GRANT_COST_PJ = 0.4
WAIT_COST_PJ = 0.05


class ArbiterPort(BusMasterInterface):
    """One master's view of the shared bus."""

    def __init__(self, arbiter: "BusArbiter", name: str,
                 priority: int) -> None:
        self.arbiter = arbiter
        self.name = name
        self.priority = priority
        self.grants = 0
        self.wait_cycles = 0
        #: this master's share of the arbitration energy (grant +
        #: request-held costs); the arbiter ledger is the exact sum
        self.energy_pj = 0.0

    def instruction_fetch(self, transaction: Transaction) -> BusState:
        return self._call(transaction)

    def data_read(self, transaction: Transaction) -> BusState:
        return self._call(transaction)

    def data_write(self, transaction: Transaction) -> BusState:
        return self._call(transaction)

    def _call(self, transaction: Transaction) -> BusState:
        arbiter = self.arbiter
        txn_id = transaction.txn_id
        if txn_id in arbiter._forwarded:
            # granted earlier and live on the bus: delegate the poll
            state = arbiter.bus.issue(transaction)
            if state.finished:
                arbiter._forwarded.discard(txn_id)
            return state
        if txn_id in arbiter._pending_ids:
            self.wait_cycles += 1
            self.energy_pj += WAIT_COST_PJ  # request line held
            return BusState.WAIT  # still waiting for a grant
    # a new request: the arbiter accepts it into its request register
        arbiter._register(self, transaction)
        return BusState.REQUEST

    def __repr__(self) -> str:
        return f"ArbiterPort({self.name!r}, priority={self.priority})"


class BusArbiter(Module):
    """Registered arbiter multiplexing N ports onto one EC bus."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface, policy: str = "priority",
                 grants_per_cycle: int = 1,
                 name: str = "arbiter",
                 aging_cycles: int = 32) -> None:
        if policy not in ("priority", "round_robin", "priority_rr"):
            raise ValueError(f"unknown arbitration policy {policy!r}")
        if grants_per_cycle < 1:
            raise ValueError("grants_per_cycle must be >= 1")
        if aging_cycles < 1:
            raise ValueError("aging_cycles must be >= 1")
        super().__init__(simulator, name)
        self.bus = bus
        self.policy = policy
        self.grants_per_cycle = grants_per_cycle
        #: ``priority_rr``: cycles a request waits before its effective
        #: priority improves by one class (starvation-freedom bound)
        self.aging_cycles = aging_cycles
        self.ports: typing.List[ArbiterPort] = []
        self._pending: typing.List[
            typing.Tuple[ArbiterPort, Transaction, int]] = []
        self._pending_ids: typing.Set[int] = set()
        self._forwarded: typing.Set[int] = set()
        self._rr_index = 0
        self._rr_next = 0      # priority_rr: rotation origin within ties
        self._arb_cycle = 0    # arbitration cycles elapsed (for aging)
        self.total_grants = 0
        #: optional fault hook: consulted once per arbitration round
        #: that has pending requests; ``suppress(index)`` returning True
        #: withholds every grant that round (a glitched grant line) —
        #: a pure timing perturbation, requests stay registered
        self.glitch_process: typing.Optional[typing.Any] = None
        self._decision_index = 0
        self.glitches = 0
        self.method(self._arbitrate, name="arbitrate",
                    sensitive=[clock.negedge_event], dont_initialize=True)

    def port(self, name: str, priority: int = 0) -> ArbiterPort:
        """Create a new master port (lower priority number wins)."""
        new_port = ArbiterPort(self, name, priority)
        self.ports.append(new_port)
        return new_port

    def _register(self, port: ArbiterPort,
                  transaction: Transaction) -> None:
        self._pending_ids.add(transaction.txn_id)
        self._pending.append((port, transaction, self._arb_cycle))

    def _effective_priority(self, port: ArbiterPort,
                            registered_at: int) -> int:
        """``priority_rr``: waiting promotes a request one priority
        class per :attr:`aging_cycles` elapsed — the starvation bound."""
        age = self._arb_cycle - registered_at
        return port.priority - age // self.aging_cycles

    def _arbitrate(self) -> None:
        """End of cycle: grant winners and forward them to the bus."""
        self._arb_cycle += 1
        if not self._pending:
            return
        if self.glitch_process is not None:
            index = self._decision_index
            self._decision_index += 1
            if self.glitch_process.suppress(index):
                self.glitches += 1
                return
        if self.policy == "priority":
            self._pending.sort(key=lambda entry: entry[0].priority)
        elif self.policy == "priority_rr":
            nports = max(len(self.ports), 1)
            rank = {port: (index - self._rr_next) % nports
                    for index, port in enumerate(self.ports)}
            self._pending.sort(key=lambda entry: (
                self._effective_priority(entry[0], entry[2]),
                rank[entry[0]]))
        else:  # round robin: rotate the port order each grant cycle
            if self.ports:
                self._rr_index = (self._rr_index + 1) % len(self.ports)
                order = {port: (index - self._rr_index) % len(self.ports)
                         for index, port in enumerate(self.ports)}
                self._pending.sort(key=lambda entry: order[entry[0]])
        granted = 0
        while self._pending and granted < self.grants_per_cycle:
            port, transaction, _registered = self._pending[0]
            state = self.bus.issue(transaction)
            if state is BusState.WAIT:
                break  # bus outstanding budget full: retry next cycle
            self._pending.pop(0)
            self._pending_ids.discard(transaction.txn_id)
            granted += 1
            port.grants += 1
            port.energy_pj += GRANT_COST_PJ
            self.total_grants += 1
            if self.policy == "priority_rr" and self.ports:
                # rotate past the winner so equal-priority peers lead
                # the next tie-break
                self._rr_next = ((self.ports.index(port) + 1)
                                 % len(self.ports))
            if not state.finished:
                self._forwarded.add(transaction.txn_id)

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    @property
    def energy_pj(self) -> float:
        """Arbitration energy: exactly the sum of the port ledgers (in
        port-creation order), so per-port buckets telescope into the
        arbiter bucket, which telescopes into the fabric probe."""
        total = 0.0
        for port in self.ports:
            total += port.energy_pj
        return total
