"""Transaction-level layer-1 (cycle-accurate) EC bus model.

This is the paper's §3.1 model.  The bus offers the master non-blocking
instruction and data interfaces that return a :class:`BusState`; the
master re-invokes them every rising clock edge until ``OK``/``ERROR``.
A single bus process — sensitive to the *falling* edge, while masters
and slaves act on the rising edge — executes four phases per cycle:

1. ``get_slave_state()``  — refresh slave wait-state/rights snapshots,
2. ``address_phase()``    — FSM over the head of the request queue,
3. ``read_phase()``       — per-beat slave read interface invocations,
4. ``write_phase()``      — ditto for writes.

Address and data phases of *different* transactions overlap (pipelined
interface); within a cycle the phases run sequentially, so a request
with zero wait states traverses request queue → finish queue in one
cycle, exactly as the paper notes.

The cycle-by-cycle timing produced here is the reference behaviour the
gate-level model reproduces and the layer-2 model approximates.
"""

from __future__ import annotations

import typing

from repro.ec import (BusState, DecodeError, Direction, ErrorCause,
                      MemoryMap, Region, SlaveResponse, Transaction)
from repro.kernel import Clock, Simulator

from .bus_base import EcBusBase
from .queues import TransactionQueue

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.power.layer1 import Layer1PowerModel


class _AddressPhaseFsm:
    """The address-phase finite state machine of Figure 3.

    States: IDLE (no request) and BUSY (counting down the slave's
    address wait states for the request at the head of the queue).
    """

    IDLE = "idle"
    BUSY = "busy"

    def __init__(self) -> None:
        self.state = self.IDLE
        self.current: typing.Optional[Transaction] = None
        self.region: typing.Optional[Region] = None
        self.remaining_wait_states = 0

    def start(self, transaction: Transaction, region: Region,
              address_wait_states: int) -> None:
        self.state = self.BUSY
        self.current = transaction
        self.region = region
        self.remaining_wait_states = address_wait_states

    def finish(self) -> None:
        self.state = self.IDLE
        self.current = None
        self.region = None


class EcBusLayer1(EcBusBase):
    """Cycle-accurate EC bus with the four-queue internal structure."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 memory_map: MemoryMap, name: str = "ec_bus_l1",
                 power_model: typing.Optional["Layer1PowerModel"] = None,
                 ) -> None:
        super().__init__(simulator, clock, memory_map, name)
        self.power_model = power_model
        self.request_queue = TransactionQueue("request")
        self.read_queue = TransactionQueue("read")
        self.write_queue = TransactionQueue("write")
        self._address_fsm = _AddressPhaseFsm()
        #: txn_id -> (region, slave, forward_read, forward_write,
        #: slave base address) — the route is resolved once when the
        #: address phase completes, so the per-beat data phases skip
        #: the bridge-capability getattr and the window containment
        #: re-check (resolve_checked already validated the full burst)
        self._routes: typing.Dict[int, tuple] = {}
        self.method(self._bus_process, name="bus_process",
                    sensitive=[clock.negedge_event], dont_initialize=True)

    def _accept(self, transaction: Transaction) -> None:
        self.request_queue.push(transaction)

    # ------------------------------------------------------------------
    # the bus process (falling edge): four sequential phases
    # ------------------------------------------------------------------

    def _bus_process(self) -> None:
        """One bus cycle: the paper's phases 2–4 plus energy commit.

        The phases run inline in one method — they execute every
        single cycle of every layer-1 simulation, so the former
        one-method-per-phase layout paid three calls and repeated
        attribute walks per cycle for structure no caller used.
        """
        power_model = self.power_model
        cycle = self.cycle
        routes = self._routes

        # -- phase 2: address (the FSM of Figure 3) --------------------
        fsm = self._address_fsm
        addr_busy = True
        if fsm.state == fsm.IDLE:
            fifo = self.request_queue._fifo
            if not fifo:
                addr_busy = False
            else:
                head = fifo.popleft()
                try:
                    # hierarchical decode: the first hop is the window
                    # on *this* bus (a local slave, or a bridge to
                    # another segment); rights are checked end-to-end
                    # at every hop
                    route = self.memory_map.resolve_checked(
                        head.address, head.kind, head.num_bytes)
                    region = route.regions[0]
                except DecodeError:
                    head.fail(cycle, ErrorCause.DECODE)
                    self.finish_pool.push(head)
                    addr_busy = False
                else:
                    fsm.start(head, region,
                              self.get_slave_state(region).address)
        if not addr_busy:
            if power_model is not None:
                power_model.address_phase_idle()
        else:
            # BUSY: drive the address channel, count down wait states
            transaction = fsm.current
            completing = fsm.remaining_wait_states == 0
            if power_model is not None:
                power_model.address_phase_active(transaction, completing)
            if completing:
                transaction.address_done_cycle = cycle
                slave = fsm.region.slave
                routes[transaction.txn_id] = (
                    fsm.region, slave,
                    getattr(slave, "forward_read_beat", None),
                    getattr(slave, "forward_write_beat", None),
                    slave.base_address)
                if transaction.direction is Direction.READ:
                    self.read_queue.push(transaction)
                else:
                    self.write_queue.push(transaction)
                fsm.finish()
            else:
                fsm.remaining_wait_states -= 1

        # -- phase 3: read data ----------------------------------------
        fifo = self.read_queue._fifo
        if not fifo:
            if power_model is not None:
                power_model.read_phase_idle()
        else:
            transaction = fifo[0]
            (_region, slave, forward, _fw,
             base) = routes[transaction.txn_id]
            if forward is not None:  # bridge: transaction-aware forward
                response = forward(transaction)
            else:
                # beat_address() inlined: the decode already validated
                # the whole burst inside the window, no wrap possible
                response = slave.read_beat(
                    transaction.address - base
                    + (transaction.beats_done << 2),
                    transaction._enables)
            if power_model is not None:
                power_model.read_phase_active(transaction, response)
            self._apply_response(transaction, response,
                                 self.read_queue, value=response.data)

        # -- phase 4: write data ---------------------------------------
        fifo = self.write_queue._fifo
        if not fifo:
            if power_model is not None:
                power_model.write_phase_idle()
        else:
            transaction = fifo[0]
            (_region, slave, _fr, forward,
             base) = routes[transaction.txn_id]
            beat = transaction.beats_done
            data = transaction.data[beat]
            if forward is not None:  # bridge: transaction-aware forward
                response = forward(transaction, data)
            else:
                # beat_address() inlined, as in the read phase
                response = slave.write_beat(
                    transaction.address - base + (beat << 2),
                    transaction._enables, data)
            if power_model is not None:
                power_model.write_phase_active(transaction, data,
                                               response)
            self._apply_response(transaction, response,
                                 self.write_queue)

        if power_model is not None:
            power_model.end_of_cycle(cycle)
        self.cycle = cycle + 1

    def get_slave_state(self, region: Region):
        """Invoke the slave control interface (the paper's phase 1).

        Invoked lazily when a phase actually needs the state — every
        cycle an eager snapshot of all slaves would produce the same
        values, just slower.
        """
        return region.slave.wait_states

    def _apply_response(self, transaction: Transaction,
                        response: SlaveResponse, queue: TransactionQueue,
                        value: typing.Optional[int] = None) -> None:
        state = response.state
        if state is BusState.OK:
            transaction.complete_beat(self.cycle, value)
            if transaction.finished:
                queue.pop()
                del self._routes[transaction.txn_id]
                self.finish_pool.push(transaction)
        elif state is BusState.ERROR:
            queue.pop()
            del self._routes[transaction.txn_id]
            # a cause-carrying response (bridge relaying a downstream
            # fault) keeps its original cause; plain slave errors stay
            # SLAVE_ERROR
            transaction.fail(self.cycle,
                             response.cause or ErrorCause.SLAVE_ERROR)
            self.finish_pool.push(transaction)
        # WAIT: beat stays at the head; retried next cycle

    # ------------------------------------------------------------------

    def _evict(self, transaction: Transaction) -> bool:
        """Remove *transaction* from whichever pipeline stage holds it."""
        if self.request_queue.remove(transaction):
            return True
        fsm = self._address_fsm
        if fsm.current is transaction:
            fsm.finish()
            return True
        for queue in (self.read_queue, self.write_queue):
            was_head = queue.head() is transaction
            if queue.remove(transaction):
                region = self._routes.pop(transaction.txn_id)[0]
                # the head may have started a paced beat: clear the
                # slave's wait-state countdown so the next transaction
                # (or a retry of this one) re-samples from scratch
                if was_head and hasattr(region.slave, "cancel_pending"):
                    region.slave.cancel_pending(
                        "r" if queue is self.read_queue else "w")
                # a bridge may hold a forwarded clone on the
                # downstream bus: withdraw it too
                abandon = getattr(region.slave, "abandon", None)
                if abandon is not None:
                    abandon(transaction)
                return True
        return False

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while any transaction is anywhere in the pipe."""
        return bool(self.request_queue or self.read_queue
                    or self.write_queue or len(self.finish_pool)
                    or self._address_fsm.state != _AddressPhaseFsm.IDLE)

    def __repr__(self) -> str:
        return (f"EcBusLayer1({self.name!r}, cycle={self.cycle}, "
                f"completed={self.transactions_completed})")
