"""Bus masters driving the TLM models.

The paper's master is the 4KSc core's bus interface unit; for bus-level
experiments it is replaced by programmable masters that replay scripted
transaction sequences — exactly how the paper drove its models with
bus traces captured from an assembly test program (§4.1).

Masters act on the rising clock edge and re-invoke the non-blocking bus
interfaces every cycle until ``OK``/``ERROR`` (§3.1).  Two issue
disciplines are provided:

* :class:`BlockingMaster` — one transaction in flight at a time,
* :class:`PipelinedMaster` — keeps a window of transactions in flight,
  exercising the pipelined address/data phases and the 4/4/4 budgets.

A script item is either a :class:`~repro.ec.Transaction` or an
``(idle_gap, Transaction)`` pair requesting *idle_gap* idle cycles
before the transaction is issued.
"""

from __future__ import annotations

import typing

from repro.ec import BusState, Transaction
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Module, Simulator

ScriptItem = typing.Union[Transaction, typing.Tuple[int, Transaction]]


def normalise_script(script: typing.Iterable[ScriptItem]
                     ) -> typing.List[typing.Tuple[int, Transaction]]:
    """Expand script items to uniform ``(idle_gap, transaction)`` pairs."""
    items = []
    for entry in script:
        if isinstance(entry, Transaction):
            items.append((0, entry))
        else:
            gap, transaction = entry
            if gap < 0:
                raise ValueError(f"negative idle gap: {gap}")
            items.append((gap, transaction))
    return items


class ScriptedMaster(Module):
    """Common machinery for script-replaying masters."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface,
                 script: typing.Iterable[ScriptItem],
                 name: str = "master") -> None:
        super().__init__(simulator, name)
        self.bus = bus
        self.script = normalise_script(script)
        self.completed: typing.List[Transaction] = []
        self.errors: typing.List[Transaction] = []
        self._next_index = 0
        self._idle_remaining = self.script[0][0] if self.script else 0
        self.done = len(self.script) == 0
        self.done_event = simulator.event(f"{name}.done")
        self.method(self._on_clock, name="on_clock",
                    sensitive=[clock.posedge_event], dont_initialize=True)

    def _on_clock(self) -> None:
        raise NotImplementedError  # pragma: no cover

    def _record(self, transaction: Transaction) -> None:
        self.completed.append(transaction)
        if transaction.error:
            self.errors.append(transaction)
        if (self._next_index >= len(self.script)
                and self._nothing_in_flight() and not self.done):
            self.done = True
            self.done_event.notify_delta()

    def _nothing_in_flight(self) -> bool:
        raise NotImplementedError  # pragma: no cover

    def _arm_gap_for_next(self) -> None:
        """Load the idle gap of the next script item, if any."""
        if self._next_index < len(self.script):
            self._idle_remaining = self.script[self._next_index][0]


class BlockingMaster(ScriptedMaster):
    """Issues one transaction at a time; waits for completion."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface,
                 script: typing.Iterable[ScriptItem],
                 name: str = "blocking_master") -> None:
        super().__init__(simulator, clock, bus, script, name)
        self._current: typing.Optional[Transaction] = None

    def _nothing_in_flight(self) -> bool:
        return self._current is None

    def _on_clock(self) -> None:
        if self.done:
            return
        if self._current is None:
            if self._next_index >= len(self.script):
                return
            if self._idle_remaining > 0:
                self._idle_remaining -= 1
                return
            self._current = self.script[self._next_index][1]
            self._next_index += 1
        state = self.bus.issue(self._current)
        if state.finished:
            finished = self._current
            self._current = None
            self._arm_gap_for_next()
            self._record(finished)
            # back-to-back issue: the BIU starts the next request in the
            # same cycle it samples a completion (EC back-to-back reads)
            if (self._idle_remaining == 0
                    and self._next_index < len(self.script)):
                self._current = self.script[self._next_index][1]
                self._next_index += 1
                self.bus.issue(self._current)


class PipelinedMaster(ScriptedMaster):
    """Keeps up to *window* transactions in flight simultaneously."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface,
                 script: typing.Iterable[ScriptItem],
                 window: int = 4, name: str = "pipelined_master") -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        super().__init__(simulator, clock, bus, script, name)
        self.window = window
        self._in_flight: typing.List[Transaction] = []

    def _nothing_in_flight(self) -> bool:
        return not self._in_flight

    def _on_clock(self) -> None:
        if self.done:
            return
        # advance everything already in flight, collecting completions
        still_flying: typing.List[Transaction] = []
        finished: typing.List[Transaction] = []
        for transaction in self._in_flight:
            state = self.bus.issue(transaction)
            if state.finished:
                finished.append(transaction)
            else:
                still_flying.append(transaction)
        self._in_flight = still_flying
        # issue new work while the window, gaps and script allow
        if self._idle_remaining > 0:
            self._idle_remaining -= 1
        else:
            while (len(self._in_flight) < self.window
                   and self._next_index < len(self.script)
                   and self._idle_remaining == 0):
                transaction = self.script[self._next_index][1]
                state = self.bus.issue(transaction)
                if state is BusState.WAIT:
                    break  # budget full: retry the same item next cycle
                self._next_index += 1
                self._arm_gap_for_next()
                if state.finished:
                    finished.append(transaction)
                else:
                    self._in_flight.append(transaction)
        for transaction in finished:
            self._record(transaction)


def run_script(simulator: Simulator, master: ScriptedMaster,
               max_cycles: int, clock: Clock) -> int:
    """Run until the master finishes; returns elapsed clock cycles.

    Raises :class:`TimeoutError` if the script does not complete within
    *max_cycles* — a guard against protocol deadlocks in tests.
    """
    start_cycle = clock.cycles
    slice_cycles = 64
    elapsed = 0
    while elapsed < max_cycles:
        simulator.run(slice_cycles * clock.period)
        elapsed += slice_cycles
        if master.done:
            return clock.cycles - start_cycle
    raise TimeoutError(
        f"master {master.name!r} not done after {max_cycles} cycles "
        f"({len(master.completed)}/{len(master.script)} transactions)")
