"""Bus masters driving the TLM models.

The paper's master is the 4KSc core's bus interface unit; for bus-level
experiments it is replaced by programmable masters that replay scripted
transaction sequences — exactly how the paper drove its models with
bus traces captured from an assembly test program (§4.1).

Masters act on the rising clock edge and re-invoke the non-blocking bus
interfaces every cycle until ``OK``/``ERROR`` (§3.1).  Two issue
disciplines are provided:

* :class:`BlockingMaster` — one transaction in flight at a time,
* :class:`PipelinedMaster` — keeps a window of transactions in flight,
  exercising the pipelined address/data phases and the 4/4/4 budgets.

A script item is either a :class:`~repro.ec.Transaction` or an
``(idle_gap, Transaction)`` pair requesting *idle_gap* idle cycles
before the transaction is issued.

Both masters optionally carry a :class:`~repro.ec.RetryPolicy` — the
fault-tolerance layer of a power-aware card OS: failed transactions are
re-issued (as fresh clones) after a backoff, a per-transaction watchdog
cancels transfers stuck on a hung slave instead of letting the whole
run hit :func:`run_script`'s global :class:`TimeoutError`, and every
recovery episode is recorded as a :class:`~repro.ec.FaultReport`.
Without a policy the behaviour is bit-identical to the fault-oblivious
masters the accuracy experiments were built on.
"""

from __future__ import annotations

import typing

from repro.ec import (BusState, ErrorCause, FaultReport, RetryPolicy,
                      Transaction)
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import (BlockedWaiter, Clock, Module, ProgressWatchdog,
                          Simulator, StallError)

from .bus_base import EcBusBase

ScriptItem = typing.Union[Transaction, typing.Tuple[int, Transaction]]


def normalise_script(script: typing.Iterable[ScriptItem]
                     ) -> typing.List[typing.Tuple[int, Transaction]]:
    """Expand script items to uniform ``(idle_gap, transaction)`` pairs."""
    items = []
    for entry in script:
        if isinstance(entry, Transaction):
            items.append((0, entry))
        else:
            gap, transaction = entry
            if gap < 0:
                raise ValueError(f"negative idle gap: {gap}")
            items.append((gap, transaction))
    return items


class _Recovery:
    """Per-script-item recovery bookkeeping across retry attempts."""

    __slots__ = ("attempts", "cause", "first_issue_cycle",
                 "first_error_cycle", "energy_at_first_error")

    def __init__(self) -> None:
        self.attempts = 0  # failed attempts so far
        self.cause: typing.Optional[ErrorCause] = None  # last failure's
        self.first_issue_cycle: typing.Optional[int] = None
        self.first_error_cycle: typing.Optional[int] = None
        self.energy_at_first_error: typing.Optional[float] = None


class ScriptedMaster(Module):
    """Common machinery for script-replaying masters."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface,
                 script: typing.Iterable[ScriptItem],
                 name: str = "master",
                 retry_policy: typing.Optional[RetryPolicy] = None,
                 energy_probe: typing.Optional[
                     typing.Callable[[], float]] = None,
                 governor=None) -> None:
        super().__init__(simulator, name)
        self.bus = bus
        # EcBusBase buses complete in-flight transactions only through
        # the finish pool, so its dict doubles as a "did anything
        # finish?" probe the per-cycle loops can test before paying
        # for a full (almost always WAIT) re-issue call.  Foreign
        # buses (layer 3, arbiter ports) keep the plain re-issue.
        self._completions: typing.Optional[dict] = (
            bus.finish_pool._done if isinstance(bus, EcBusBase)
            else None)
        self.clock = clock
        self.script = normalise_script(script)
        self.retry_policy = retry_policy
        self.energy_probe = energy_probe
        self.governor = governor
        self.completed: typing.List[Transaction] = []
        self.errors: typing.List[Transaction] = []
        self.fault_reports: typing.List[FaultReport] = []
        self.retries = 0   # re-issues of failed transactions
        self.timeouts = 0  # watchdog aborts
        self._next_index = 0
        self._idle_remaining = self.script[0][0] if self.script else 0
        self.done = len(self.script) == 0
        self.done_event = simulator.event(f"{name}.done")
        self.method(self._on_clock, name="on_clock",
                    sensitive=[clock.posedge_event], dont_initialize=True)
        # report this master in DeadlockError/StallError diagnostics
        # while it still has unfinished script work
        simulator.add_waiter_hook(self._blocked_waiters)

    def _blocked_waiters(self) -> typing.List[BlockedWaiter]:
        """Waiter hook: describe this master while it is not done."""
        if self.done:
            return []
        in_flight = self._in_flight_summary()
        return [BlockedWaiter(
            f"master {self.name!r}",
            in_flight or "next script item",
            f"{len(self.completed)}/{len(self.script)} transactions, "
            f"{len(self.errors)} errors, {self.retries} retries, "
            f"{self.timeouts} watchdog timeouts")]

    def _in_flight_summary(self) -> str:
        """Describe the in-flight transactions (subclass-specific)."""
        return ""  # pragma: no cover - overridden

    @staticmethod
    def _describe(transaction: Transaction) -> str:
        return (f"{transaction.kind.value}@{transaction.address:#x} "
                f"beat {transaction.beats_done}/"
                f"{transaction.burst_length} "
                f"issued c{transaction.issue_cycle}")

    def _on_clock(self) -> None:
        raise NotImplementedError  # pragma: no cover

    def _record(self, transaction: Transaction) -> None:
        self.completed.append(transaction)
        if transaction.error:
            self.errors.append(transaction)
        if (self._next_index >= len(self.script)
                and self._nothing_in_flight() and not self.done):
            self.done = True
            self.done_event.notify_delta()

    def _nothing_in_flight(self) -> bool:
        raise NotImplementedError  # pragma: no cover

    def _arm_gap_for_next(self) -> None:
        """Load the idle gap of the next script item, if any."""
        if self._next_index < len(self.script):
            self._idle_remaining = self.script[self._next_index][0]

    def _may_issue(self, transaction: Transaction) -> bool:
        """Consult the energy governor before issuing *new* work.

        Retries are never gated: recovery traffic repairs state the
        card has already paid for.  Without a governor this is a
        constant True and the issue timing is bit-identical to the
        governor-less masters.
        """
        return (self.governor is None
                or self.governor.may_issue(transaction))

    # -- recovery machinery (inert without a retry policy) ----------------

    def _watchdog_expired(self, transaction: Transaction,
                          attempt_start: int) -> bool:
        policy = self.retry_policy
        return (policy is not None
                and policy.timeout_cycles is not None
                and not transaction.finished
                and self.clock.cycles - attempt_start
                > policy.timeout_cycles)

    def _abort(self, transaction: Transaction) -> bool:
        """Watchdog abort: cancel on the bus, mark as timed out."""
        if not self.bus.cancel(transaction):
            return False  # already finishing: collect it normally
        transaction.fail(self.clock.cycles, ErrorCause.TIMEOUT)
        self.timeouts += 1
        return True

    def _handle_finished(self, transaction: Transaction,
                         rec: _Recovery) -> typing.Optional[Transaction]:
        """Process a finished attempt; returns a retry clone or None.

        None means the script item is final and has been recorded
        (successfully, or as a permanent error).
        """
        if rec.first_issue_cycle is None:
            rec.first_issue_cycle = transaction.issue_cycle
        if not transaction.error:
            self._finalize(transaction, rec)
            return None
        rec.attempts += 1
        rec.cause = transaction.error_cause
        if rec.first_error_cycle is None:
            rec.first_error_cycle = transaction.data_done_cycle
            if self.energy_probe is not None:
                rec.energy_at_first_error = self.energy_probe()
        policy = self.retry_policy
        if policy is None or not policy.should_retry(
                transaction.error_cause, rec.attempts):
            self._finalize(transaction, rec)
            return None
        self.retries += 1
        return transaction.clone()

    def _finalize(self, transaction: Transaction, rec: _Recovery) -> None:
        """Record the final outcome of a script item (+ fault report).

        Reports are an artefact of the opt-in recovery layer: without
        a policy, errors land in ``self.errors`` exactly as before.
        """
        if self.retry_policy is not None and rec.attempts > 0:
            recovered = not transaction.error
            resolved = transaction.data_done_cycle
            cycles_lost = None
            if (resolved is not None
                    and rec.first_issue_cycle is not None):
                span = resolved - rec.first_issue_cycle
                if recovered and transaction.latency_cycles is not None:
                    span -= transaction.latency_cycles
                cycles_lost = max(span, 0)
            retry_energy = None
            if (self.energy_probe is not None
                    and rec.energy_at_first_error is not None):
                retry_energy = (self.energy_probe()
                                - rec.energy_at_first_error)
            self.fault_reports.append(FaultReport(
                address=transaction.address,
                kind=transaction.kind.value,
                cause=rec.cause,
                attempts=rec.attempts + (0 if transaction.error else 1),
                recovered=recovered,
                first_issue_cycle=rec.first_issue_cycle,
                resolved_cycle=resolved,
                cycles_lost=cycles_lost,
                retry_energy_pj=retry_energy))
        self._record(transaction)


class BlockingMaster(ScriptedMaster):
    """Issues one transaction at a time; waits for completion."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface,
                 script: typing.Iterable[ScriptItem],
                 name: str = "blocking_master",
                 retry_policy: typing.Optional[RetryPolicy] = None,
                 energy_probe: typing.Optional[
                     typing.Callable[[], float]] = None,
                 governor=None) -> None:
        super().__init__(simulator, clock, bus, script, name,
                         retry_policy, energy_probe, governor)
        self._current: typing.Optional[Transaction] = None
        self._rec: typing.Optional[_Recovery] = None
        self._attempt_start = 0
        self._pending_retry: typing.Optional[Transaction] = None
        self._retry_wait = 0

    def _nothing_in_flight(self) -> bool:
        return self._current is None and self._pending_retry is None

    def _in_flight_summary(self) -> str:
        if self._current is not None:
            return f"bus completion of {self._describe(self._current)}"
        if self._pending_retry is not None:
            return (f"retry backoff ({self._retry_wait} cycles left) for "
                    f"{self._describe(self._pending_retry)}")
        return ""

    def _start_item(self) -> None:
        self._current = self.script[self._next_index][1]
        self._next_index += 1
        self._rec = _Recovery()
        self._attempt_start = self.clock.cycles

    def _on_clock(self) -> None:
        if self.done:
            return
        if (self._current is not None
                and self._watchdog_expired(self._current,
                                           self._attempt_start)):
            if self._abort(self._current):
                aborted, self._current = self._current, None
                self._resolve_attempt(aborted)
                return
        if self._current is None and self._pending_retry is not None:
            if self._retry_wait > 0:
                self._retry_wait -= 1
                return
            self._current = self._pending_retry
            self._pending_retry = None
            self._attempt_start = self.clock.cycles
        if self._current is None:
            if self._next_index >= len(self.script):
                return
            if self._idle_remaining > 0:
                self._idle_remaining -= 1
                return
            if not self._may_issue(self.script[self._next_index][1]):
                return
            self._start_item()
        state = self.bus.issue(self._current)
        if state.finished:
            finished = self._current
            self._current = None
            self._resolve_attempt(finished)
            # back-to-back issue: the BIU starts the next request in the
            # same cycle it samples a completion (EC back-to-back reads)
            if (self._current is None and self._pending_retry is None
                    and self._idle_remaining == 0
                    and self._next_index < len(self.script)
                    and self._may_issue(self.script[self._next_index][1])):
                self._start_item()
                self.bus.issue(self._current)

    def _resolve_attempt(self, finished: Transaction) -> None:
        """Finalize or schedule a retry for the attempt just ended."""
        clone = self._handle_finished(finished, self._rec)
        if clone is None:
            self._rec = None
            self._arm_gap_for_next()
            return
        backoff = self.retry_policy.backoff_cycles
        if backoff == 0:
            # immediate re-issue, mirroring the back-to-back path
            self._current = clone
            self._attempt_start = self.clock.cycles
            self.bus.issue(self._current)
        else:
            self._pending_retry = clone
            self._retry_wait = backoff


class PipelinedMaster(ScriptedMaster):
    """Keeps up to *window* transactions in flight simultaneously."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface,
                 script: typing.Iterable[ScriptItem],
                 window: int = 4, name: str = "pipelined_master",
                 retry_policy: typing.Optional[RetryPolicy] = None,
                 energy_probe: typing.Optional[
                     typing.Callable[[], float]] = None,
                 governor=None) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        super().__init__(simulator, clock, bus, script, name,
                         retry_policy, energy_probe, governor)
        self.window = window
        self._in_flight: typing.List[Transaction] = []
        #: txn_id -> [recovery record, attempt-start clock cycle]
        self._meta: typing.Dict[int, list] = {}
        #: [backoff countdown, clone, recovery record] awaiting re-issue
        self._retry_queue: typing.List[list] = []

    def _nothing_in_flight(self) -> bool:
        return not self._in_flight and not self._retry_queue

    def _in_flight_summary(self) -> str:
        parts = [f"bus completion of {self._describe(t)}"
                 for t in self._in_flight]
        parts.extend(f"retry backoff for {self._describe(entry[1])}"
                     for entry in self._retry_queue)
        return "; ".join(parts)

    def _on_clock(self) -> None:
        if self.done:
            return
        in_flight = self._in_flight
        retry_queue = self._retry_queue
        issue = self.bus.issue
        finished: typing.Optional[typing.List[Transaction]] = None
        # watchdog: abort in-flight transactions stuck past the budget
        retry_policy = self.retry_policy
        if (retry_policy is not None
                and retry_policy.timeout_cycles is not None):
            for transaction in list(in_flight):
                meta = self._meta[transaction.txn_id]
                if self._watchdog_expired(transaction, meta[1]):
                    if self._abort(transaction):
                        in_flight.remove(transaction)
                        (finished := finished or []).append(transaction)
        # advance everything already in flight, collecting completions
        completions = self._completions
        if in_flight and (completions is None or completions):
            still_flying: typing.List[Transaction] = []
            for transaction in in_flight:
                if (completions is not None
                        and transaction.txn_id not in completions):
                    still_flying.append(transaction)  # would be WAIT
                    continue
                state = issue(transaction)
                if state.finished:
                    (finished := finished or []).append(transaction)
                else:
                    still_flying.append(transaction)
            in_flight = self._in_flight = still_flying
        # re-issue retries whose backoff elapsed, window permitting
        if retry_queue:
            for entry in retry_queue:
                if entry[0] > 0:
                    entry[0] -= 1
            while (retry_queue and retry_queue[0][0] <= 0
                   and len(in_flight) < self.window):
                _, clone, rec = retry_queue[0]
                state = issue(clone)
                if state is BusState.WAIT:
                    break  # budget full: retry the same clone next cycle
                retry_queue.pop(0)
                self._meta[clone.txn_id] = [rec, self.clock.cycles]
                if state.finished:
                    (finished := finished or []).append(clone)
                else:
                    in_flight.append(clone)
        # issue new work while the window, gaps and script allow
        if self._idle_remaining > 0:
            self._idle_remaining -= 1
        else:
            script = self.script
            window = self.window
            governor = self.governor
            while (len(in_flight) < window
                   and self._next_index < len(script)
                   and self._idle_remaining == 0):
                transaction = script[self._next_index][1]
                if (governor is not None
                        and not governor.may_issue(transaction)):
                    break  # governor deferral: try again next cycle
                state = issue(transaction)
                if state is BusState.WAIT:
                    break  # budget full: retry the same item next cycle
                self._next_index += 1
                self._arm_gap_for_next()
                self._meta[transaction.txn_id] = [_Recovery(),
                                                  self.clock.cycles]
                if state.finished:
                    (finished := finished or []).append(transaction)
                else:
                    in_flight.append(transaction)
        if finished:
            for transaction in finished:
                rec = self._meta.pop(transaction.txn_id)[0]
                clone = self._handle_finished(transaction, rec)
                if clone is not None:
                    retry_queue.append(
                        [retry_policy.backoff_cycles, clone, rec])


def run_script(simulator: Simulator, master: ScriptedMaster,
               max_cycles: int, clock: Clock,
               stall_cycles: typing.Optional[int] = None,
               wall_seconds: typing.Optional[float] = None) -> int:
    """Run until the master finishes; returns elapsed clock cycles.

    Raises :class:`~repro.kernel.StallError` (a
    :class:`TimeoutError` subclass, so pre-existing guards still work)
    if the script does not complete within *max_cycles* — a guard
    against protocol deadlocks in tests.  The message reports how far
    the master got, including its recovery statistics, and now also the
    blocked-waiter/event-journal diagnostic from the kernel, so a stuck
    run is diagnosable from the exception alone.

    *stall_cycles* / *wall_seconds* optionally arm a
    :class:`~repro.kernel.ProgressWatchdog` keyed to the master's
    completion counters: a master making *no* progress for that many
    bus cycles (or seconds of wall clock) trips early with the same
    diagnostic, instead of burning the whole *max_cycles* budget.
    """
    start_cycle = clock.cycles
    slice_cycles = 64
    elapsed = 0
    watchdog = None
    if stall_cycles is not None or wall_seconds is not None:
        watchdog = ProgressWatchdog(
            progress=lambda: (len(master.completed), master.retries,
                              master.timeouts, master._next_index),
            stall_time=(None if stall_cycles is None
                        else stall_cycles * clock.period),
            wall_seconds=wall_seconds,
            name=f"{master.name}.progress")
        simulator.attach_watchdog(watchdog)
    try:
        while elapsed < max_cycles:
            simulator.run(slice_cycles * clock.period)
            elapsed += slice_cycles
            if master.done or simulator.powered_off:
                # power loss is a clean (if abrupt) end of the run, not
                # a stall: the caller inspects simulator.powered_off
                return clock.cycles - start_cycle
    finally:
        if watchdog is not None:
            simulator.detach_watchdog(watchdog)
    raise simulator.diagnose(
        f"master {master.name!r} not done after {max_cycles} cycles "
        f"({len(master.completed)}/{len(master.script)} transactions, "
        f"{len(master.errors)} errors, {master.retries} retries, "
        f"{master.timeouts} watchdog timeouts)",
        kind="stall", exc_class=StallError)
