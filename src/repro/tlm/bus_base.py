"""Machinery shared by the layer-1 and layer-2 bus models.

Both layers present the same non-blocking master interface (§3.1/§3.2:
"the read/write interfaces are like the interfaces of the master...
all interface methods are implemented non-blocking"), enforce the same
outstanding budgets and complete transactions through a finish pool the
master's next interface call drains.
"""

from __future__ import annotations

import typing

from repro.ec import (BusState, MemoryMap, OutstandingBudget, Transaction)
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Module, Simulator

from .queues import FinishPool


class EcBusBase(Module, BusMasterInterface):
    """Common master-side behaviour of the EC bus models."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 memory_map: MemoryMap, name: str) -> None:
        Module.__init__(self, simulator, name)
        self.clock = clock
        self.memory_map = memory_map
        self.budget = OutstandingBudget()
        self.finish_pool = FinishPool()
        self.cycle = 0
        self.transactions_completed = 0
        self.trace_log: typing.Optional[typing.List[Transaction]] = None
        self.monitors: typing.List[typing.Any] = []

    def enable_tracing(self) -> None:
        """Record every accepted transaction (the paper's §4.1 flow:
        trace the bus, replay the trace on the other model layers)."""
        self.trace_log = []

    def attach_monitor(self, monitor) -> None:
        """Register an observer notified as each transaction completes.

        A monitor needs one method,
        ``on_transaction_complete(bus, transaction)``, called when the
        master collects the finished transaction.  This transaction-level
        hook exists on every model layer — including layer 2, which has
        no per-cycle wires to observe.
        """
        if monitor not in self.monitors:
            self.monitors.append(monitor)

    # -- master interfaces --------------------------------------------------

    def instruction_fetch(self, transaction: Transaction) -> BusState:
        return self._master_call(transaction)

    def data_read(self, transaction: Transaction) -> BusState:
        return self._master_call(transaction)

    def data_write(self, transaction: Transaction) -> BusState:
        return self._master_call(transaction)

    def issue(self, transaction: Transaction) -> BusState:
        # all three kind-specific interfaces delegate to _master_call,
        # so the per-cycle master path can skip the kind dispatch
        return self._master_call(transaction)

    def _master_call(self, transaction: Transaction) -> BusState:
        # inlined FinishPool.collect: this runs once per in-flight
        # transaction per cycle, so the extra call layers matter
        pool = self.finish_pool
        if pool._done.pop(transaction.txn_id, None) is not None:
            self.budget.release(transaction)
            self.transactions_completed += 1
            for monitor in self.monitors:
                monitor.on_transaction_complete(self, transaction)
            return transaction.state  # OK or ERROR
        if transaction.issue_cycle is not None:
            return BusState.WAIT  # in progress somewhere in the pipe
        if not self.budget.try_acquire(transaction):
            return BusState.WAIT  # outstanding budget exhausted; retry
        transaction.issue_cycle = self.cycle
        if self.trace_log is not None:
            self.trace_log.append(transaction)
        self._accept(transaction)
        return BusState.REQUEST

    def _accept(self, transaction: Transaction) -> None:
        """Layer-specific admission of a fresh transaction."""
        raise NotImplementedError  # pragma: no cover

    def cancel(self, transaction: Transaction) -> bool:
        """Withdraw an unfinished transaction (watchdog abort).

        A transaction sitting in the finish pool has already completed;
        it cannot be cancelled and the master must collect it with its
        next interface call instead.
        """
        if transaction in self.finish_pool:
            return False
        if transaction.issue_cycle is None:
            return False  # never accepted: nothing to withdraw
        if not self._evict(transaction):
            return False
        self.budget.release(transaction)
        return True

    def _evict(self, transaction: Transaction) -> bool:
        """Layer-specific removal from the internal pipeline stages."""
        raise NotImplementedError  # pragma: no cover

    @property
    def busy(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, cycle={self.cycle}, "
                f"completed={self.transactions_completed})")
