"""Hierarchical bus models with energy estimation for smart cards.

Reproduction of Neffe et al., "Energy Estimation Based on Hierarchical
Bus Models for Power-Aware Smart Cards" (DATE 2004).  See DESIGN.md for
the system inventory and EXPERIMENTS.md for the reproduced results.
"""

__version__ = "1.0.0"
