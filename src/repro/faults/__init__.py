"""Fault injection and fault tolerance for the bus models.

The paper's protocol defines an ``ERROR`` state (§3.1); this package
makes error traffic a first-class modeled workload: seeded, composable
fault injectors (:mod:`repro.faults.injectors`), a wrapper that attaches
them to any behavioural slave identically under every model layer
(:mod:`repro.faults.wrapper`), and — together with the master-side
:class:`~repro.ec.RetryPolicy` — the machinery behind the
``fault_campaign`` experiment that measures what recovery *costs* in
cycles and energy on each layer.
"""

from .injectors import (BitFlipInjector, ErrorSlave, FaultAction,
                        FaultEvent, FaultInjector, FaultKind,
                        IntermittentErrorInjector, StuckWaitInjector,
                        TransientErrorInjector, WriteTearInjector)
from .tear import TearInjector, tear_schedule
from .wrapper import FaultySlave

__all__ = [
    "BitFlipInjector",
    "ErrorSlave",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultySlave",
    "IntermittentErrorInjector",
    "StuckWaitInjector",
    "TearInjector",
    "TransientErrorInjector",
    "WriteTearInjector",
    "tear_schedule",
]
