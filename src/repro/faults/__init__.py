"""Fault injection and fault tolerance for the bus models.

The paper's protocol defines an ``ERROR`` state (§3.1); this package
makes error traffic a first-class modeled workload: seeded, composable
fault injectors (:mod:`repro.faults.injectors`), a wrapper that attaches
them to any behavioural slave identically under every model layer
(:mod:`repro.faults.wrapper`), and — together with the master-side
:class:`~repro.ec.RetryPolicy` — the machinery behind the
``fault_campaign`` experiment that measures what recovery *costs* in
cycles and energy on each layer.
"""

from .fabric import (ArbiterGlitchProcess, BRIDGE_FAULT_KINDS,
                     BridgeFaultProcess, FABRIC_FAULT_KINDS,
                     FabricFaultSpec, FaultyBridge, ROUTE_ERROR_CAUSES,
                     build_fault_processes, split_fault_specs)
from .injectors import (BitFlipInjector, ErrorSlave, FaultAction,
                        FaultEvent, FaultInjector, FaultKind,
                        IntermittentErrorInjector, StuckWaitInjector,
                        TransientErrorInjector, WriteTearInjector)
from .tear import TearInjector, tear_schedule
from .wrapper import FaultySlave

__all__ = [
    "ArbiterGlitchProcess",
    "BRIDGE_FAULT_KINDS",
    "BitFlipInjector",
    "BridgeFaultProcess",
    "ErrorSlave",
    "FABRIC_FAULT_KINDS",
    "FabricFaultSpec",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultyBridge",
    "FaultySlave",
    "IntermittentErrorInjector",
    "ROUTE_ERROR_CAUSES",
    "StuckWaitInjector",
    "TearInjector",
    "TransientErrorInjector",
    "WriteTearInjector",
    "build_fault_processes",
    "split_fault_specs",
    "tear_schedule",
]
