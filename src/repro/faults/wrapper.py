"""Fault-injecting slave wrapper, layer-agnostic by construction.

:class:`FaultySlave` wraps any :class:`~repro.tlm.slave.BehaviouralSlave`
and applies a list of injectors at the single point every model layer
funnels through — the ``do_read``/``do_write`` hooks:

* layer 1 reaches them through the wrapper's inherited per-beat
  ``read_beat``/``write_beat`` pacing,
* the RTL reference calls ``do_read``/``do_write`` directly (its
  channel engines do their own wait-state pacing),
* layer 2 and layer 3 reach them through the inherited
  ``read_block``/``write_block`` loops — still one injector decision
  per beat.

Stuck-``WAIT`` windows are expressed through the one mechanism all
layers already sample: the slave control interface's ``wait_states``
property (inflated while a window is open).  Layer 1 and the RTL model
re-sample it at each beat, layer 2 snapshots it at request creation —
each layer mis-predicts a hung slave exactly the way its abstraction
says it must.
"""

from __future__ import annotations

import typing

from repro.ec import (AccessRights, BusState, Direction, SlaveResponse,
                      WaitStates)
from repro.tlm.slave import BehaviouralSlave

from .injectors import FaultAction, FaultEvent, FaultInjector, FaultKind


class FaultySlave(BehaviouralSlave):
    """A transparent fault-injection wrapper around another slave."""

    def __init__(self, inner: BehaviouralSlave,
                 injectors: typing.Sequence[FaultInjector] = (),
                 name: typing.Optional[str] = None) -> None:
        super().__init__(inner.base_address, inner.size,
                         name=name or f"faulty({inner.name})")
        self.inner = inner
        self.injectors = list(injectors)
        self.events: typing.List[FaultEvent] = []
        self._cycle_source: typing.Optional[
            typing.Callable[[], int]] = None
        self._accesses = 0

    # -- plumbing ---------------------------------------------------------

    def bind_cycle_source(self,
                          cycle_source: typing.Callable[[], int]) -> None:
        """Attach the bus-cycle counter; forwarded to dynamic inners."""
        self._cycle_source = cycle_source
        if hasattr(self.inner, "bind_cycle_source"):
            self.inner.bind_cycle_source(cycle_source)

    def _now(self) -> int:
        """Current bus cycle, or an access counter when unbound."""
        if self._cycle_source is not None:
            return self._cycle_source()
        return self._accesses

    def event_counts(self) -> typing.Dict[FaultKind, int]:
        counts = {kind: 0 for kind in FaultKind}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    # -- slave control interface ------------------------------------------

    @property
    def wait_states(self) -> WaitStates:
        base = self.inner.wait_states
        extra = sum(injector.extra_wait_states(self._now())
                    for injector in self.injectors)
        if not extra:
            return base
        return WaitStates(address=base.address, read=base.read + extra,
                          write=base.write + extra)

    @property
    def access_rights(self) -> AccessRights:
        return self.inner.access_rights

    # -- faulted data interface -------------------------------------------

    def do_read(self, offset: int, byte_enables: int) -> SlaveResponse:
        self._accesses += 1
        cycle = self._now()
        for injector in self.injectors:
            action = injector.pre_access(Direction.READ, offset, cycle)
            if action is FaultAction.ERROR:
                self._record(injector.kind, Direction.READ, offset, cycle)
                return SlaveResponse.error()
        response = self.inner.do_read(offset, byte_enables)
        if response.state is BusState.OK:
            for injector in self.injectors:
                corrupted = injector.corrupt(Direction.READ, offset,
                                             response.data, cycle)
                if corrupted is not None:
                    self._record(injector.kind, Direction.READ, offset,
                                 cycle, f"{response.data:#010x}->"
                                        f"{corrupted:#010x}")
                    response = SlaveResponse.ok(corrupted)
        return response

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        self._accesses += 1
        cycle = self._now()
        for injector in self.injectors:
            action = injector.pre_access(Direction.WRITE, offset, cycle)
            if action is FaultAction.ERROR:
                self._record(injector.kind, Direction.WRITE, offset, cycle)
                return SlaveResponse.error()
            if action is FaultAction.TEAR:
                committed = byte_enables & injector.committed_enables
                if committed:
                    self.inner.do_write(offset, committed, data)
                self._record(injector.kind, Direction.WRITE, offset,
                             cycle, f"committed_lanes={committed:#06b}")
                return SlaveResponse.error()
        for injector in self.injectors:
            corrupted = injector.corrupt(Direction.WRITE, offset, data,
                                         cycle)
            if corrupted is not None:
                self._record(injector.kind, Direction.WRITE, offset,
                             cycle, f"{data:#010x}->{corrupted:#010x}")
                data = corrupted
        return self.inner.do_write(offset, byte_enables, data)

    def _record(self, kind: FaultKind, direction: Direction, offset: int,
                cycle: int, detail: str = "") -> None:
        self.events.append(FaultEvent(kind, cycle, direction, offset,
                                      detail))

    # -- back-door delegation ---------------------------------------------

    def __getattr__(self, name: str):
        # loaders/checkers reach the wrapped slave's back-door helpers
        # (load/peek/poke, programming counters) through the wrapper
        if name == "inner":  # not yet bound during construction
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (f"FaultySlave({self.inner!r}, "
                f"injectors={len(self.injectors)}, "
                f"events={len(self.events)})")
