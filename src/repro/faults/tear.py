"""Whole-card tearing: the card leaves the reader field mid-operation.

PR 1 modelled tearing as a per-write EEPROM artefact (some byte lanes
commit, the write errors).  Real card tears are harsher: the *entire*
card loses power at an arbitrary cycle — every in-flight bus phase,
every RAM word and every CPU register is gone, and only the
non-volatile memories survive.  :class:`TearInjector` models exactly
that with the kernel's cooperative power-loss stop
(:meth:`~repro.kernel.Simulator.power_off`): at a seeded trigger cycle
(or when the live power model reaches an energy threshold) the
simulator halts cleanly and latches off, and the testbench carries the
EEPROM image into a fresh platform
(:meth:`~repro.soc.SmartCardPlatform.cold_boot`) to study recovery.

:func:`tear_schedule` derives the seeded grids the ``tear_campaign``
sweeps — same seed, same tear points, bit for bit.
"""

from __future__ import annotations

import random
import typing

from repro.kernel import Clock, Module, Simulator


class TearInjector:
    """Kills the whole card at a trigger cycle or energy threshold.

    Parameters
    ----------
    simulator / clock:
        The kernel to halt and the clock edge the check rides on.
    cycle_source:
        Callable returning the current bus cycle (``lambda:
        bus.cycle``) — the counter the trigger compares against.
    at_cycle:
        Tear when the cycle counter reaches this value.
    power_model / at_energy_pj:
        Alternative energy trigger: tear once *power_model*'s
        ``total_energy_pj`` reaches *at_energy_pj* — "the field
        delivered this much and no more".
    """

    def __init__(self, simulator: Simulator, clock: Clock,
                 cycle_source: typing.Callable[[], int],
                 at_cycle: typing.Optional[int] = None,
                 power_model=None,
                 at_energy_pj: typing.Optional[float] = None,
                 name: str = "tear") -> None:
        if at_cycle is None and at_energy_pj is None:
            raise ValueError(
                "TearInjector needs at_cycle and/or at_energy_pj")
        if at_cycle is not None and at_cycle < 0:
            raise ValueError(f"at_cycle must be >= 0, got {at_cycle}")
        if at_energy_pj is not None and power_model is None:
            raise ValueError("at_energy_pj needs a power_model")
        self.simulator = simulator
        self.cycle_source = cycle_source
        self.at_cycle = at_cycle
        self.power_model = power_model
        self.at_energy_pj = at_energy_pj
        self.torn = False
        self.tear_cycle: typing.Optional[int] = None
        self.tear_energy_pj: typing.Optional[float] = None
        self._module = Module(simulator, name)
        self._module.method(self._check, name="check",
                            sensitive=[clock.posedge_event],
                            dont_initialize=True)

    def _check(self) -> None:
        if self.torn or self.simulator.powered_off:
            return
        cycle = self.cycle_source()
        if self.at_cycle is not None and cycle >= self.at_cycle:
            self._tear(cycle)
            return
        if (self.at_energy_pj is not None
                and self.power_model.total_energy_pj
                >= self.at_energy_pj):
            self._tear(cycle)

    def _tear(self, cycle: int) -> None:
        self.torn = True
        self.tear_cycle = cycle
        if self.power_model is not None:
            self.tear_energy_pj = self.power_model.total_energy_pj
        self.simulator.power_off(f"card torn at cycle {cycle}")


def tear_schedule(seed: typing.Union[int, str], count: int,
                  max_cycle: int, min_cycle: int = 1
                  ) -> typing.Tuple[int, ...]:
    """A seeded grid of *count* tear points in [min_cycle, max_cycle].

    Uniform draws from an independent stream (``f"{seed}/tear-grid"``),
    sorted for readable sweep output; duplicates are allowed — two
    tears at the same cycle are two (identical) experiments, keeping
    the grid size exact.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if max_cycle < min_cycle:
        raise ValueError(
            f"empty tear window: [{min_cycle}, {max_cycle}]")
    rng = random.Random(f"{seed}/tear-grid")
    return tuple(sorted(rng.randint(min_cycle, max_cycle)
                        for _ in range(count)))
