"""Composable, seeded fault injectors for the bus slaves.

Smart cards in the field see exactly the transient faults the EC
protocol's ``ERROR`` state encodes: power tearing during EEPROM
programming, glitched transfers flipping data bits, and misbehaving
slaves that stop answering.  Each injector models one such mechanism
as a deterministic function of an explicit ``random.Random`` stream
and the bus cycle, so campaigns are exactly reproducible at a fixed
seed.

Injectors are passive decision objects: they are consulted by
:class:`~repro.faults.wrapper.FaultySlave` on every slave data-interface
access and answer one of

* *nothing* — the access proceeds untouched,
* :attr:`FaultAction.ERROR` — the beat terminates with a bus error,
* :attr:`FaultAction.TEAR` — a write commits only part of its byte
  lanes and then errors (EEPROM write tearing),
* a data *corruption* — bit flips on the value read or written,
* *extra wait states* — a stuck-``WAIT`` window (hung slave).

The same injector instance therefore behaves identically no matter
which model layer drives the slave: layer 1 and the RTL reference
reach it per beat, layer 2 per block call — one decision per beat in
every case.
"""

from __future__ import annotations

import dataclasses
import enum
import random
import typing

from repro.ec import Direction, SlaveResponse, WaitStates
from repro.tlm.slave import BehaviouralSlave


class FaultKind(enum.Enum):
    """The fault mechanisms the subsystem can inject."""

    TRANSIENT_ERROR = "transient_error"
    INTERMITTENT_ERROR = "intermittent_error"
    BIT_FLIP = "bit_flip"
    STUCK_WAIT = "stuck_wait"
    WRITE_TEAR = "write_tear"


class FaultAction(enum.Enum):
    """Pre-access verdict of an injector."""

    ERROR = "error"
    TEAR = "tear"


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for campaign reporting."""

    kind: FaultKind
    cycle: int
    direction: Direction
    offset: int
    detail: str = ""


class FaultInjector:
    """Base class: no faults.  Subclasses override the hooks they use."""

    kind: FaultKind

    def pre_access(self, direction: Direction, offset: int,
                   cycle: int) -> typing.Optional[FaultAction]:
        """Decide whether this beat faults before touching the slave."""
        return None

    def corrupt(self, direction: Direction, offset: int, data: int,
                cycle: int) -> typing.Optional[int]:
        """Return corrupted *data*, or None to leave it untouched."""
        return None

    def extra_wait_states(self, cycle: int) -> int:
        """Additional wait states the slave inserts at *cycle*."""
        return 0


class TransientErrorInjector(FaultInjector):
    """Each beat independently errors with probability *rate*."""

    kind = FaultKind.TRANSIENT_ERROR

    def __init__(self, rate: float, rng: random.Random) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = rng

    def pre_access(self, direction: Direction, offset: int,
                   cycle: int) -> typing.Optional[FaultAction]:
        if self.rate and self.rng.random() < self.rate:
            return FaultAction.ERROR
        return None


class IntermittentErrorInjector(FaultInjector):
    """Errors arrive in bursts: one trigger faults *burst* accesses.

    Models a marginal contact or solder joint that, once it starts
    bouncing, disturbs several consecutive transfers.
    """

    kind = FaultKind.INTERMITTENT_ERROR

    def __init__(self, rate: float, rng: random.Random,
                 burst: int = 2) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = rate
        self.rng = rng
        self.burst = burst
        self._remaining = 0

    def pre_access(self, direction: Direction, offset: int,
                   cycle: int) -> typing.Optional[FaultAction]:
        if self._remaining > 0:
            self._remaining -= 1
            return FaultAction.ERROR
        if self.rate and self.rng.random() < self.rate:
            self._remaining = self.burst - 1
            return FaultAction.ERROR
        return None


class BitFlipInjector(FaultInjector):
    """Flips one random bit of the data with probability *rate*.

    Silent corruption: the beat still completes ``OK``, so this class
    of fault is visible in the energy model (different Hamming
    distances) and in the event log, but not to the retry machinery —
    as on a real bus without parity.
    """

    kind = FaultKind.BIT_FLIP

    def __init__(self, rate: float, rng: random.Random,
                 directions: typing.Iterable[Direction] = (
                     Direction.READ, Direction.WRITE)) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = rng
        self.directions = frozenset(directions)

    def corrupt(self, direction: Direction, offset: int, data: int,
                cycle: int) -> typing.Optional[int]:
        if direction not in self.directions or not self.rate:
            return None
        if self.rng.random() >= self.rate:
            return None
        return data ^ (1 << self.rng.randrange(32))


class StuckWaitInjector(FaultInjector):
    """Opens hung-slave windows: accesses see *extra_waits* more wait
    states for *duration* cycles.

    A window opens with probability *rate* per access (windows do not
    nest).  With *extra_waits* larger than a master's watchdog budget
    this models a slave that has effectively stopped answering; the
    watchdog aborts the transfer and a later retry — after the window
    closed — completes it.
    """

    kind = FaultKind.STUCK_WAIT

    def __init__(self, rate: float, rng: random.Random,
                 duration: int = 64, extra_waits: int = 256) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if duration < 1 or extra_waits < 1:
            raise ValueError("duration and extra_waits must be >= 1")
        self.rate = rate
        self.rng = rng
        self.duration = duration
        self.extra_waits = extra_waits
        self._window_until = -1
        self.windows_opened = 0

    def pre_access(self, direction: Direction, offset: int,
                   cycle: int) -> typing.Optional[FaultAction]:
        if (cycle >= self._window_until and self.rate
                and self.rng.random() < self.rate):
            self._window_until = cycle + self.duration
            self.windows_opened += 1
        return None  # the window only inflates wait states

    def extra_wait_states(self, cycle: int) -> int:
        return self.extra_waits if cycle < self._window_until else 0


class WriteTearInjector(FaultInjector):
    """Write tearing: power loss mid-programming commits only some
    byte lanes, and the programming-voltage monitor flags the error.

    The wrapper commits the lanes in *committed_enables* and answers
    ``ERROR``; a retry rewrites the full word, which is exactly the
    anti-tearing firmware pattern of smart card operating systems.
    """

    kind = FaultKind.WRITE_TEAR

    def __init__(self, rate: float, rng: random.Random,
                 committed_enables: int = 0b0011) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if not 0 <= committed_enables <= 0b1111:
            raise ValueError("committed_enables must be a 4-bit mask")
        self.rate = rate
        self.rng = rng
        self.committed_enables = committed_enables

    def pre_access(self, direction: Direction, offset: int,
                   cycle: int) -> typing.Optional[FaultAction]:
        if (direction is Direction.WRITE and self.rate
                and self.rng.random() < self.rate):
            return FaultAction.TEAR
        return None


class ErrorSlave(BehaviouralSlave):
    """A slave that always answers with a bus error (fault injection).

    *wait_states* lets errors arrive only after the configured wait
    cycles have elapsed, as on real buses where the slave decodes the
    access before rejecting it.
    """

    def __init__(self, base_address: int, size: int = 0x100,
                 wait_states: WaitStates = WaitStates(),
                 name: str = "error") -> None:
        super().__init__(base_address, size, wait_states, name=name)

    def do_read(self, offset: int, byte_enables: int) -> SlaveResponse:
        return SlaveResponse.error()

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        return SlaveResponse.error()
