"""Seeded fault injection for the multi-bus fabric.

The slave-side injectors (:mod:`repro.faults.injectors`) perturb what a
*memory* answers; this module perturbs the *fabric itself* — the bus
bridges and arbiters joining the segments.  The mechanisms mirror the
hazards hierarchical smart-card interconnects actually have:

* **crossing stalls** — a bridge holds a forwarded read at the hop for
  a window of cycles (clock-domain resynchronisation glitch),
* **route faults** — a crossing resolves to garbage and the clone
  fails at the hop with a definite :class:`~repro.ec.ErrorCause`,
* **posted-queue corruption** — a posted write is dropped at drain
  time (vanishes after its upstream acknowledge) or drained twice,
* **grant glitches** — an arbiter round with pending requests grants
  nobody (a glitched grant line); pure timing, nothing is lost.

Every decision is a *pure function of the crossing index* — the n-th
read crossing, the n-th posted write, the n-th arbitration round with
work to do — never of cycle numbers.  The three bus layers disagree
about time but, driven by a blocking master, agree exactly about
program order, so one schedule lands each fault on the same crossing
at layer 1, layer 2 and layer 3.  That property is what makes the
cross-layer differential oracle of :mod:`repro.chaos` possible.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import ErrorCause, MemoryMap
from repro.fabric import BusBridge

#: fault kinds a :class:`FabricFaultSpec` may carry
BRIDGE_FAULT_KINDS = ("read_stall", "route_error", "drop_write",
                      "dup_write")
FABRIC_FAULT_KINDS = BRIDGE_FAULT_KINDS + ("arb_glitch",)

#: route-fault ``param`` → the cause reported at the hop
ROUTE_ERROR_CAUSES: typing.Tuple[ErrorCause, ...] = (
    ErrorCause.DECODE, ErrorCause.SLAVE_ERROR)


@dataclasses.dataclass(frozen=True)
class FabricFaultSpec:
    """One scheduled fabric fault.

    ``index`` counts per mechanism class: read crossings for
    ``read_stall``/``route_error``, posted writes for ``drop_write``/
    ``dup_write``, arbitration rounds with pending requests for
    ``arb_glitch``.  ``param`` is the stall length for ``read_stall``
    and selects the :data:`ROUTE_ERROR_CAUSES` entry for
    ``route_error``; other kinds ignore it.
    """

    kind: str
    index: int
    param: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FABRIC_FAULT_KINDS:
            raise ValueError(f"unknown fabric fault kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("fault index must be >= 0")
        if self.kind == "read_stall" and self.param < 1:
            raise ValueError("read_stall needs param >= 1 (cycles)")
        if self.kind == "route_error" and not (
                0 <= self.param < len(ROUTE_ERROR_CAUSES)):
            raise ValueError(
                f"route_error param must index ROUTE_ERROR_CAUSES "
                f"(got {self.param})")

    def to_tuple(self) -> typing.Tuple[str, int, int]:
        """JSON-stable wire form (used by the chaos repro cells)."""
        return (self.kind, self.index, self.param)

    @classmethod
    def from_tuple(cls, value: typing.Sequence) -> "FabricFaultSpec":
        kind, index, param = value
        return cls(str(kind), int(index), int(param))


class BridgeFaultProcess:
    """Pure per-crossing fault schedule consulted by a bus bridge.

    Built once from the bridge-class specs of a scenario; the verdict
    for crossing *n* depends only on *n*, so fresh instances built from
    the same specs answer identically on every model layer.  ``fired``
    counts what was actually applied — the oracle checks it against the
    bridge's own counters (no fault may vanish unaccounted).
    """

    def __init__(self,
                 specs: typing.Iterable[FabricFaultSpec]) -> None:
        self.read_stalls: typing.Dict[int, int] = {}
        self.route_errors: typing.Dict[int, ErrorCause] = {}
        self.write_actions: typing.Dict[int, str] = {}
        for spec in specs:
            if spec.kind == "read_stall":
                self.read_stalls[spec.index] = spec.param
            elif spec.kind == "route_error":
                self.route_errors[spec.index] = (
                    ROUTE_ERROR_CAUSES[spec.param])
            elif spec.kind == "drop_write":
                self.write_actions[spec.index] = "drop"
            elif spec.kind == "dup_write":
                self.write_actions[spec.index] = "dup"
            else:
                raise ValueError(
                    f"{spec.kind!r} is not a bridge fault")
        self.fired: typing.Dict[str, int] = {
            kind: 0 for kind in BRIDGE_FAULT_KINDS}

    def read_crossing(self, index: int) -> typing.Tuple[
            int, typing.Optional[ErrorCause]]:
        """Verdict for the *index*-th forwarded read:
        ``(stall_cycles, cause)`` — a cause wins over a stall."""
        cause = self.route_errors.get(index)
        if cause is not None:
            self.fired["route_error"] += 1
            return 0, cause
        stall = self.read_stalls.get(index, 0)
        if stall > 0:
            self.fired["read_stall"] += 1
        return stall, None

    def write_crossing(self, index: int) -> typing.Optional[str]:
        """Verdict for the *index*-th posted write:
        ``"drop"``, ``"dup"`` or None."""
        action = self.write_actions.get(index)
        if action == "drop":
            self.fired["drop_write"] += 1
        elif action == "dup":
            self.fired["dup_write"] += 1
        return action

    @property
    def scheduled(self) -> int:
        return (len(self.read_stalls) + len(self.route_errors)
                + len(self.write_actions))

    def __repr__(self) -> str:
        return (f"BridgeFaultProcess(stalls={len(self.read_stalls)}, "
                f"routes={len(self.route_errors)}, "
                f"writes={len(self.write_actions)})")


class ArbiterGlitchProcess:
    """Pure per-decision glitch schedule consulted by a bus arbiter.

    ``suppress(n)`` is True when arbitration round *n* (counting only
    rounds with pending requests) must withhold its grants.
    """

    def __init__(self, indices: typing.Iterable[int]) -> None:
        self.indices = frozenset(int(i) for i in indices)
        self.fired = 0

    def suppress(self, index: int) -> bool:
        if index in self.indices:
            self.fired += 1
            return True
        return False

    @property
    def scheduled(self) -> int:
        return len(self.indices)

    def __repr__(self) -> str:
        return f"ArbiterGlitchProcess({sorted(self.indices)})"


class FaultyBridge(BusBridge):
    """A :class:`~repro.fabric.BusBridge` with a fault schedule baked
    in at construction — the explicit opt-in API for hand-built
    fabrics; :func:`build_fault_processes` + the ``fault_process``
    attribute do the same for fabrics built from a topology."""

    def __init__(self, name: str, downstream_map: MemoryMap,
                 fault_process: typing.Optional[BridgeFaultProcess] = None,
                 **kwargs: typing.Any) -> None:
        super().__init__(name, downstream_map, **kwargs)
        self.fault_process = fault_process


def split_fault_specs(specs: typing.Iterable[FabricFaultSpec]
                      ) -> typing.Tuple[typing.List[FabricFaultSpec],
                                        typing.List[int]]:
    """Partition *specs* into (bridge specs, arbiter glitch indices)."""
    bridge_specs: typing.List[FabricFaultSpec] = []
    glitch_indices: typing.List[int] = []
    for spec in specs:
        if spec.kind == "arb_glitch":
            glitch_indices.append(spec.index)
        else:
            bridge_specs.append(spec)
    return bridge_specs, glitch_indices


def build_fault_processes(specs: typing.Iterable[FabricFaultSpec]
                          ) -> typing.Tuple[
                              BridgeFaultProcess, ArbiterGlitchProcess]:
    """Fresh (bridge process, glitch process) pair for one model run.

    Processes carry mutable ``fired`` accounting, so each layer of a
    differential run gets its own pair — built from the same specs,
    they answer identically by construction.
    """
    bridge_specs, glitch_indices = split_fault_specs(specs)
    return (BridgeFaultProcess(bridge_specs),
            ArbiterGlitchProcess(glitch_indices))


__all__ = [
    "ArbiterGlitchProcess",
    "BRIDGE_FAULT_KINDS",
    "BridgeFaultProcess",
    "FABRIC_FAULT_KINDS",
    "FabricFaultSpec",
    "FaultyBridge",
    "ROUTE_ERROR_CAUSES",
    "build_fault_processes",
    "split_fault_specs",
]
