"""HW/SW interface study for the crypto coprocessor (extension).

The paper's introduction motivates the whole bus-modelling effort with
exactly this question: "Algorithms with high computational effort,
like cryptographic algorithms, are often supported by dedicated
coprocessors.  The chosen HW/SW interface to control these
coprocessors influences both system performance and power consumption"
(§1).  The paper never quantifies it; with the substrate built here we
can.  Three implementations of XTEA-encrypting a message are compared
on the energy-aware layer-1 bus:

* ``software``  — the cipher in MIPS assembly on the core (every round
  hits the bus for key loads, and the loop streams instruction
  fetches),
* ``pio``       — the crypto coprocessor driven by the CPU through its
  special-function registers (write block, start, poll, read block),
* ``dma``       — the coprocessor fetches and stores blocks itself
  through an arbitrated bus master port while the CPU only programs
  the descriptor and polls once.

All three run behind the same registered bus arbiter so the bus-level
playing field is identical.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import MemoryMap
from repro.kernel import Clock, Simulator
from repro.power import Layer1PowerModel
from repro.soc.crypto import (CryptoCoprocessor, DmaDriver,
                              xtea_encrypt)
from repro.soc.cpu import MipsCore
from repro.soc.memory import Rom, ScratchpadRam
from repro.tlm import BusArbiter, EcBusLayer1

from .common import CLOCK_PERIOD, characterization

ROM_BASE = 0x0000_0000
RAM_BASE = 0x0004_0000
CRYPTO_BASE = 0x0005_0000

KEY = [0x0F1E2D3C, 0x4B5A6978, 0x8796A5B4, 0xC3D2E1F0]

#: RAM layout (byte offsets)
KEY_OFFSET = 0x000
SRC_OFFSET = 0x100
DST_OFFSET = 0x500
FLAG_OFFSET = 0x7FC  # completion flag the programs set before halt


def make_plaintext(blocks: int) -> typing.List[typing.Tuple[int, int]]:
    return [((0x01010101 * (i + 1)) & 0xFFFFFFFF,
             (0x10F0F0F0 ^ (i * 0x01020304)) & 0xFFFFFFFF)
            for i in range(blocks)]


# ---------------------------------------------------------------------------
# the three programs
# ---------------------------------------------------------------------------

def software_program(blocks: int) -> str:
    """XTEA fully in software: 32 Feistel rounds per block."""
    return f"""
        lui   $s0, {RAM_BASE >> 16:#x}      # RAM base
        addiu $s1, $s0, {KEY_OFFSET}        # key[]
        addiu $s4, $s0, {SRC_OFFSET}        # src cursor
        addiu $s5, $s0, {DST_OFFSET}        # dst cursor
        addiu $s6, $zero, {blocks}          # block counter
        lui   $s3, 0x9E37
        ori   $s3, $s3, 0x79B9              # delta

block:  lw    $t0, 0($s4)                   # v0
        lw    $t1, 4($s4)                   # v1
        addiu $t2, $zero, 0                 # sum
        addiu $t3, $zero, 32                # round counter

round:  sll   $t4, $t1, 4
        srl   $t5, $t1, 5
        xor   $t4, $t4, $t5
        addu  $t4, $t4, $t1
        andi  $t5, $t2, 3
        sll   $t5, $t5, 2
        addu  $t5, $t5, $s1
        lw    $t5, 0($t5)                   # key[sum & 3]
        addu  $t5, $t2, $t5
        xor   $t4, $t4, $t5
        addu  $t0, $t0, $t4                 # v0 += ...
        addu  $t2, $t2, $s3                 # sum += delta
        sll   $t4, $t0, 4
        srl   $t5, $t0, 5
        xor   $t4, $t4, $t5
        addu  $t4, $t4, $t0
        srl   $t5, $t2, 11
        andi  $t5, $t5, 3
        sll   $t5, $t5, 2
        addu  $t5, $t5, $s1
        lw    $t5, 0($t5)                   # key[(sum >> 11) & 3]
        addu  $t5, $t2, $t5
        xor   $t4, $t4, $t5
        addu  $t1, $t1, $t4                 # v1 += ...
        addiu $t3, $t3, -1
        bne   $t3, $zero, round

        sw    $t0, 0($s5)
        sw    $t1, 4($s5)
        addiu $s4, $s4, 8
        addiu $s5, $s5, 8
        addiu $s6, $s6, -1
        bne   $s6, $zero, block

        addiu $t0, $zero, 1
        sw    $t0, {FLAG_OFFSET}($s0)
        halt
"""


def pio_program(blocks: int) -> str:
    """CPU drives the coprocessor's registers block by block."""
    return f"""
        lui   $s0, {RAM_BASE >> 16:#x}
        lui   $s2, {CRYPTO_BASE >> 16:#x}
        addiu $s4, $s0, {SRC_OFFSET}
        addiu $s5, $s0, {DST_OFFSET}
        addiu $s6, $zero, {blocks}

block:  lw    $t0, 0($s4)
        sw    $t0, 16($s2)                  # DIN0
        lw    $t0, 4($s4)
        sw    $t0, 20($s2)                  # DIN1
        addiu $t0, $zero, 1
        sw    $t0, 32($s2)                  # CTRL = START

poll:   lw    $t0, 36($s2)                  # STATUS
        andi  $t0, $t0, 2                   # DONE bit
        beq   $t0, $zero, poll

        lw    $t0, 24($s2)                  # DOUT0
        sw    $t0, 0($s5)
        lw    $t0, 28($s2)                  # DOUT1
        sw    $t0, 4($s5)
        addiu $s4, $s4, 8
        addiu $s5, $s5, 8
        addiu $s6, $s6, -1
        bne   $s6, $zero, block

        addiu $t0, $zero, 1
        sw    $t0, {FLAG_OFFSET}($s0)
        halt
"""


def dma_program(blocks: int) -> str:
    """CPU programs one DMA descriptor and waits for completion."""
    return f"""
        lui   $s0, {RAM_BASE >> 16:#x}
        lui   $s2, {CRYPTO_BASE >> 16:#x}
        addiu $t0, $s0, {SRC_OFFSET}
        sw    $t0, 40($s2)                  # SRC
        addiu $t0, $s0, {DST_OFFSET}
        sw    $t0, 44($s2)                  # DST
        addiu $t0, $zero, {blocks}
        sw    $t0, 48($s2)                  # LEN
        addiu $t0, $zero, 2
        sw    $t0, 32($s2)                  # CTRL = DMA_START

poll:   lw    $t0, 36($s2)                  # STATUS
        andi  $t0, $t0, 2
        beq   $t0, $zero, poll

        addiu $t0, $zero, 1
        sw    $t0, {FLAG_OFFSET}($s0)
        halt
"""


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ImplementationResult:
    """Measured cost of one implementation style."""

    name: str
    cycles: int
    bus_energy_pj: float
    coprocessor_energy_pj: float
    bus_transactions: int
    cpu_instructions: int
    correct: bool

    @property
    def total_energy_pj(self) -> float:
        return self.bus_energy_pj + self.coprocessor_energy_pj


@dataclasses.dataclass
class CoprocessorStudyResult:
    blocks: int
    rows: typing.List[ImplementationResult]

    def row(self, name: str) -> ImplementationResult:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        lines = [
            f"Crypto HW/SW interface study ({self.blocks} XTEA blocks):",
            f"{'implementation':<12}{'cycles':>9}{'bus pJ':>11}"
            f"{'engine pJ':>11}{'bus txns':>10}{'CPU instr':>11}{'ok':>4}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.name:<12}{row.cycles:>9}{row.bus_energy_pj:>11.1f}"
                f"{row.coprocessor_energy_pj:>11.1f}"
                f"{row.bus_transactions:>10}{row.cpu_instructions:>11}"
                f"{'yes' if row.correct else 'NO':>4}")
        return "\n".join(lines)


def _run_implementation(name: str, program: str, blocks: int,
                        table) -> ImplementationResult:
    simulator = Simulator(f"crypto_{name}")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = MemoryMap()
    rom = Rom(ROM_BASE)
    ram = ScratchpadRam(RAM_BASE, size=0x800)
    crypto = CryptoCoprocessor(CRYPTO_BASE)
    memory_map.add_slave(rom, "rom")
    memory_map.add_slave(ram, "ram")
    memory_map.add_slave(crypto, "crypto")
    power_model = Layer1PowerModel(table)
    bus = EcBusLayer1(simulator, clock, memory_map,
                      power_model=power_model)
    bus.enable_tracing()
    arbiter = BusArbiter(simulator, clock, bus, policy="priority")
    cpu = MipsCore(simulator, clock, arbiter.port("cpu", priority=0),
                   reset_pc=ROM_BASE)
    crypto.attach_dma_port(arbiter.port("crypto_dma", priority=1))
    DmaDriver(simulator, clock, crypto)
    # memory image: key, plaintext, program
    plaintext = make_plaintext(blocks)
    for index, word in enumerate(KEY):
        ram.poke(KEY_OFFSET + 4 * index, word)
        crypto.registers[index] = word  # pre-loaded key registers
    for index, (v0, v1) in enumerate(plaintext):
        ram.poke(SRC_OFFSET + 8 * index, v0)
        ram.poke(SRC_OFFSET + 8 * index + 4, v1)
    from repro.soc.assembler import assemble
    rom.load(0, assemble(program, origin=ROM_BASE))
    cpu.run_to_halt(2_000_000)
    if cpu.fault:
        raise RuntimeError(f"{name} implementation faulted: {cpu.fault}")
    correct = ram.peek(FLAG_OFFSET) == 1
    for index, (v0, v1) in enumerate(plaintext):
        expected = xtea_encrypt(v0, v1, KEY)
        got = (ram.peek(DST_OFFSET + 8 * index),
               ram.peek(DST_OFFSET + 8 * index + 4))
        if got != expected:
            correct = False
    # busy span: first issue to last completion (bus.cycle includes
    # the idle tail of the last run slice)
    finished = [t for t in bus.trace_log if t.data_done_cycle is not None]
    cycles = (max(t.data_done_cycle for t in finished)
              - min(t.issue_cycle for t in finished) + 1)
    return ImplementationResult(
        name, cycles, power_model.total_energy_pj, crypto.energy_pj,
        bus.transactions_completed, cpu.instructions_executed, correct)


def run_coprocessor_study(blocks: int = 4) -> CoprocessorStudyResult:
    """Measure the three implementation styles (see module docstring)."""
    table = characterization().table
    rows = [
        _run_implementation("software", software_program(blocks), blocks,
                            table),
        _run_implementation("pio", pio_program(blocks), blocks, table),
        _run_implementation("dma", dma_program(blocks), blocks, table),
    ]
    return CoprocessorStudyResult(blocks, rows)
