"""DPM campaign: do the adaptive power-management policies pay?

The PSM layer (:mod:`repro.power.psm`) lets every peripheral drop into
cheaper states; the governor layer (:mod:`repro.power.governors`)
decides when.  This campaign puts numbers on both claims the extension
makes:

1. **Policy grid** — a bursty journaled-EEPROM workload (seeded idle
   gaps between transactions) runs per (bus layer, policy, supply
   trace) on a deliberately starved harvesting supply.  The supply is
   calibrated so a card that never leaves ACTIVE slowly drains into
   brownout during the idle gaps, while a card that clock-gates its
   idle peripherals harvests faster than it burns.  Every arm drives
   the *identical* transaction script, so the delivered work is
   directly comparable; the verdict demands each adaptive policy incur
   strictly fewer brownouts than ``always_on`` at equal-or-better
   completed transactions.
2. **Emergency checkpoint study** — the same workload on a supply too
   weak to survive, with the full watermark ladder armed.  As charge
   falls through the stages the governor defers work, forces sleep,
   and finally fires the emergency checkpoint: a back-door journal
   commit of the in-flight logical transaction while there is still
   charge to finish it.  After the :class:`~repro.power.PowerLossEvent`
   kills the card, a cold boot runs journal recovery over the bus and
   the cell verifies the checkpointed transaction was applied, the
   home region is consistent, the journal is clean, and a second
   recovery pass is a no-op (idempotence).
3. **Technology corners** — the grid's headline energies re-priced at
   other (process node, Vdd) points through
   :class:`~repro.power.TechnologyTable` bilinear interpolation.  The
   energy models are linear in the characterisation table, so pricing
   scales the measured totals exactly; passing ``node_nm``/``vdd`` to
   :func:`run_dpm_campaign` instead calibrates the table itself before
   any cell runs.

Deterministic in (seed, traces, transactions): harvest rates, idle
gaps and workload values all derive from seeded streams, so journaled
campaign rows replay byte-identically under ``--resume``.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.power import (CardPowerModel, DpmController, DpmGovernor,
                         FixedTimeoutPolicy, Layer1PowerModel,
                         Layer2PowerModel, POLICIES, PowerDomain,
                         PowerSupply, default_technology_table)
from repro.soc import EEPROM_BASE, SmartCardPlatform
from repro.soc.uart import CTRL as UART_CTRL, CTRL_ENABLE as UART_ENABLE
from repro.tlm import BlockingMaster, run_script

from .common import characterization
from .robustness import DEFAULT_SEED
from .supervisor import CampaignSupervisor
from .tear_campaign import WORDS_PER_TXN, _JournalWorkload

LAYERS = ("layer1", "layer2")

#: Idle-gap span (cycles) between journaled transactions in the policy
#: grid: long enough for every policy to reach its deepest state and
#: for the always-on idle draw to matter.
GRID_GAPS = (1200, 2200)

#: Supply operating point of the policy grid, calibrated against the
#: platform's measured idle draw (characterised bus clock ~0.70
#: pJ/cycle + enabled UART 0.02 + free-running TRNG 0.40): the harvest
#: range sits strictly between the clock-gated idle draw (~0.72
#: pJ/cycle) and the always-on idle draw (~1.13 pJ/cycle), so the
#: always-on arm drains monotonically through the brownout threshold
#: during the gaps while every gating policy is net-positive and never
#: browns out.  ``power_loss_nj=0`` keeps every arm alive to the end
#: of the script — equal delivered work by construction, brownout
#: count as the discriminator.
#: ``capacity - brownout`` (1.15 nJ) is sized so the always-on arm
#: crosses the threshold within ~6 transactions' worth of idle gaps at
#: the laziest harvest rate, while staying far above any burst dip.
GRID_SUPPLY = dict(capacity_nj=1.5, brownout_nj=0.35, power_loss_nj=0.0)
HARVEST_RANGE_PJ = (0.80, 0.95)

#: Emergency-study supply: the harvest rate (0.4 pJ/cycle) is below
#: even the fully-gated draw, so the card *will* die; the watermark
#: ladder must fire the checkpoint on the way down, before the
#: power-loss threshold tears the card.
EMERGENCY_SUPPLY = dict(capacity_nj=0.6, harvest_pj_per_cycle=0.4,
                        brownout_nj=0.25, power_loss_nj=0.05)
EMERGENCY_WATERMARKS = dict(defer_nj=0.20, sleep_nj=0.15,
                            emergency_nj=0.10)
EMERGENCY_GAPS = (100, 200)


@dataclasses.dataclass
class DpmCell:
    """One (layer, policy, trace) arm of the policy grid."""

    layer: str
    policy: str
    trace: int
    harvest_pj_per_cycle: float
    brownouts: int
    completed: int
    transactions: int
    cycles: int
    drained_pj: float
    psm_overhead_pj: float
    wakes: int
    forced_sleeps: int
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class EmergencyCell:
    """One emergency-checkpoint run: starve, checkpoint, die, recover."""

    trace: int
    checkpoint_fired: bool
    checkpoint_cycle: typing.Optional[int]
    checkpoint_txn: typing.Optional[int]
    died: bool
    completed_before_death: int
    recovery_cycles: int
    checkpoint_txn_applied: bool
    journal_clean: bool
    idempotent: bool
    verified: bool
    violations: typing.List[str] = dataclasses.field(default_factory=list)
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class DpmCampaignResult:
    seed: typing.Union[int, str]
    traces: int
    transactions: int
    policies: typing.Tuple[str, ...]
    layers: typing.Tuple[str, ...]
    table_source: str
    cells: typing.List[DpmCell]
    emergency: typing.List[EmergencyCell]
    technology: typing.List[dict]

    def arm(self, layer: str, policy: str) -> typing.List[DpmCell]:
        return [cell for cell in self.cells
                if cell.layer == layer and cell.policy == policy
                and cell.status == "ok"]

    def _arm_ok(self, layer: str, policy: str) -> bool:
        cells = self.arm(layer, policy)
        return len(cells) == self.traces

    @property
    def adaptive_policies(self) -> typing.Tuple[str, ...]:
        return tuple(p for p in self.policies if p != "always_on")

    @property
    def adaptive_policies_effective(self) -> bool:
        """Every adaptive policy strictly beats always-on on summed
        brownouts, per layer, at equal-or-better completed work per
        trace.  False when the baseline or any arm is missing."""
        if "always_on" not in self.policies or not self.adaptive_policies:
            return False
        for layer in self.layers:
            if not self._arm_ok(layer, "always_on"):
                return False
            baseline = self.arm(layer, "always_on")
            for policy in self.adaptive_policies:
                if not self._arm_ok(layer, policy):
                    return False
                arm = self.arm(layer, policy)
                if (sum(c.brownouts for c in arm)
                        >= sum(c.brownouts for c in baseline)):
                    return False
                if any(a.completed < b.completed
                       for a, b in zip(arm, baseline)):
                    return False
        return True

    @property
    def emergency_recovery_verified(self) -> bool:
        """Every emergency checkpoint was followed by a verified,
        idempotent recovery (vacuously true with the study skipped)."""
        return all(cell.status == "ok" and cell.verified
                   for cell in self.emergency)

    @property
    def passed(self) -> bool:
        return (self.adaptive_policies_effective
                and self.emergency_recovery_verified)

    def format(self) -> str:
        lines = [
            f"DPM campaign (seed={self.seed!r}, {self.traces} supply "
            f"traces x {len(self.policies)} policies x "
            f"{len(self.layers)} layers, {self.transactions} journaled "
            f"txns; table: {self.table_source}):",
            f"{'layer':<8}{'policy':<20}{'harvest':>8}{'brownouts':>10}"
            f"{'completed':>10}{'cycles':>8}{'drained nJ':>11}"
            f"{'psm ovh pJ':>11}{'wakes':>6}",
        ]
        for layer in self.layers:
            for policy in self.policies:
                for cell in (c for c in self.cells
                             if c.layer == layer and c.policy == policy):
                    if cell.status != "ok":
                        lines.append(
                            f"{layer:<8}{policy:<20} DEGRADED "
                            f"(trace {cell.trace}): {cell.error}")
                        continue
                    lines.append(
                        f"{layer:<8}{policy:<20}"
                        f"{cell.harvest_pj_per_cycle:>8.3f}"
                        f"{cell.brownouts:>10}"
                        f"{cell.completed:>7}/{cell.transactions:<2}"
                        f"{cell.cycles:>8}"
                        f"{cell.drained_pj / 1e3:>11.3f}"
                        f"{cell.psm_overhead_pj:>11.2f}"
                        f"{cell.wakes:>6}")
        if "always_on" in self.policies:
            for layer in self.layers:
                baseline = sum(c.brownouts
                               for c in self.arm(layer, "always_on"))
                for policy in self.adaptive_policies:
                    total = sum(c.brownouts
                                for c in self.arm(layer, policy))
                    beat = (total < baseline
                            and self._arm_ok(layer, policy)
                            and self._arm_ok(layer, "always_on"))
                    lines.append(
                        f"  {layer} {policy}: {total} brownouts vs "
                        f"always_on {baseline} -> "
                        + ("beats baseline" if beat
                           else "does NOT beat baseline"))
        if self.emergency:
            lines.append(
                f"emergency checkpoint study (layer1, "
                f"{EMERGENCY_SUPPLY['capacity_nj']:.2f} nJ cap, "
                f"{EMERGENCY_SUPPLY['harvest_pj_per_cycle']:.1f} "
                f"pJ/cycle harvest, watermarks "
                f"{EMERGENCY_WATERMARKS['defer_nj']:.2f}/"
                f"{EMERGENCY_WATERMARKS['sleep_nj']:.2f}/"
                f"{EMERGENCY_WATERMARKS['emergency_nj']:.2f} nJ):")
            for cell in self.emergency:
                if cell.status != "ok":
                    lines.append(f"  trace {cell.trace}: DEGRADED: "
                                 f"{cell.error}")
                    continue
                lines.append(
                    f"  trace {cell.trace}: checkpoint txn "
                    f"{cell.checkpoint_txn} @cycle "
                    f"{cell.checkpoint_cycle}, died="
                    f"{'yes' if cell.died else 'NO'}, recovery "
                    f"{cell.recovery_cycles} cycles, applied="
                    f"{'yes' if cell.checkpoint_txn_applied else 'NO'}, "
                    f"idempotent="
                    f"{'yes' if cell.idempotent else 'NO'} -> "
                    + ("VERIFIED" if cell.verified else "NOT verified"))
                for violation in cell.violations:
                    lines.append(f"    VIOLATION: {violation}")
        if self.technology:
            lines.append("technology corners (grid layer1 trace 0, "
                         "ref 250 nm / 3.3 V):")
            for row in self.technology:
                lines.append(
                    f"  {row['node_nm']:g} nm / {row['vdd']:g} V "
                    f"(x{row['scale']:.3f}): always_on "
                    f"{row['always_on_nj']:.3f} nJ -> "
                    f"{row['best_policy']} "
                    f"{row['best_adaptive_nj']:.3f} nJ")
        lines.append(
            "verdict: "
            + ("adaptive DPM effective, emergency recovery verified"
               if self.passed else
               "FAILED — "
               + ("; ".join(
                   ([] if self.adaptive_policies_effective
                    else ["an adaptive policy does not beat always-on"])
                   + ([] if self.emergency_recovery_verified
                      else ["emergency recovery not verified"])))))
        return "\n".join(lines)


class _DpmWorkload(_JournalWorkload):
    """The journaled workload with seeded idle gaps before each
    transaction — bursts separated by quiet windows, the traffic shape
    DPM exists for.  Gaps derive from the workload seed only, so every
    policy arm of a trace replays the identical script."""

    def __init__(self, seed: typing.Union[int, str], transactions: int,
                 gap_range: typing.Tuple[int, int]) -> None:
        super().__init__(seed, transactions)
        rng = random.Random(f"{seed}/dpm-gaps")
        self.gaps = [rng.randrange(gap_range[0], gap_range[1] + 1)
                     for _ in range(transactions)]

    def script(self):
        items = []
        for seq, (writes, gap) in enumerate(zip(self.txn_writes,
                                                self.gaps)):
            txn_items = self.journal.update_script(seq, writes)
            items.append((gap, txn_items[0]))
            items.extend(txn_items[1:])
        return items


def _scaled(values: typing.Mapping[str, float],
            scale: float) -> typing.Dict[str, float]:
    """Supply/watermark constants re-priced at a technology point.

    A calibrated characterisation table scales every energy the card
    spends; scaling the supply's capacity, harvest rate and thresholds
    by the same factor keeps the grid's physics — and its verdict —
    identical at every (node, Vdd) point."""
    return {key: value * scale for key, value in values.items()}


def _grid_platform(layer: str, table):
    model = (Layer1PowerModel(table) if layer == "layer1"
             else Layer2PowerModel(table))
    platform = SmartCardPlatform(bus_layer=1 if layer == "layer1" else 2,
                                 power_model=model)
    # an enabled UART idles at 0.02 pJ/cycle — the card OS keeps the
    # reader link up between APDUs, which is exactly what DPM gates
    platform.uart.registers[UART_CTRL] = UART_ENABLE
    return platform, model


def _run_grid_cell(layer: str, policy_name: str, trace: int,
                   harvest: float, seed, transactions: int, table,
                   supply_scale: float, max_cycles: int,
                   wall_seconds: typing.Optional[float]) -> dict:
    workload = _DpmWorkload(f"{seed}/trace{trace}", transactions,
                            GRID_GAPS)
    platform, model = _grid_platform(layer, table)
    workload.preload(platform)
    composite = CardPowerModel(model, ledgers=platform.energy_ledgers())
    supply = PowerSupply(composite,
                         harvest_pj_per_cycle=harvest * supply_scale,
                         **_scaled(GRID_SUPPLY, supply_scale))
    PowerDomain(platform.simulator, platform.clock, platform.bus,
                supply, halt_on_power_loss=False)
    # no watermarks: the grid compares pure policies — degradation
    # staging would rescue the always-on baseline and muddy the verdict
    governor = DpmGovernor(supply, table, policy=POLICIES[policy_name]())
    psms = platform.attach_dpm(governor)
    for psm in psms.values():
        composite.add_ledger(psm)
    DpmController(platform.simulator, platform.clock, governor)
    master = BlockingMaster(platform.simulator, platform.clock,
                            platform.bus, workload.script())
    cycles = run_script(platform.simulator, master, max_cycles,
                        platform.clock, wall_seconds=wall_seconds)
    if not master.done:
        raise RuntimeError(
            f"{layer}/{policy_name} grid arm incomplete after "
            f"{cycles} cycles")
    statuses = workload.classify(platform)
    return {
        "layer": layer, "policy": policy_name, "trace": trace,
        "harvest_pj_per_cycle": harvest,
        "brownouts": len(supply.brownouts),
        "completed": sum(1 for s in statuses if s == "new"),
        "transactions": transactions, "cycles": cycles,
        "drained_pj": supply.drained_pj,
        "psm_overhead_pj": sum(p.energy_pj for p in psms.values()),
        "wakes": sum(p.wakes for p in psms.values()),
        "forced_sleeps": sum(p.forced_sleeps for p in psms.values()),
    }


def _run_emergency_cell(trace: int, seed, transactions: int, table,
                        supply_scale: float, max_cycles: int,
                        wall_seconds: typing.Optional[float]) -> dict:
    workload = _DpmWorkload(f"{seed}/emergency{trace}", transactions,
                            EMERGENCY_GAPS)
    platform, model = _grid_platform("layer1", table)
    workload.preload(platform)
    composite = CardPowerModel(model, ledgers=platform.energy_ledgers())
    supply = PowerSupply(composite,
                         **_scaled(EMERGENCY_SUPPLY, supply_scale))
    PowerDomain(platform.simulator, platform.clock, platform.bus,
                supply, halt_on_power_loss=True)
    script = workload.script()
    items_per_txn = len(script) // transactions
    holder: typing.Dict[str, typing.Any] = {}
    mark = {"cycle": None, "txn": None}

    def emergency_checkpoint() -> None:
        # commit the in-flight logical transaction while there is
        # still charge: re-poke its full journal frame (records, HDR,
        # COMMIT — no home writes) so boot-time recovery replays it.
        # Stage 3 gates even the critical master, so nothing overwrites
        # the frame between this commit and the power loss.
        master = holder["master"]
        k = min(master._next_index // items_per_txn, transactions - 1)
        frame = workload.journal.update_script(k, workload.txn_writes[k])
        for txn in frame[:2 * WORDS_PER_TXN + 2]:
            platform.eeprom.poke(txn.address - EEPROM_BASE, txn.data[0])
        mark["cycle"] = platform.bus.cycle
        mark["txn"] = k

    governor = DpmGovernor(supply, table, policy=FixedTimeoutPolicy(),
                           emergency_checkpoint=emergency_checkpoint,
                           **_scaled(EMERGENCY_WATERMARKS,
                                     supply_scale))
    psms = platform.attach_dpm(governor)
    for psm in psms.values():
        composite.add_ledger(psm)
    DpmController(platform.simulator, platform.clock, governor)
    master = BlockingMaster(platform.simulator, platform.clock,
                            platform.bus, script,
                            governor=governor.gate("journal_master",
                                                   critical=True))
    holder["master"] = master
    run_script(platform.simulator, master, max_cycles, platform.clock,
               wall_seconds=wall_seconds)

    violations: typing.List[str] = []
    died = platform.simulator.powered_off and supply.powered_down
    if not governor.emergency_checkpoints:
        violations.append("emergency checkpoint never fired")
    if not died:
        violations.append("card survived the starvation supply")
    if (mark["cycle"] is not None and supply.power_losses
            and mark["cycle"] > supply.power_losses[0].cycle):
        violations.append("checkpoint fired after the power loss")

    # cold boot + bus-level recovery, then verify
    booted = platform.cold_boot(power_model=Layer1PowerModel(table))
    read = workload.reader(booted)
    boot_state = workload.journal.decode(read)
    recovery = workload.journal.recovery_script(boot_state)
    recovery_master = BlockingMaster(booted.simulator, booted.clock,
                                     booted.bus, recovery)
    recovery_cycles = run_script(booted.simulator, recovery_master,
                                 max_cycles, booted.clock,
                                 wall_seconds=wall_seconds)
    if not recovery_master.done:
        violations.append("recovery script did not complete")
    statuses = workload.classify(booted)
    checkpoint_txn = mark["txn"]
    checkpoint_txn_applied = (checkpoint_txn is not None
                              and statuses[checkpoint_txn] == "new")
    if checkpoint_txn is not None and not checkpoint_txn_applied:
        violations.append(
            f"checkpointed txn {checkpoint_txn} not applied "
            f"({statuses[checkpoint_txn]})")
    for index, status in enumerate(statuses):
        if status == "mixed":
            violations.append(f"txn {index} partially committed")
    applied = [i for i, s in enumerate(statuses) if s == "new"]
    if applied != list(range(len(applied))):
        violations.append(f"applied set {applied} is not a prefix")
    journal_clean = not workload.journal.decode(read).committed
    if not journal_clean:
        violations.append("journal still committed after recovery")
    image_after = booted.eeprom.image()
    workload.journal.recover(
        read, lambda address, value: booted.eeprom.poke(
            address - EEPROM_BASE, value))
    idempotent = booted.eeprom.image() == image_after
    if not idempotent:
        violations.append("second recovery pass changed the image")
    return {
        "trace": trace,
        "checkpoint_fired": bool(governor.emergency_checkpoints),
        "checkpoint_cycle": mark["cycle"],
        "checkpoint_txn": checkpoint_txn,
        "died": died,
        "completed_before_death": len(master.completed),
        "recovery_cycles": recovery_cycles,
        "checkpoint_txn_applied": checkpoint_txn_applied,
        "journal_clean": journal_clean,
        "idempotent": idempotent,
        "verified": not violations,
        "violations": violations,
    }


def _technology_rows(result_cells: typing.List[DpmCell],
                     layers: typing.Sequence[str],
                     policies: typing.Sequence[str]) -> typing.List[dict]:
    """Re-price the grid's headline energies at other technology
    corners.  Both bus layers are linear in the characterisation
    table, so the corner energy is exactly ``scale x measured``."""
    layer = layers[0]
    baseline = [c for c in result_cells
                if c.layer == layer and c.policy == "always_on"
                and c.trace == 0 and c.status == "ok"]
    adaptive = [c for c in result_cells
                if c.layer == layer and c.policy != "always_on"
                and c.trace == 0 and c.status == "ok"]
    if not baseline or not adaptive:
        return []
    best = min(adaptive, key=lambda c: c.drained_pj)
    technology = default_technology_table()
    rows = []
    for node_nm, vdd in ((350.0, 5.0), (250.0, 3.3), (180.0, 1.8),
                         (130.0, 1.8)):
        scale = technology.scale_factor(node_nm, vdd)
        rows.append({
            "node_nm": node_nm, "vdd": vdd, "scale": scale,
            "always_on_nj": scale * baseline[0].drained_pj / 1e3,
            "best_policy": best.policy,
            "best_adaptive_nj": scale * best.drained_pj / 1e3,
        })
    return rows


def run_dpm_campaign(
        traces: int = 3,
        transactions: int = 8,
        seed: typing.Union[int, str] = DEFAULT_SEED,
        policies: typing.Sequence[str] = tuple(POLICIES),
        layers: typing.Sequence[str] = LAYERS,
        node_nm: typing.Optional[float] = None,
        vdd: typing.Optional[float] = None,
        emergency: bool = True,
        emergency_cells: int = 2,
        max_cycles: int = 400_000,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2,
        cell_wall_seconds: typing.Optional[float] = None,
        workers: int = 1) -> DpmCampaignResult:
    """Run the DPM policy grid and the emergency-checkpoint study.

    *traces* seeded harvest rates x *policies* x *layers* grid cells,
    plus *emergency_cells* starvation runs (layer 1).  Passing
    *node_nm*/*vdd* calibrates the characterisation table at that
    technology point before any cell runs (both must be given
    together).  With *journal_path* every finished cell is
    checkpointed (JSONL); *resume* replays journaled cells
    byte-identically; *workers* > 1 shards each phase over a process
    pool with identical results.
    """
    if traces < 1:
        raise ValueError(f"traces must be >= 1, got {traces}")
    if transactions < 1:
        raise ValueError(
            f"transactions must be >= 1, got {transactions}")
    for policy in policies:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one "
                             f"of {tuple(POLICIES)}")
    for layer in layers:
        if layer not in LAYERS:
            raise ValueError(f"unknown layer {layer!r}; expected one "
                             f"of {LAYERS}")
    if (node_nm is None) != (vdd is None):
        raise ValueError("node_nm and vdd must be given together")
    table = characterization().table
    supply_scale = 1.0
    if node_nm is not None:
        technology = default_technology_table()
        supply_scale = technology.scale_factor(node_nm, vdd)
        table = technology.calibrate(table, node_nm, vdd)
    supervisor = CampaignSupervisor(
        "dpm_campaign", seed, journal_path=journal_path, resume=resume,
        max_attempts=max_attempts, cell_wall_seconds=cell_wall_seconds)
    # stratified harvest rates: one per trace, jittered within its own
    # slice of the calibrated range so traces are distinct and seeded
    rng = random.Random(f"{seed}/dpm-traces")
    low, high = HARVEST_RANGE_PJ
    harvests = [round(low + (high - low) * (t + rng.random()) / traces,
                      3) for t in range(traces)]
    grid_specs = []
    for layer in layers:
        for policy in policies:
            for trace in range(traces):
                grid_specs.append((
                    {"phase": "grid", "layer": layer, "policy": policy,
                     "trace": trace},
                    _run_grid_cell,
                    (layer, policy, trace, harvests[trace], seed,
                     transactions, table, supply_scale, max_cycles,
                     supervisor.cell_wall_seconds)))
    cells: typing.List[DpmCell] = []
    for (params, _, cell_args), outcome in zip(
            grid_specs, supervisor.run_cells(grid_specs,
                                             workers=workers)):
        if outcome.ok:
            cells.append(DpmCell(**outcome.payload))
        else:
            cells.append(DpmCell(
                layer=params["layer"], policy=params["policy"],
                trace=params["trace"],
                harvest_pj_per_cycle=cell_args[3], brownouts=0,
                completed=0, transactions=transactions, cycles=0,
                drained_pj=0.0, psm_overhead_pj=0.0, wakes=0,
                forced_sleeps=0, status="degraded",
                error=outcome.error))
    emergency_results: typing.List[EmergencyCell] = []
    if emergency:
        emergency_specs = [
            ({"phase": "emergency", "trace": trace},
             _run_emergency_cell,
             (trace, seed, transactions, table, supply_scale,
              max_cycles, supervisor.cell_wall_seconds))
            for trace in range(emergency_cells)]
        for (params, _, _), outcome in zip(
                emergency_specs,
                supervisor.run_cells(emergency_specs, workers=workers)):
            if outcome.ok:
                emergency_results.append(EmergencyCell(**outcome.payload))
            else:
                emergency_results.append(EmergencyCell(
                    trace=params["trace"], checkpoint_fired=False,
                    checkpoint_cycle=None, checkpoint_txn=None,
                    died=False, completed_before_death=0,
                    recovery_cycles=0, checkpoint_txn_applied=False,
                    journal_clean=False, idempotent=False,
                    verified=False, status="degraded",
                    error=outcome.error))
    return DpmCampaignResult(
        seed=seed, traces=traces, transactions=transactions,
        policies=tuple(policies), layers=tuple(layers),
        table_source=table.source, cells=cells,
        emergency=emergency_results,
        technology=_technology_rows(cells, layers, policies))
