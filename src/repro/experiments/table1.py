"""Table 1 — timing accuracy of the transaction-level models.

Paper (DATE 2004, §4.1):

    ==================  ======  =====
    Abstraction level   Cycles  Error
    ==================  ======  =====
    Gate-level model      100%      -
    Layer one model       100%     0%
    Layer two model     100.5%   0.5%
    ==================  ======  =====

The reproduction replays the traced assembly test program (plus the
EEPROM-contention epilogue) on the gate-level bus, the layer-1 bus and
the layer-2 bus, and compares total cycle counts.
"""

from __future__ import annotations

import dataclasses
import typing

from .common import (RunResult, evaluation_script, percent_error,
                     run_on_layer, run_on_rtl)


@dataclasses.dataclass
class Table1Row:
    """One row of the reproduced table."""

    abstraction_level: str
    cycles: int
    cycles_relative: float      # percent of the gate-level count
    error_percent: typing.Optional[float]  # None for the reference


@dataclasses.dataclass
class Table1Result:
    rows: typing.List[Table1Row]
    runs: typing.List[RunResult]

    def row(self, name: str) -> Table1Row:
        for row in self.rows:
            if row.abstraction_level == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        lines = [
            "Table 1: timing error vs gate-level simulation",
            f"{'Abstraction Level':<22}{'Cycles':>10}{'Error':>10}",
        ]
        for row in self.rows:
            error = ("-" if row.error_percent is None
                     else f"{row.error_percent:+.2f}%")
            lines.append(f"{row.abstraction_level:<22}"
                         f"{row.cycles_relative:>9.2f}%{error:>10}")
        return "\n".join(lines)


def run_table1(script_factory: typing.Callable[[], list] = None
               ) -> Table1Result:
    """Reproduce Table 1; returns rows in the paper's order."""
    factory = script_factory or evaluation_script
    gate = run_on_rtl(factory(), estimate_power=False)
    layer1 = run_on_layer(1, factory())
    layer2 = run_on_layer(2, factory())
    rows = [
        Table1Row("Gate-level model", gate.cycles, 100.0, None),
        Table1Row("Layer one model", layer1.cycles,
                  100.0 * layer1.cycles / gate.cycles,
                  percent_error(layer1.cycles, gate.cycles)),
        Table1Row("Layer two model", layer2.cycles,
                  100.0 * layer2.cycles / gate.cycles,
                  percent_error(layer2.cycles, gate.cycles)),
    ]
    return Table1Result(rows, [gate, layer1, layer2])
