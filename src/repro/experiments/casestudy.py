"""§4.3 / Figure 7 — energy optimisation with the TLM bus models.

The paper's closing experiment: refine the untimed Java Card VM's
stack interface onto the energy-aware layer-1 bus and explore the
HW/SW interface.  The paper reports the methodology, not numbers; the
reproduction produces the exploration table a designer would read:

* the functional and refined models agree on every benchmark result
  (communication refinement preserves behaviour),
* register organisation dominates cost (a command-register protocol
  needs two bus transactions per stack operation),
* the pop2 accelerator of the packed layout pays off on
  arithmetic-heavy bytecode,
* address-map placement changes bus energy through address-bus
  Hamming distances without changing cycle counts.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.javacard import (BytecodeInterpreter, ExplorationResult,
                            FunctionalStack, benchmark_package,
                            run_exploration)
from repro.javacard.workloads import BENCHMARKS

from .common import characterization


@dataclasses.dataclass
class CaseStudyResult:
    functional_results: typing.Dict[str, int]
    exploration: ExplorationResult

    def format(self) -> str:
        lines = ["Case study (section 4.3): java card VM refinement",
                 "functional (untimed) model results:"]
        for name, value in self.functional_results.items():
            lines.append(f"  {name:<20} = {value}")
        lines.append("")
        lines.append(self.exploration.format())
        return "\n".join(lines)


def run_casestudy() -> CaseStudyResult:
    """Run the functional model, then the refined exploration."""
    applet = benchmark_package()
    interpreter = BytecodeInterpreter(applet, FunctionalStack())
    functional = {}
    for method_name, arguments, _reference in BENCHMARKS:
        functional[method_name] = interpreter.run(method_name, arguments)
    exploration = run_exploration(characterization().table)
    return CaseStudyResult(functional, exploration)
