"""One-shot reproduction report: every table and figure of the paper.

``python -m repro.experiments.report`` prints the reproduced Table 1,
Table 2, Table 3, the Figure-6 sampling profile and the §4.3 case
study, each next to the paper's published values.
"""

from __future__ import annotations

import typing

from .casestudy import run_casestudy
from .figure6 import run_figure6
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3

PAPER_TABLE1 = """paper: gate level 100% | layer one 100% (0% error) \
| layer two 100.5% (+0.5% error)"""
PAPER_TABLE2 = """paper: gate level 100 | TL layer 1: 92.1 (-7.8%) \
| TL layer 2: 114.7 (+14.7%)"""
PAPER_TABLE3 = """paper: L1 85.3 kT/s (1.0) / 94.6 (1.1 without est.); \
L2 129.6 (1.52) / 145.8 (1.7)"""


def full_report(transactions: int = 2_000,
                include_gate_level: bool = True,
                extended: bool = False) -> str:
    """Produce the complete reproduction report as text.

    With *extended* the beyond-the-paper studies are appended: the
    crypto coprocessor HW/SW comparison, the accuracy-robustness sweep
    and the fetch-path parameter sweep.
    """
    sections: typing.List[str] = []
    table1 = run_table1()
    sections.append(table1.format())
    sections.append(PAPER_TABLE1)
    sections.append("")
    table2 = run_table2()
    sections.append(table2.format())
    sections.append(PAPER_TABLE2)
    sections.append("")
    table3 = run_table3(transactions=transactions,
                        include_gate_level=include_gate_level)
    sections.append(table3.format())
    sections.append(PAPER_TABLE3)
    sections.append("")
    sections.append(run_figure6().format())
    sections.append("")
    sections.append(run_casestudy().format())
    if extended:
        from .coprocessor import run_coprocessor_study
        from .robustness import run_robustness
        from .bus_sweep import run_bus_sweep
        sections.append("")
        sections.append(run_coprocessor_study().format())
        sections.append("")
        sections.append(run_robustness().format())
        sections.append("")
        sections.append(run_bus_sweep().format())
    return "\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    print(full_report())


if __name__ == "__main__":  # pragma: no cover
    main()
