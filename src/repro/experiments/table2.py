"""Table 2 — energy estimation accuracy of the hierarchical models.

Paper (DATE 2004, §4.1):

    =====================  ======  ======
    Abstraction level      Energy   Error
    =====================  ======  ======
    Gate-level estimation     100       -
    TL layer 1 estimation    92.1   -7.8%
    TL layer 2 estimation   114.7  +14.7%
    =====================  ======  ======

The reproduction characterises the TLM energy models on a separate
characterisation workload (EC-spec suite + random mix), then replays
the evaluation workload on all three models: the gate-level bus with
the Diesel-style estimator as reference, layer 1 with its
transition-counting model, layer 2 with its per-phase analytic model.
"""

from __future__ import annotations

import dataclasses
import typing

from .common import (RunResult, characterization, evaluation_script,
                     percent_error, run_on_layer, run_on_rtl)


@dataclasses.dataclass
class Table2Row:
    abstraction_level: str
    energy_pj: float
    energy_relative: float      # paper's "Energy" column (ref = 100)
    error_percent: typing.Optional[float]


@dataclasses.dataclass
class Table2Result:
    rows: typing.List[Table2Row]
    runs: typing.List[RunResult]

    def row(self, name: str) -> Table2Row:
        for row in self.rows:
            if row.abstraction_level == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        lines = [
            "Table 2: energy estimation error vs gate-level estimation",
            f"{'Abstraction Level':<26}{'Energy':>10}{'Error':>10}",
        ]
        for row in self.rows:
            error = ("-" if row.error_percent is None
                     else f"{row.error_percent:+.1f}%")
            lines.append(f"{row.abstraction_level:<26}"
                         f"{row.energy_relative:>10.1f}{error:>10}")
        return "\n".join(lines)


def run_table2(script_factory: typing.Callable[[], list] = None
               ) -> Table2Result:
    """Reproduce Table 2; returns rows in the paper's order."""
    factory = script_factory or evaluation_script
    table = characterization().table
    gate = run_on_rtl(factory(), estimate_power=True)
    layer1 = run_on_layer(1, factory(), table=table)
    layer2 = run_on_layer(2, factory(), table=table)
    reference = gate.energy_pj
    rows = [
        Table2Row("Gate-level estimation", reference, 100.0, None),
        Table2Row("TL layer 1 estimation", layer1.energy_pj,
                  100.0 * layer1.energy_pj / reference,
                  percent_error(layer1.energy_pj, reference)),
        Table2Row("TL layer 2 estimation", layer2.energy_pj,
                  100.0 * layer2.energy_pj / reference,
                  percent_error(layer2.energy_pj, reference)),
    ]
    return Table2Result(rows, [gate, layer1, layer2])
