"""Core/bus parameter sweep (extension; the related-work exploration).

The paper's related work opens with Givargis/Vahid/Henkel's parametric
cache-and-bus exploration [1]; the substrate built here supports the
same style of study natively.  The sweep runs the §4.1 test program on
the layer-1 platform across the fetch-path parameters of the core:

* fetch burst length (1, 2 or 4 words per line fill),
* line buffer capacity (1, 4 or 8 lines),

reporting execution cycles, bus energy and fetch traffic for every
point — the latency/energy trade-off a platform integrator tunes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import TransactionKind
from repro.power import Layer1PowerModel
from repro.soc.cpu import MipsCore
from repro.soc.smartcard import ROM_BASE, SmartCardPlatform

from .common import TEST_PROGRAM, characterization
from .supervisor import CampaignSupervisor

BURST_LENGTHS = (1, 2, 4)
BUFFER_LINES = (1, 4, 8)


@dataclasses.dataclass
class SweepPoint:
    fetch_burst_length: int
    line_buffer_lines: int
    cycles: int
    bus_energy_pj: float
    fetch_transactions: int
    fetch_words: int
    status: str = "ok"
    error: typing.Optional[str] = None

    @property
    def label(self) -> str:
        return (f"burst={self.fetch_burst_length} "
                f"lines={self.line_buffer_lines}")


@dataclasses.dataclass
class BusSweepResult:
    points: typing.List[SweepPoint]

    def point(self, burst: int, lines: int) -> SweepPoint:
        for point in self.points:
            if (point.fetch_burst_length == burst
                    and point.line_buffer_lines == lines):
                return point
        raise KeyError((burst, lines))

    def _usable(self) -> typing.List[SweepPoint]:
        usable = [point for point in self.points
                  if point.status == "ok"]
        if not usable:
            raise ValueError("every sweep point degraded")
        return usable

    def best_by_energy(self) -> SweepPoint:
        return min(self._usable(), key=lambda point: point.bus_energy_pj)

    def best_by_cycles(self) -> SweepPoint:
        return min(self._usable(), key=lambda point: point.cycles)

    def format(self) -> str:
        lines = [
            "Fetch-path parameter sweep (section-4.1 test program):",
            f"{'configuration':<20}{'cycles':>8}{'bus pJ':>11}"
            f"{'fetch txns':>12}{'fetch words':>13}",
        ]
        for point in self.points:
            if point.status != "ok":
                lines.append(f"{point.label:<20}  DEGRADED: "
                             f"{point.error}")
                continue
            lines.append(
                f"{point.label:<20}{point.cycles:>8}"
                f"{point.bus_energy_pj:>11.1f}"
                f"{point.fetch_transactions:>12}{point.fetch_words:>13}")
        lines.append(f"fastest: {self.best_by_cycles().label}   "
                     f"lowest energy: {self.best_by_energy().label}")
        return "\n".join(lines)


def run_point(fetch_burst_length: int, line_buffer_lines: int,
              table) -> SweepPoint:
    """Run the test program with one fetch-path configuration."""
    power_model = Layer1PowerModel(table)
    platform = SmartCardPlatform(bus_layer=1, power_model=power_model)
    platform.bus.enable_tracing()
    platform.cpu = MipsCore(platform.simulator, platform.clock,
                            platform.bus, reset_pc=ROM_BASE,
                            line_buffer_lines=line_buffer_lines,
                            fetch_burst_length=fetch_burst_length)
    platform.cpu.bind_interrupt_source(platform.intc.active,
                                       vector=ROM_BASE + 0x180)
    platform.load_assembly(TEST_PROGRAM)
    platform.cpu.run_to_halt(500_000)
    if platform.cpu.fault:
        raise RuntimeError(f"sweep point faulted: {platform.cpu.fault}")
    fetches = [t for t in platform.bus.trace_log
               if t.kind is TransactionKind.INSTRUCTION_READ]
    finished = [t for t in platform.bus.trace_log
                if t.data_done_cycle is not None]
    cycles = (max(t.data_done_cycle for t in finished)
              - min(t.issue_cycle for t in finished) + 1)
    return SweepPoint(
        fetch_burst_length, line_buffer_lines, cycles,
        power_model.total_energy_pj, len(fetches),
        sum(t.burst_length for t in fetches))


def _point_job(burst: int, lines: int, table) -> dict:
    """Module-level (picklable) grid-point runner for the worker pool."""
    return dataclasses.asdict(run_point(burst, lines, table))


def run_bus_sweep(burst_lengths: typing.Sequence[int] = BURST_LENGTHS,
                  buffer_lines: typing.Sequence[int] = BUFFER_LINES,
                  journal_path: typing.Optional[str] = None,
                  resume: bool = False,
                  max_attempts: int = 2,
                  workers: int = 1) -> BusSweepResult:
    """Sweep the fetch-path parameter grid.

    Each grid point runs under the campaign supervisor: with
    *journal_path* its result checkpoints to a JSONL journal, *resume*
    replays journaled points, and a point that keeps crashing is
    reported as degraded instead of aborting the sweep.  *workers* > 1
    shards the grid over a process pool with results journaled in grid
    order, byte-identical to a serial run.
    """
    supervisor = CampaignSupervisor(
        "bus_sweep", seed=0, journal_path=journal_path, resume=resume,
        max_attempts=max_attempts)
    table = characterization().table
    specs = [
        ({"burst": burst, "lines": lines}, _point_job,
         (burst, lines, table))
        for burst in burst_lengths
        for lines in buffer_lines]
    points = []
    for (params, _, _), outcome in zip(
            specs, supervisor.run_cells(specs, workers=workers)):
        if outcome.ok:
            points.append(SweepPoint(**outcome.payload))
        else:
            points.append(SweepPoint(
                fetch_burst_length=params["burst"],
                line_buffer_lines=params["lines"],
                cycles=0, bus_energy_pj=0.0, fetch_transactions=0,
                fetch_words=0, status="degraded",
                error=outcome.error))
    return BusSweepResult(points)
