"""Figure 6 — energy sampling through the layer-2 power interface.

The paper's Figure 6 illustrates the layer-2 power interface: three
pipelined transactions (read 1, write 2, read 3); sampling the
"energy since last call" method at time t1 captures the finished
address phases of requests 1 and 2, sampling at t2 captures the
address phase of request 3 plus the data phases of the first two
requests — the data phase of request 3, still in flight, is *not*
included.  "As shown, this model does not support cycle-accurate
energy estimation."

The experiment reproduces that profile: it runs the same three
transactions on layer 2 (sampling at t1/t2/end) and on layer 1 (whose
per-cycle trace is integrated over the same windows), and reports both
series.  The shape to reproduce: layer 2's samples are quantised to
whole finished phases — a phase in flight at the sample instant lands
entirely in the next sample — while layer 1 splits energy exactly at
the cycle boundary.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import data_read, data_write
from repro.kernel import Clock, Process, Simulator
from repro.power import (Layer1PowerModel, Layer2PowerModel,
                         SignalStateRecorder)
from repro.soc.smartcard import EEPROM_BASE, RAM_BASE
from repro.tlm import EcBusLayer1, EcBusLayer2, PipelinedMaster, run_script

from .common import CLOCK_PERIOD, characterization, fresh_memory_map


def figure6_script() -> list:
    """Request 1 (read), request 2 (write), request 3 (read), with
    wait states so the address and data phases pipeline visibly."""
    return [
        data_read(EEPROM_BASE, burst_length=2),          # R-phase 1
        data_write(EEPROM_BASE + 0x20, [0xAAAA, 0x5555]),  # W-phase 2
        data_read(RAM_BASE, burst_length=2),             # R-phase 3
    ]


@dataclasses.dataclass
class PhaseTiming:
    """When each transaction's phases finished (bus cycles)."""

    label: str
    address_done_cycle: int
    data_done_cycle: int


@dataclasses.dataclass
class Figure6Result:
    sample_cycles: typing.List[int]
    layer2_samples_pj: typing.List[float]
    layer1_window_pj: typing.List[float]
    phases: typing.List[PhaseTiming]
    layer2_total_pj: float
    layer1_total_pj: float

    def format(self) -> str:
        lines = ["Figure 6: energy sampling profile (layer 2 vs layer 1)",
                 "phase completion times:"]
        for phase in self.phases:
            lines.append(f"  {phase.label:<12} A-phase done at cycle "
                         f"{phase.address_done_cycle}, data phase done "
                         f"at cycle {phase.data_done_cycle}")
        lines.append(f"{'sample cycle':>14}{'layer 2 (pJ)':>16}"
                     f"{'layer 1 (pJ)':>16}")
        for cycle, l2, l1 in zip(self.sample_cycles,
                                 self.layer2_samples_pj,
                                 self.layer1_window_pj):
            lines.append(f"{cycle:>14}{l2:>16.2f}{l1:>16.2f}")
        lines.append(f"{'total':>14}{self.layer2_total_pj:>16.2f}"
                     f"{self.layer1_total_pj:>16.2f}")
        return "\n".join(lines)


def _layer2_task(sample_cycles, table) -> dict:
    """Run layer 2, sampling the energy interface at the given cycles.

    Module-level and payload-returning so it can run in a worker
    process alongside the layer-1 task.
    """
    simulator = Simulator("figure6_l2")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = fresh_memory_map()
    model = Layer2PowerModel(table)
    bus = EcBusLayer2(simulator, clock, memory_map, power_model=model)
    master = PipelinedMaster(simulator, clock, bus, figure6_script())
    samples: typing.List[float] = []
    remaining = list(sample_cycles)

    def sampler():
        if remaining and bus.cycle >= remaining[0]:
            remaining.pop(0)
            samples.append(model.energy_since_last_call_pj())

    Process(simulator, sampler, "sampler", dont_initialize=True).sensitive(
        clock.posedge_event)
    run_script(simulator, master, 10_000, clock)
    model.account_cycles(bus.cycle)  # clock baseline for the whole run
    samples.append(model.energy_since_last_call_pj())  # final drain
    phases = [(txn.address_done_cycle, txn.data_done_cycle)
              for txn in sorted(master.completed,
                                key=lambda t: (t.issue_cycle, t.txn_id))]
    return {"samples": samples, "phases": phases,
            "total_pj": model.total_energy_pj}


def _layer1_task(sample_cycles, table) -> dict:
    """Run layer 1 and integrate its per-cycle trace over the same
    sampling windows."""
    simulator = Simulator("figure6_l1")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = fresh_memory_map()
    recorder = SignalStateRecorder()
    model = Layer1PowerModel(table, recorder=recorder)
    bus = EcBusLayer1(simulator, clock, memory_map, power_model=model)
    master = PipelinedMaster(simulator, clock, bus, figure6_script())
    run_script(simulator, master, 10_000, clock)
    windows: typing.List[float] = []
    previous = 0
    for cycle in list(sample_cycles) + [len(recorder.energies)]:
        windows.append(sum(recorder.energies[previous:cycle]))
        previous = cycle
    return {"windows": windows, "total_pj": model.total_energy_pj}


def run_figure6(sample_cycles: typing.Sequence[int] = (4, 9),
                workers: int = 1) -> Figure6Result:
    """Reproduce the Figure-6 sampling profile (t1, t2 = cycles).

    With *workers* > 1 the layer-2 and layer-1 runs execute in
    parallel worker processes; results are identical either way.
    """
    table = characterization().table
    if workers > 1:
        import concurrent.futures
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=2) as pool:
            future2 = pool.submit(_layer2_task, tuple(sample_cycles),
                                  table)
            future1 = pool.submit(_layer1_task, tuple(sample_cycles),
                                  table)
            layer2, layer1 = future2.result(), future1.result()
    else:
        layer2 = _layer2_task(tuple(sample_cycles), table)
        layer1 = _layer1_task(tuple(sample_cycles), table)
    phases = [
        PhaseTiming(f"request {i + 1}", address_done, data_done)
        for i, (address_done, data_done) in enumerate(layer2["phases"])
    ]
    return Figure6Result(list(sample_cycles), layer2["samples"],
                         layer1["windows"], phases,
                         layer2["total_pj"], layer1["total_pj"])
