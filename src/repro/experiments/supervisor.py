"""Crash-isolated campaign supervision: checkpoint, retry, resume.

A long sweep (``fault_campaign``, ``bus_sweep``, ``robustness``) used
to be all-or-nothing: a crash in cell 47 of 63 lost the first 46, and
one poisoned cell sank the whole campaign.  The supervisor makes each
sweep cell an independently retried, independently journaled unit:

* every finished cell is appended to a **JSONL checkpoint journal**,
  one self-contained record per line, keyed by the canonical JSON of
  ``(experiment, seed, cell params)`` — append-and-flush, so a killed
  process loses at most the in-flight cell;
* ``resume=True`` replays journaled cells from the checkpoint instead
  of re-running them.  Cell payloads round-trip through JSON exactly
  (``repr``-based float serialisation), so a resumed campaign is
  byte-identical to an uninterrupted one with the same seed;
* a cell that keeps raising after ``max_attempts`` tries is recorded
  as **degraded** (with the error text) instead of aborting the sweep.

The journal loader tolerates a truncated final line — the expected
state after ``SIGINT`` mid-append — and lets the last record win when
a key appears twice (a cell re-run after a degraded first pass).

:meth:`CampaignSupervisor.run_cells` adds process-parallel execution:
cells are sharded over a worker pool, but outcomes are collected —
and journaled — strictly in input order, so the JSONL journal, the
resume behaviour and every derived report are byte-identical to a
serial run of the same campaign.  Retry/degrade isolation happens
inside the worker; a worker process that dies outright degrades only
its own cell (the pool is rebuilt for the rest).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import functools
import json
import logging
import os
import typing

_LOG = logging.getLogger(__name__)


def cell_key(experiment: str, seed: typing.Union[int, str],
             params: typing.Mapping[str, typing.Any]) -> str:
    """Canonical identity of one sweep cell.

    Sorted-key JSON of (experiment, seed, params): stable across runs,
    insensitive to dict ordering, and distinguishing ``seed=1`` from
    ``seed="1"`` (they generate different fault streams).
    """
    return json.dumps(
        {"experiment": experiment,
         "seed": [type(seed).__name__, seed],
         "params": dict(params)},
        sort_keys=True)


@dataclasses.dataclass
class CellOutcome:
    """What the supervisor knows about one cell after running it."""

    params: typing.Dict[str, typing.Any]
    key: str
    status: str                 # "ok" | "degraded"
    attempts: int
    error: typing.Optional[str]
    payload: typing.Optional[typing.Dict[str, typing.Any]]
    from_journal: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


#: One parallelisable unit of work: ``(params, fn, args)``.  ``fn``
#: must be a module-level callable (picklable) returning the cell's
#: JSON-serialisable payload dict when called as ``fn(*args)``.
CellSpec = typing.Tuple[typing.Mapping[str, typing.Any],
                        typing.Callable[..., typing.Dict[str, typing.Any]],
                        typing.Tuple[typing.Any, ...]]


def _cell_worker(fn: typing.Callable[..., dict],
                 args: typing.Tuple[typing.Any, ...],
                 max_attempts: int) -> tuple:
    """Run one cell inside a worker process, with the same bounded
    retry the serial path applies, and report the outcome as data.

    Returns ``(status, attempts, error, payload)`` so the parent can
    build a :class:`CellOutcome` (and a journal record) that is
    byte-identical to what :meth:`CampaignSupervisor.run_cell` would
    have produced in-process.
    """
    last_error: typing.Optional[BaseException] = None
    for attempt in range(1, max_attempts + 1):
        try:
            return ("ok", attempt, None, fn(*args))
        except Exception as error:
            last_error = error
    return ("degraded", max_attempts,
            f"{type(last_error).__name__}: {last_error}", None)


class CheckpointJournal:
    """Append-only JSONL store of finished sweep cells."""

    def __init__(self, path: typing.Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)

    def load(self) -> typing.Dict[str, dict]:
        """Journaled records by cell key; last record wins.

        Undecodable lines (the truncated tail a mid-append kill leaves
        behind) are skipped, not fatal.
        """
        records: typing.Dict[str, dict] = {}
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # truncated / corrupt line: ignore
                key = record.get("key")
                if key:
                    records[key] = record
        return records

    def append(self, record: dict) -> None:
        """Append one record and flush, so a kill loses at most the
        line being written."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())


class CampaignSupervisor:
    """Runs sweep cells with bounded retry, journaling and resume.

    Parameters
    ----------
    experiment:
        Name baked into every cell key (``"fault_campaign"``, …).
    seed:
        The campaign seed, part of the cell identity: a journal written
        under one seed never satisfies a resume under another.
    journal_path:
        Where to checkpoint.  ``None`` disables journaling (and
        resume); the supervisor still provides retry/degrade isolation.
    resume:
        Replay journaled cells instead of re-running them.
    max_attempts:
        Total tries per cell before it is recorded as degraded.
    cell_wall_seconds:
        Advisory per-cell wall-clock budget.  Experiments thread it
        into :func:`~repro.tlm.run_script` so a hung cell trips a
        :class:`~repro.kernel.StallError` the supervisor can catch,
        instead of hanging the campaign.
    """

    def __init__(self, experiment: str, seed: typing.Union[int, str],
                 journal_path: typing.Union[str, os.PathLike,
                                            None] = None,
                 resume: bool = False, max_attempts: int = 2,
                 cell_wall_seconds: typing.Optional[float] = None
                 ) -> None:
        if resume and journal_path is None:
            raise ValueError("resume requires a journal_path")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1: {max_attempts}")
        self.experiment = experiment
        self.seed = seed
        self.journal = (None if journal_path is None
                        else CheckpointJournal(journal_path))
        self.resume = resume
        self.max_attempts = max_attempts
        self.cell_wall_seconds = cell_wall_seconds
        self.cells_run = 0
        self.cells_resumed = 0
        self.cells_degraded = 0
        #: worker count actually used by the last run_cells call (after
        #: the 1-CPU serial fallback), recorded in the journal header
        self.effective_workers: typing.Optional[int] = None
        self._header_written = False
        self._journaled: typing.Dict[str, dict] = (
            self.journal.load() if (self.journal and resume) else {})

    def run_cell(self, params: typing.Mapping[str, typing.Any],
                 thunk: typing.Callable[[], typing.Dict[str, typing.Any]]
                 ) -> CellOutcome:
        """Run (or replay) one cell; never raises for cell failures.

        *thunk* computes the cell and returns a JSON-serialisable
        payload dict.  Any exception it raises is contained: the cell
        is retried up to ``max_attempts`` times and then recorded as
        degraded.  ``KeyboardInterrupt``/``SystemExit`` still
        propagate — killing a campaign must work.
        """
        key = cell_key(self.experiment, self.seed, params)
        if self.resume:
            record = self._journaled.get(key)
            if record is not None and record.get("status") == "ok":
                self.cells_resumed += 1
                return CellOutcome(
                    params=dict(params), key=key, status="ok",
                    attempts=record.get("attempts", 1), error=None,
                    payload=record.get("payload"), from_journal=True)
        last_error: typing.Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                payload = thunk()
            except Exception as error:
                last_error = error
                continue
            outcome = CellOutcome(
                params=dict(params), key=key, status="ok",
                attempts=attempt, error=None, payload=payload)
            break
        else:
            self.cells_degraded += 1
            outcome = CellOutcome(
                params=dict(params), key=key, status="degraded",
                attempts=self.max_attempts,
                error=f"{type(last_error).__name__}: {last_error}",
                payload=None)
        self.cells_run += 1
        self._checkpoint(outcome)
        return outcome

    def run_cells(self, cells: typing.Sequence[CellSpec],
                  workers: int = 1) -> typing.List[CellOutcome]:
        """Run a batch of cells, optionally across worker processes.

        *cells* is a sequence of ``(params, fn, args)`` specs; with
        ``workers > 1`` each ``fn`` must be a module-level (picklable)
        callable.  Outcomes come back **in input order** regardless of
        completion order, and the journal is appended in that same
        order, so a parallel campaign's checkpoint file, resume
        behaviour and reports are byte-identical to a serial one.

        Retry/degrade semantics match :meth:`run_cell` exactly: the
        retry loop runs inside the worker, and a worker process that
        dies outright (not a Python exception — an abort or kill)
        degrades only its own cell; the pool is rebuilt to finish the
        remaining cells.
        """
        specs = [(dict(params), fn, tuple(args))
                 for params, fn, args in cells]
        host_cpus = os.cpu_count() or 1
        if workers > 1 and host_cpus == 1:
            # BENCH_PR5: a process pool on a 1-CPU host is a 0.86x
            # throughput *loss* — pay the warning, not the pool
            _LOG.warning(
                "supervisor[%s]: host has a single CPU; falling back "
                "from %d workers to serial execution",
                self.experiment, workers)
            workers = 1
        self.effective_workers = max(1, workers)
        self._write_header(host_cpus)
        if workers <= 1:
            return [self.run_cell(params, functools.partial(fn, *args))
                    for params, fn, args in specs]
        outcomes: typing.List[typing.Optional[CellOutcome]] = (
            [None] * len(specs))
        pending: typing.List[int] = []
        keys: typing.List[typing.Optional[str]] = [None] * len(specs)
        for index, (params, fn, args) in enumerate(specs):
            key = cell_key(self.experiment, self.seed, params)
            keys[index] = key
            if self.resume:
                record = self._journaled.get(key)
                if record is not None and record.get("status") == "ok":
                    self.cells_resumed += 1
                    outcomes[index] = CellOutcome(
                        params=dict(params), key=key, status="ok",
                        attempts=record.get("attempts", 1), error=None,
                        payload=record.get("payload"),
                        from_journal=True)
                    continue
            pending.append(index)
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers)
        try:
            futures = {
                index: executor.submit(
                    _cell_worker, specs[index][1], specs[index][2],
                    self.max_attempts)
                for index in pending}
            for position, index in enumerate(pending):
                params = specs[index][0]
                try:
                    status, attempts, error, payload = (
                        futures[index].result())
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as crash:
                    # the worker process itself died (segfault, kill,
                    # unpicklable payload): degrade this cell only and
                    # rebuild the pool — a broken pool poisons every
                    # future submitted before the break
                    status, attempts, error, payload = (
                        "degraded", self.max_attempts,
                        f"{type(crash).__name__}: {crash}", None)
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers)
                    for later in pending[position + 1:]:
                        futures[later] = executor.submit(
                            _cell_worker, specs[later][1],
                            specs[later][2], self.max_attempts)
                if status == "degraded":
                    self.cells_degraded += 1
                outcome = CellOutcome(
                    params=dict(params), key=keys[index], status=status,
                    attempts=attempts, error=error, payload=payload)
                self.cells_run += 1
                # journal in input order: each future is awaited in
                # submission order, so a checkpoint never runs ahead
                # of an earlier cell
                self._checkpoint(outcome)
                outcomes[index] = outcome
        finally:
            executor.shutdown()
        return typing.cast(typing.List[CellOutcome], outcomes)

    def _write_header(self, host_cpus: int) -> None:
        """Journal one header record per supervisor run, recording the
        *effective* worker count (after any serial fallback).

        The header carries no ``"key"`` field, so
        :meth:`CheckpointJournal.load` skips it: resume and
        byte-identity of the cell records are unaffected.
        """
        if self.journal is None or self._header_written:
            return
        self._header_written = True
        self.journal.append({
            "kind": "header",
            "experiment": self.experiment,
            "seed": self.seed,
            "workers": self.effective_workers,
            "host_cpus": host_cpus,
        })

    def _checkpoint(self, outcome: CellOutcome) -> None:
        if self.journal is None:
            return
        record = {
            "experiment": self.experiment,
            "seed": self.seed,
            "key": outcome.key,
            "params": outcome.params,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "error": outcome.error,
            "payload": outcome.payload,
        }
        self.journal.append(record)
        self._journaled[outcome.key] = record

    def summary(self) -> str:
        parts = [f"{self.cells_run} cell(s) run"]
        if self.cells_resumed:
            parts.append(f"{self.cells_resumed} resumed from "
                         f"{self.journal.path}")
        if self.cells_degraded:
            parts.append(f"{self.cells_degraded} degraded")
        return f"supervisor[{self.experiment}]: " + ", ".join(parts)
