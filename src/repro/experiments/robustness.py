"""Accuracy robustness across workload classes (extension).

Table 1 and Table 2 report one number each, on one workload.  A model
is only useful if its error is *stable*, so this study re-measures the
layer-1 and layer-2 timing and energy errors across qualitatively
different workload classes — with one characterisation table held
fixed (the realistic deployment: characterise once, estimate forever):

* ``traced_program`` — the §4.1 CPU trace (the paper's evaluation),
* ``random_mix``     — seeded uniform single/burst read/write mix,
* ``burst_heavy``    — cache-line-fill style burst streams,
* ``subword``        — 8/16-bit merge-pattern traffic,
* ``eeprom_contention`` — write/read interleaving inside
  programming-busy windows (the layer-2 worst case),
* ``apdu_session``   — an ISO-7816-style card command session,
* ``sparse``         — isolated transactions with long idle gaps.

Expected shape: layer-1 energy error stays in a narrow negative band
on every class (it misses the same structurally-invisible share);
layer-2 errors swing class to class (its per-phase averages fit some
traffic shapes better than others); layer-2 timing error is zero
except under dynamic wait states.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.ec import data_read, data_write
from repro.soc.smartcard import EEPROM_BASE, RAM_BASE, ROM_BASE
from repro.workloads import (Mix, Window, apdu_session,
                             generate_script, sub_word_script)

from .common import (characterization, percent_error, run_on_layer,
                     run_on_rtl, test_program_trace)
from .supervisor import CampaignSupervisor


#: Seed of record for the study.  Every workload factory below receives
#: an explicit ``random.Random`` derived from it — no factory owns a
#: private seed, so the whole study replays bit-identically from one
#: number (and a different seed regenerates every stochastic class).
DEFAULT_SEED: typing.Union[int, str] = 2004


def class_rng(seed: typing.Union[int, str],
              name: str) -> random.Random:
    """The per-class random stream: independent across classes, stable
    against reordering or subsetting of ``WORKLOAD_CLASSES``."""
    return random.Random(f"{seed}:{name}")


def _traced_program(rng: random.Random) -> list:
    return test_program_trace().to_script()


def _random_mix(rng: random.Random) -> list:
    windows = [Window(RAM_BASE, 0x1000), Window(EEPROM_BASE, 0x1000)]
    return generate_script(rng, 150, windows)


def _burst_heavy(rng: random.Random) -> list:
    windows = [Window(RAM_BASE, 0x1000),
               Window(ROM_BASE, 0x1000, executable=True, writable=False)]
    mix = Mix(single_read=0.2, single_write=0.2, burst_read=2.0,
              burst_write=1.0, instruction_burst=2.0)
    return generate_script(rng, 120, windows, mix)


def _subword(rng: random.Random) -> list:
    return sub_word_script(rng, 120, RAM_BASE)


def _eeprom_contention(rng: random.Random) -> list:
    script: list = []
    for i in range(12):
        script.append(data_write(EEPROM_BASE + 64 * i, [0xA5000000 + i]))
        script.append((10, data_read(EEPROM_BASE + 64 * i + 4)))
        script.append(data_read(EEPROM_BASE + 64 * i + 8))
        script.append(data_read(RAM_BASE + 4 * i))
    return script


def _apdu_session(rng: random.Random) -> list:
    return apdu_session(rng, commands=8).script


def _sparse(rng: random.Random) -> list:
    windows = [Window(RAM_BASE, 0x1000)]
    return generate_script(rng, 60, windows, gap_probability=0.9,
                           max_gap=12)


WORKLOAD_CLASSES: typing.Dict[
        str, typing.Callable[[random.Random], list]] = {
    "traced_program": _traced_program,
    "random_mix": _random_mix,
    "burst_heavy": _burst_heavy,
    "subword": _subword,
    "eeprom_contention": _eeprom_contention,
    "apdu_session": _apdu_session,
    "sparse": _sparse,
}


@dataclasses.dataclass
class RobustnessRow:
    workload: str
    cycles: int
    layer1_timing_error: float
    layer2_timing_error: float
    layer1_energy_error: float
    layer2_energy_error: float
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class RobustnessResult:
    rows: typing.List[RobustnessRow]

    def row(self, workload: str) -> RobustnessRow:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)

    def format(self) -> str:
        lines = [
            "Accuracy robustness across workload classes "
            "(one fixed characterisation):",
            f"{'workload':<20}{'cycles':>8}{'L1 t-err':>10}"
            f"{'L2 t-err':>10}{'L1 E-err':>10}{'L2 E-err':>10}",
        ]
        for row in self.rows:
            if row.status != "ok":
                lines.append(f"{row.workload:<20}  DEGRADED: "
                             f"{row.error}")
                continue
            lines.append(
                f"{row.workload:<20}{row.cycles:>8}"
                f"{row.layer1_timing_error:>+9.2f}%"
                f"{row.layer2_timing_error:>+9.2f}%"
                f"{row.layer1_energy_error:>+9.2f}%"
                f"{row.layer2_energy_error:>+9.2f}%")
        usable = [row for row in self.rows if row.status == "ok"]
        if not usable:
            lines.append("every workload class degraded")
            return "\n".join(lines)
        l1_errors = [row.layer1_energy_error for row in usable]
        l2_errors = [row.layer2_energy_error for row in usable]
        lines.append(
            f"L1 energy error band: [{min(l1_errors):+.2f}%, "
            f"{max(l1_errors):+.2f}%]   "
            f"L2: [{min(l2_errors):+.2f}%, {max(l2_errors):+.2f}%]")
        return "\n".join(lines)


def workload_script(name: str,
                    seed: typing.Union[int, str] = DEFAULT_SEED) -> list:
    """One workload class's script, regenerated fresh from *seed*."""
    return WORKLOAD_CLASSES[name](class_rng(seed, name))


def _robustness_row(name: str, seed: typing.Union[int, str],
                    table) -> RobustnessRow:
    gate = run_on_rtl(workload_script(name, seed),
                      estimate_power=True)
    layer1 = run_on_layer(1, workload_script(name, seed), table=table)
    layer2 = run_on_layer(2, workload_script(name, seed), table=table)
    return RobustnessRow(
        name, gate.cycles,
        percent_error(layer1.cycles, gate.cycles),
        percent_error(layer2.cycles, gate.cycles),
        percent_error(layer1.energy_pj, gate.energy_pj),
        percent_error(layer2.energy_pj, gate.energy_pj))


def run_robustness(classes: typing.Optional[
        typing.Sequence[str]] = None,
        seed: typing.Union[int, str] = DEFAULT_SEED,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2) -> RobustnessResult:
    """Measure all four errors on every workload class.

    Each class runs under the campaign supervisor: with *journal_path*
    finished rows checkpoint to a JSONL journal, *resume* replays them,
    and a class that keeps crashing is reported as a degraded row.
    """
    supervisor = CampaignSupervisor(
        "robustness", seed, journal_path=journal_path, resume=resume,
        max_attempts=max_attempts)
    table = characterization().table
    names = list(classes or WORKLOAD_CLASSES)
    rows = []
    for name in names:
        outcome = supervisor.run_cell(
            {"workload": name},
            lambda: dataclasses.asdict(
                _robustness_row(name, seed, table)))
        if outcome.ok:
            rows.append(RobustnessRow(**outcome.payload))
        else:
            rows.append(RobustnessRow(
                name, 0, 0.0, 0.0, 0.0, 0.0,
                status="degraded", error=outcome.error))
    return RobustnessResult(rows)
