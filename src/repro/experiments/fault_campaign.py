"""Fault-injection campaign: what does recovery *cost* per layer?

The paper estimates the energy of fault-free traffic; a power-aware
card OS also has to budget for the traffic nobody plans — retries
after transient bus errors, EEPROM write tearing, and watchdog aborts
of hung slaves.  This campaign sweeps a fault-rate axis across the
:mod:`repro.experiments.robustness` workload classes and replays each
(class, rate) cell on the cycle-accurate layer 1, the timed layer 2
and the gate-level reference, all through the same seeded
:mod:`repro.faults` injector configuration and the same master-side
:class:`~repro.ec.RetryPolicy`.

Per cell it reports the completion rate under retry, the retry/timeout
counts, the cycle overhead against the rate-0 baseline of the same
layer, and the energy attributed to recovery — both as the baseline
delta and (on the TLM layers) as the per-episode attribution summed
from the masters' :class:`~repro.ec.FaultReport` records.  The
gate-level model prices energy only post-hoc (Diesel), so per-episode
attribution is reported as unavailable there rather than invented.
Under a pipelined master the per-episode window also contains the
energy of concurrently in-flight traffic, so summed ``retry E``
brackets the recovery cost from above; the baseline delta ``E+`` is
the isolated aggregate.

Everything is deterministic in (seed, rates, classes): injector
streams are derived per (class, rate, mechanism) so every layer of a
cell faces the same fault pattern, which is what makes the per-layer
columns comparable.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.ec import RetryPolicy
from repro.faults import (BitFlipInjector, FaultySlave,
                          IntermittentErrorInjector, StuckWaitInjector,
                          TransientErrorInjector)
from repro.kernel import Clock, Simulator
from repro.ec import MemoryMap
from repro.power import Layer1PowerModel, Layer2PowerModel
from repro.power.diesel import DieselEstimator, InterfaceActivityLog
from repro.rtl import RtlBus
from repro.soc.memory import Eeprom, Rom, ScratchpadRam
from repro.soc.smartcard import EEPROM_BASE, RAM_BASE, ROM_BASE
from repro.tlm import EcBusLayer1, EcBusLayer2, PipelinedMaster, run_script

from .common import CLOCK_PERIOD, _busy_cycles, characterization
from .robustness import DEFAULT_SEED, workload_script
from .supervisor import CampaignSupervisor

#: Workload classes swept by default — a plain mix, a burst-heavy
#: stream and the EEPROM-contention pattern (where tearing and the
#: layer-2 wait-state snapshot interact).
DEFAULT_CLASSES = ("random_mix", "burst_heavy", "eeprom_contention")

#: Fault-rate axis.  Rate 0 doubles as the overhead baseline.
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1)

LAYERS = ("layer1", "layer2", "gate-level")

#: Recovery policy of record for the campaign: generous retry budget,
#: short backoff, and a watchdog tighter than a stuck-slave window so
#: hung transfers abort instead of stalling the whole script.
DEFAULT_POLICY = RetryPolicy(max_attempts=12, backoff_cycles=2,
                             timeout_cycles=150)


@dataclasses.dataclass
class CampaignCell:
    """One (layer, workload, rate) run of the campaign."""

    layer: str
    workload: str
    rate: float
    transactions: int
    failures: int          # transactions still failed after all retries
    retries: int
    timeouts: int          # watchdog aborts (each later retried)
    recovered: int         # fault episodes that ended in success
    fault_events: int      # injector activations (incl. silent flips)
    torn_writes: int
    cycles: int
    energy_pj: float
    #: deltas against the same layer's rate-0 run of the same class
    cycle_overhead: typing.Optional[int] = None
    energy_overhead_pj: typing.Optional[float] = None
    #: summed FaultReport attribution; None where the layer cannot
    #: price energy incrementally (gate-level)
    retry_energy_pj: typing.Optional[float] = None
    #: "ok", or "degraded" when the cell kept crashing/stalling and the
    #: supervisor recorded a placeholder instead of sinking the sweep
    status: str = "ok"
    error: typing.Optional[str] = None

    @property
    def completion_rate(self) -> float:
        if not self.transactions:
            return 1.0
        return (self.transactions - self.failures) / self.transactions


@dataclasses.dataclass
class FaultCampaignResult:
    seed: typing.Union[int, str]
    rates: typing.Tuple[float, ...]
    classes: typing.Tuple[str, ...]
    policy: RetryPolicy
    cells: typing.List[CampaignCell]
    #: workers the supervisor actually ran with — smaller than the
    #: requested count when the 1-CPU serial fallback engaged; None
    #: for results built before the field existed (old journals)
    effective_workers: typing.Optional[int] = None

    def cell(self, layer: str, workload: str,
             rate: float) -> CampaignCell:
        for cell in self.cells:
            if (cell.layer == layer and cell.workload == workload
                    and cell.rate == rate):
                return cell
        raise KeyError((layer, workload, rate))

    def format(self) -> str:
        lines = [
            "Fault-injection campaign "
            f"(seed={self.seed!r}, retry budget "
            f"{self.policy.max_attempts}, backoff "
            f"{self.policy.backoff_cycles}, watchdog "
            f"{self.policy.timeout_cycles} cycles):",
            f"{'workload':<19}{'rate':>6}  {'layer':<10}{'txns':>6}"
            f"{'compl':>7}{'retry':>6}{'wdog':>5}{'cyc+':>7}"
            f"{'E+ (pJ)':>10}{'retry E (pJ)':>13}",
        ]
        for cell in self.cells:
            if cell.status != "ok":
                lines.append(
                    f"{cell.workload:<19}{cell.rate:>6.2f}"
                    f"  {cell.layer:<10}  DEGRADED: {cell.error}")
                continue
            overhead = ("" if cell.cycle_overhead is None
                        else f"{cell.cycle_overhead:>+7d}")
            e_overhead = ("" if cell.energy_overhead_pj is None
                          else f"{cell.energy_overhead_pj:>+10.1f}")
            retry_e = ("      n/a" if cell.retry_energy_pj is None
                       else f"{cell.retry_energy_pj:>9.1f}")
            lines.append(
                f"{cell.workload:<19}{cell.rate:>6.2f}"
                f"  {cell.layer:<10}{cell.transactions:>6}"
                f"{100.0 * cell.completion_rate:>6.1f}%"
                f"{cell.retries:>6}{cell.timeouts:>5}"
                f"{overhead:>7}{e_overhead:>10}{retry_e:>13}")
        total_failures = sum(cell.failures for cell in self.cells)
        lines.append(
            f"unrecovered transactions across all cells: {total_failures}")
        degraded = sum(1 for cell in self.cells if cell.status != "ok")
        if degraded:
            lines.append(f"degraded cells (crashed/stalled after "
                         f"retries): {degraded}")
        return "\n".join(lines)


def _campaign_injectors(seed: typing.Union[int, str], workload: str,
                        rate: float, slave: str) -> list:
    """The seeded injector set for one slave of one campaign cell.

    Streams are keyed by (seed, workload, rate, slave, mechanism) so
    every layer of a cell draws the same fault pattern, while cells
    never share a stream.
    """
    if rate == 0.0:
        return []

    def rng(mechanism: str) -> random.Random:
        return random.Random(
            f"{seed}/{workload}/{rate}/{slave}/{mechanism}")

    injectors = [
        TransientErrorInjector(rate, rng("transient")),
        IntermittentErrorInjector(rate / 2, rng("intermittent"), burst=2),
        BitFlipInjector(rate, rng("bitflip")),
    ]
    if slave != "rom":
        # a hung-slave window longer than the watchdog budget, so the
        # master aborts and retries after the window closes
        injectors.append(StuckWaitInjector(
            rate / 8, rng("stuck"), duration=60,
            extra_waits=4 * DEFAULT_POLICY.timeout_cycles))
    return injectors


def _campaign_memory_map(seed: typing.Union[int, str], workload: str,
                         rate: float) -> MemoryMap:
    """The Figure-1 memories at their platform bases, each behind a
    seeded :class:`FaultySlave`; the EEPROM additionally tears."""
    eeprom = Eeprom(
        EEPROM_BASE,
        tear_rate=rate,
        tear_rng=(random.Random(f"{seed}/{workload}/{rate}/eeprom/tear")
                  if rate else None))
    slaves = (
        (Rom(ROM_BASE), "rom"),
        (ScratchpadRam(RAM_BASE), "ram"),
        (eeprom, "eeprom"),
    )
    memory_map = MemoryMap()
    for slave, name in slaves:
        memory_map.add_slave(
            FaultySlave(slave, _campaign_injectors(seed, workload, rate,
                                                   name)), name)
    return memory_map


def _run_cell(layer: str, workload: str, rate: float,
              seed: typing.Union[int, str], policy: RetryPolicy,
              table, max_cycles: int,
              wall_seconds: typing.Optional[float] = None
              ) -> CampaignCell:
    simulator = Simulator(f"faults-{layer}")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = _campaign_memory_map(seed, workload, rate)

    power_model = None
    activity = None
    if layer == "layer1":
        power_model = Layer1PowerModel(table)
        bus = EcBusLayer1(simulator, clock, memory_map,
                          power_model=power_model)
    elif layer == "layer2":
        power_model = Layer2PowerModel(table)
        bus = EcBusLayer2(simulator, clock, memory_map,
                          power_model=power_model)
    else:
        activity = InterfaceActivityLog()
        bus = RtlBus(simulator, clock, memory_map, activity_log=activity)
    for region in memory_map.regions:
        region.slave.bind_cycle_source(lambda: bus.cycle)

    energy_probe = None
    if power_model is not None:
        energy_probe = lambda: power_model.total_energy_pj
    script = workload_script(workload, seed)
    master = PipelinedMaster(simulator, clock, bus, script,
                             retry_policy=policy,
                             energy_probe=energy_probe)
    run_script(simulator, master, max_cycles, clock,
               wall_seconds=wall_seconds)

    if power_model is not None:
        if layer == "layer2":
            power_model.account_cycles(bus.cycle)
        energy = power_model.total_energy_pj
    else:
        report = DieselEstimator().estimate(
            activity, netlists=[bus.decoder.netlist],
            control_register_toggles=bus.control_register_toggles,
            control_flop_count=bus.control_flop_count,
            cycles=bus.cycle)
        energy = report.total_energy_pj

    retry_energy = None
    if power_model is not None and master.fault_reports:
        priced = [r.retry_energy_pj for r in master.fault_reports
                  if r.retry_energy_pj is not None]
        retry_energy = sum(priced) if priced else 0.0
    fault_events = sum(len(region.slave.events)
                       for region in memory_map.regions)
    torn = sum(getattr(region.slave, "torn_writes", 0)
               for region in memory_map.regions)
    return CampaignCell(
        layer=layer, workload=workload, rate=rate,
        transactions=len(master.completed),
        failures=len(master.errors),
        retries=master.retries,
        timeouts=master.timeouts,
        recovered=sum(1 for r in master.fault_reports if r.recovered),
        fault_events=fault_events,
        torn_writes=torn,
        cycles=_busy_cycles(master),
        energy_pj=energy,
        retry_energy_pj=retry_energy)


#: CampaignCell fields journaled per cell.  The overhead columns are
#: deliberately *not* journaled: they are recomputed in-memory on both
#: the fresh and the resumed path, so the two agree byte for byte.
_JOURNALED_FIELDS = tuple(
    field.name for field in dataclasses.fields(CampaignCell)
    if field.name not in ("cycle_overhead", "energy_overhead_pj"))


def _cell_payload(cell: CampaignCell) -> dict:
    values = dataclasses.asdict(cell)
    return {name: values[name] for name in _JOURNALED_FIELDS}


def _cell_job(layer: str, workload: str, rate: float,
              seed: typing.Union[int, str], policy: RetryPolicy,
              table, max_cycles: int,
              wall_seconds: typing.Optional[float]) -> dict:
    """Module-level (picklable) cell runner for the worker pool."""
    return _cell_payload(_run_cell(layer, workload, rate, seed, policy,
                                   table, max_cycles,
                                   wall_seconds=wall_seconds))


def run_fault_campaign(
        rates: typing.Sequence[float] = DEFAULT_RATES,
        classes: typing.Sequence[str] = DEFAULT_CLASSES,
        seed: typing.Union[int, str] = DEFAULT_SEED,
        layers: typing.Sequence[str] = LAYERS,
        policy: RetryPolicy = DEFAULT_POLICY,
        max_cycles: int = 500_000,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2,
        cell_wall_seconds: typing.Optional[float] = None,
        workers: int = 1
        ) -> FaultCampaignResult:
    """Sweep fault rates across workload classes on every layer.

    With *journal_path* every finished cell is checkpointed to a JSONL
    journal; *resume* then replays journaled cells instead of
    re-running them, making an interrupted campaign restartable with
    byte-identical results.  A cell that crashes or stalls
    *max_attempts* times is reported as a degraded row instead of
    aborting the sweep; *cell_wall_seconds* bounds each cell's wall
    clock through the master's progress watchdog.

    *workers* > 1 shards the (class, rate, layer) grid over a process
    pool — every cell is independently seeded, so sharding cannot
    change results, and the supervisor journals outcomes in grid order
    so journal, resume and report stay byte-identical to ``workers=1``.
    """
    for layer in layers:
        if layer not in LAYERS:
            raise ValueError(f"unknown layer {layer!r}; "
                             f"expected one of {LAYERS}")
    from .robustness import WORKLOAD_CLASSES
    for name in classes:
        if name not in WORKLOAD_CLASSES:
            raise ValueError(
                f"unknown workload class {name!r}; available: "
                f"{', '.join(sorted(WORKLOAD_CLASSES))}")
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rates must be in [0, 1], "
                             f"got {rate}")
    supervisor = CampaignSupervisor(
        "fault_campaign", seed, journal_path=journal_path,
        resume=resume, max_attempts=max_attempts,
        cell_wall_seconds=cell_wall_seconds)
    table = characterization().table
    cells = []
    baselines: typing.Dict[typing.Tuple[str, str], CampaignCell] = {}
    rate_axis = sorted(set(rates))
    if rate_axis and rate_axis[0] != 0.0:
        rate_axis.insert(0, 0.0)  # overhead needs the fault-free run
    specs = [
        ({"layer": layer, "workload": workload, "rate": rate},
         _cell_job,
         (layer, workload, rate, seed, policy, table, max_cycles,
          supervisor.cell_wall_seconds))
        for workload in classes
        for rate in rate_axis
        for layer in layers]
    outcomes = supervisor.run_cells(specs, workers=workers)
    for (params, _, _), outcome in zip(specs, outcomes):
        layer, workload, rate = (params["layer"], params["workload"],
                                 params["rate"])
        if outcome.ok:
            cell = CampaignCell(**outcome.payload)
        else:
            cell = CampaignCell(
                layer=layer, workload=workload, rate=rate,
                transactions=0, failures=0, retries=0,
                timeouts=0, recovered=0, fault_events=0,
                torn_writes=0, cycles=0, energy_pj=0.0,
                status="degraded", error=outcome.error)
        if rate == 0.0 and cell.status == "ok":
            baselines[(layer, workload)] = cell
        baseline = baselines.get((layer, workload))
        if (baseline is not None and cell is not baseline
                and cell.status == "ok"):
            cell.cycle_overhead = cell.cycles - baseline.cycles
            cell.energy_overhead_pj = (cell.energy_pj
                                       - baseline.energy_pj)
        cells.append(cell)
    return FaultCampaignResult(seed=seed, rates=tuple(rate_axis),
                               classes=tuple(classes), policy=policy,
                               cells=cells,
                               effective_workers=supervisor
                               .effective_workers)
