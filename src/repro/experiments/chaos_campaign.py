"""Chaos campaign: seeded fabric-fault scenarios under the oracle.

``repro chaos`` is the robustness gate for the routable fabric.  Each
cell generates one :class:`~repro.chaos.ChaosScenario` — a pure
function of ``(seed, index)`` composing topology knobs, a workload, a
fabric fault schedule and optional DMA/DPM — and hands it to the
cross-layer differential oracle (:func:`~repro.chaos.run_scenario`),
which replays it on bus layers 1, 2 and 3 and demands that the layers
agree on everything but time: per-item outcomes, memory contents,
fault accounting, and bitwise-telescoping per-link energy books, with
every run under a progress watchdog so a hang is a finding rather
than a timeout.

One extra cell exercises the *failure* path end-to-end: a scenario
with a deliberately unsurvivable stall window (a read crossing stalled
far past the watchdog budget) must fail, and
:func:`~repro.chaos.shrink_scenario` must bisect it to a minimal
deterministic repro — a single fault, the irrelevant machinery
stripped — that replays to the same signature.  The campaign fails if
the shrinker cannot produce that repro.

Deterministic in (seed, scenarios): journaled cells replay
byte-identically under ``--resume`` and ``workers > 1`` shards the
scenario list over a process pool with identical results.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.chaos import generate_scenario, run_scenario, shrink_scenario
from repro.chaos.scenario import ChaosScenario
from repro.faults.fabric import FabricFaultSpec

from .supervisor import CampaignSupervisor

#: campaign default; the acceptance run is ``--scenarios 200 --seed 7``
DEFAULT_CHAOS_SEED = 7

#: oracle-run budget of the self-test shrink (validated: the seeded
#: hang below shrinks to one fault well inside this)
_SELFTEST_MAX_RUNS = 40


@dataclasses.dataclass
class ChaosCell:
    """One generated scenario's differential verdict."""

    index: int
    name: str
    scenario: dict
    signature: str
    passed: bool
    divergences: typing.List[typing.Dict[str, str]]
    faults_scheduled: int
    faults_fired: int
    fired: typing.Dict[str, int]
    hangs: int
    balanced: bool
    recovered: int
    fault_reports: int
    layer_summary: typing.Dict[str, dict]
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class ShrinkCell:
    """The self-test arm: an injected failure and its minimal repro."""

    signature: str
    runs: int
    steps: int
    replayed: bool
    original: dict
    minimal: dict
    minimal_faults: int
    smaller: bool
    divergences: typing.List[typing.Dict[str, str]]
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class ChaosCampaignResult:
    seed: typing.Union[int, str]
    scenarios: int
    cells: typing.List[ChaosCell]
    selftest: typing.Optional[ShrinkCell]

    @property
    def all_cells_ok(self) -> bool:
        cells_ok = all(cell.status == "ok" for cell in self.cells)
        selftest_ok = (self.selftest is None
                       or self.selftest.status == "ok")
        return cells_ok and selftest_ok

    @property
    def no_hangs(self) -> bool:
        """No layer of any scenario tripped the progress watchdog or
        refused to drain its fabric after the script completed."""
        return all(cell.hangs == 0 for cell in self.cells
                   if cell.status == "ok")

    @property
    def no_divergences(self) -> bool:
        """Every generated scenario passed the cross-layer oracle —
        zero unexplained divergences between layers 1, 2 and 3."""
        return all(cell.passed for cell in self.cells
                   if cell.status == "ok")

    @property
    def books_balanced(self) -> bool:
        """Every layer of every scenario telescoped its per-link
        energy buckets bitwise into the composite probe total."""
        return all(cell.balanced for cell in self.cells
                   if cell.status == "ok")

    @property
    def faults_exercised(self) -> bool:
        """The campaign scheduled fabric faults and they actually
        landed on crossings — a fault schedule that never fires tests
        nothing."""
        scheduled = sum(cell.faults_scheduled for cell in self.cells
                        if cell.status == "ok")
        fired = sum(cell.faults_fired for cell in self.cells
                    if cell.status == "ok")
        return fired > 0 if scheduled > 0 else True

    @property
    def shrinker_ok(self) -> bool:
        """The injected-for-test failure shrank to a one-fault minimal
        scenario that replayed deterministically to the same
        signature.  (True when the self-test arm was not requested.)"""
        if self.selftest is None:
            return True
        cell = self.selftest
        return (cell.status == "ok" and cell.replayed and cell.smaller
                and cell.minimal_faults == 1)

    @property
    def passed(self) -> bool:
        return (self.all_cells_ok and self.no_hangs
                and self.no_divergences and self.books_balanced
                and self.faults_exercised and self.shrinker_ok)

    # -- aggregates -------------------------------------------------------

    def fired_histogram(self) -> typing.Dict[str, int]:
        histogram: typing.Dict[str, int] = {}
        for cell in self.cells:
            if cell.status != "ok":
                continue
            for kind, count in cell.fired.items():
                histogram[kind] = histogram.get(kind, 0) + count
        return histogram

    def failing_cells(self) -> typing.List[ChaosCell]:
        return [cell for cell in self.cells
                if cell.status != "ok" or not cell.passed]

    def format(self) -> str:
        ok = [cell for cell in self.cells if cell.status == "ok"]
        degraded = len(self.cells) - len(ok)
        faulted = sum(1 for cell in ok if cell.faults_scheduled)
        fired_total = sum(cell.faults_fired for cell in ok)
        reports = sum(cell.fault_reports for cell in ok)
        recovered = sum(cell.recovered for cell in ok)
        lines = [
            f"chaos campaign (seed={self.seed!r}, "
            f"{self.scenarios} scenarios x 3 layers):",
            f"  scenarios: {len(ok)} ok / {degraded} degraded; "
            f"{faulted} with fault schedules, "
            f"{fired_total} faults fired",
        ]
        histogram = self.fired_histogram()
        if histogram:
            lines.append("  fired: " + ", ".join(
                f"{kind}={count}" for kind, count
                in sorted(histogram.items())))
        lines.append(f"  recovery: {reports} fault reports, "
                     f"{recovered} recovered within the retry budget")
        failing = self.failing_cells()
        for cell in failing[:10]:
            if cell.status != "ok":
                lines.append(f"  DEGRADED {cell.name}: {cell.error}")
            else:
                lines.append(f"  FAIL {cell.name}: {cell.signature}"
                             + (f" — {cell.divergences[0]['detail']}"
                                if cell.divergences else ""))
        if len(failing) > 10:
            lines.append(f"  ... and {len(failing) - 10} more "
                         f"failing scenarios")
        if self.selftest is not None:
            cell = self.selftest
            if cell.status != "ok":
                lines.append(f"  selftest shrink DEGRADED: {cell.error}")
            else:
                original_faults = len(cell.original.get("faults", ()))
                lines.append(
                    f"  selftest shrink: signature {cell.signature!r}, "
                    f"{original_faults} -> {cell.minimal_faults} "
                    f"fault(s) in {cell.steps} steps / {cell.runs} "
                    f"oracle runs, replay "
                    f"{'ok' if cell.replayed else 'DIVERGED'}")
        checks = [
            ("all cells ran", self.all_cells_ok),
            ("zero hangs under the progress watchdog", self.no_hangs),
            ("zero unexplained cross-layer divergences",
             self.no_divergences),
            ("per-link energy books telescope bitwise",
             self.books_balanced),
            ("scheduled fabric faults fired", self.faults_exercised),
            ("injected failure shrank to a deterministic minimal repro",
             self.shrinker_ok),
        ]
        for label, good in checks:
            lines.append(f"  [{'pass' if good else 'FAIL'}] {label}")
        lines.append("verdict: "
                     + ("layers agree under fabric faults and "
                        "failures shrink to minimal repros"
                        if self.passed else "FAILED"))
        return "\n".join(lines)


def _run_scenario_cell(index: int,
                       seed: typing.Union[int, str]) -> dict:
    """One campaign cell: generate scenario *index*, run the oracle.
    Module-level and pure in its arguments so worker processes can
    pickle and replay it byte-identically."""
    scenario = generate_scenario(seed, index)
    result = run_scenario(scenario)
    first = result.layers[0]
    fired = dict(first.fired)
    fired["arb_glitch"] = first.glitches_fired
    return {
        "index": index,
        "name": scenario.name,
        "scenario": scenario.to_dict(),
        "signature": result.failure_signature,
        "passed": result.passed,
        "divergences": result.divergences,
        "faults_scheduled": len(scenario.faults),
        "faults_fired": result.faults_fired,
        "fired": fired,
        "hangs": sum(1 for run in result.layers if run.hang),
        "balanced": all(run.balanced for run in result.layers),
        "recovered": first.recovered,
        "fault_reports": first.fault_reports,
        "layer_summary": {
            run.layer: {"cycles": run.cycles,
                        "transactions": run.transactions,
                        "errors": run.errors,
                        "retries": run.retries,
                        "probe_total_pj": run.probe_total_pj}
            for run in result.layers},
    }


def _selftest_scenario(seed: typing.Union[int, str]) -> ChaosScenario:
    """A scenario engineered to fail: the first forwarded read stalls
    for 50k cycles against a 1.5k-cycle watchdog budget, buried under
    two extra faults and every orthogonal knob (DMA, DPM, retry, mixed
    workload) the shrinker must learn to strip."""
    return ChaosScenario(
        name="selftest", seed=f"{seed}/selftest", workload="mixed",
        commands=5, with_dma=True, dpm=True, crossing_cycles=2,
        posted_depth=2, arbiter="priority_rr",
        faults=(FabricFaultSpec("read_stall", 0, 50_000),
                FabricFaultSpec("dup_write", 0, 0),
                FabricFaultSpec("arb_glitch", 3, 0)),
        retry=True, max_cycles=120_000, stall_cycles=1_500)


def _run_selftest_cell(seed: typing.Union[int, str]) -> dict:
    """The shrinker's end-to-end self-test cell."""
    scenario = _selftest_scenario(seed)
    shrink = shrink_scenario(scenario, max_runs=_SELFTEST_MAX_RUNS)
    if shrink is None:
        raise RuntimeError(
            "selftest scenario unexpectedly passed the oracle; "
            "the shrinker has nothing to minimise")
    return {
        "signature": shrink.signature,
        "runs": shrink.runs,
        "steps": shrink.steps,
        "replayed": shrink.replayed,
        "original": shrink.original.to_dict(),
        "minimal": shrink.minimal.to_dict(),
        "minimal_faults": shrink.minimal.fault_count,
        "smaller": shrink.minimal.size() < shrink.original.size(),
        "divergences": shrink.minimal_result.divergences,
    }


def run_chaos_campaign(
        scenarios: int = 25,
        seed: typing.Union[int, str] = DEFAULT_CHAOS_SEED,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2,
        cell_wall_seconds: typing.Optional[float] = None,
        workers: int = 1,
        selftest: bool = True) -> ChaosCampaignResult:
    """Run *scenarios* seeded chaos cells plus the shrinker self-test.

    With *journal_path* every finished cell is checkpointed (JSONL);
    *resume* replays journaled cells byte-identically; *workers* > 1
    shards the scenario list over a process pool with identical
    results.  ``selftest=False`` skips the shrinker arm (bench runs).
    """
    if scenarios < 1:
        raise ValueError(f"scenarios must be >= 1, got {scenarios}")
    supervisor = CampaignSupervisor(
        "chaos_campaign", seed, journal_path=journal_path,
        resume=resume, max_attempts=max_attempts,
        cell_wall_seconds=cell_wall_seconds)
    specs: typing.List[tuple] = [
        ({"cell": "scenario", "index": index},
         _run_scenario_cell, (index, seed))
        for index in range(scenarios)]
    if selftest:
        specs.append(({"cell": "selftest"}, _run_selftest_cell, (seed,)))
    cells: typing.List[ChaosCell] = []
    selftest_cell: typing.Optional[ShrinkCell] = None
    for (params, _, _), outcome in zip(
            specs, supervisor.run_cells(specs, workers=workers)):
        if params["cell"] == "selftest":
            if outcome.ok:
                selftest_cell = ShrinkCell(**outcome.payload)
            else:
                selftest_cell = ShrinkCell(
                    signature="", runs=0, steps=0, replayed=False,
                    original={}, minimal={}, minimal_faults=0,
                    smaller=False, divergences=[],
                    status="degraded", error=outcome.error)
        elif outcome.ok:
            cells.append(ChaosCell(**outcome.payload))
        else:
            index = params["index"]
            cells.append(ChaosCell(
                index=index, name=f"s{seed}-{index:04d}", scenario={},
                signature="", passed=False, divergences=[],
                faults_scheduled=0, faults_fired=0, fired={}, hangs=0,
                balanced=False, recovered=0, fault_reports=0,
                layer_summary={}, status="degraded",
                error=outcome.error))
    return ChaosCampaignResult(seed=seed, scenarios=scenarios,
                               cells=cells, selftest=selftest_cell)
