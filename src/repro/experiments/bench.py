"""Tracked performance benchmarks: ``repro bench`` → ``BENCH_PR10.json``.

Measures, on this host, the throughput the fast-path engines are
supposed to buy and writes the numbers as a flat list of rows —
``{"metric", "value", "unit", "config"}`` — so successive runs can be
diffed and CI can gate on a floor:

* **kernel throughput** — cycles/second of the bare clocked kernel
  (one clock, trivial posedge/negedge ``SC_METHOD`` processes), fast
  lane vs generic delta loop.  This isolates the scheduler itself and
  carries the ``>= 2x`` CI gate.
* **bus-layer throughput** — cycles/second of the full Table-3
  workload on layer 1 and layer 2 with energy estimation, end to end:
  generic lane + per-cycle ``reference`` transition engine (the
  uncompiled energy path) vs fast lane + deferred ``packed`` engine.
  The layer-1 ratio carries the ``>= 3x`` CI gate; one extra row per
  available engine backend races the backends on equal terms.
* **link throughput** — T=1 sessions/second over the modelled UART on
  layer 1, clean wire vs a 1% noisy channel.  The gap prices what the
  retransmission machinery costs in simulation speed; reported, not
  gated.
* **fabric throughput** — transactions/second of an APDU+DMA workload
  on layer 1, flat single bus vs the bridged two-segment fabric; the
  overhead ratio prices the bridge's clone-and-forward machinery.
* **campaign throughput** — supervisor cells/second of a small fault
  campaign, serial vs process-parallel (``workers``).

Timings are wall clock and host-dependent; everything *derived* from
simulation (energies, cycle counts) is deterministic and asserted
identical between the fast and generic runs before a row is emitted.
"""

from __future__ import annotations

import json
import os
import time
import typing

from repro.kernel import Clock, Process, Simulator
from repro.power import Layer1PowerModel, Layer2PowerModel
from repro.tlm import EcBusLayer1, EcBusLayer2, PipelinedMaster, run_script

from .common import (CLOCK_PERIOD, _bind_dynamic_slaves, characterization,
                     fresh_memory_map)
from .table3 import make_script

#: CI floor for the fast-lane kernel speedup (see docs/PERFORMANCE.md).
FASTLANE_FLOOR = 2.0

#: CI floor for the end-to-end layer-1 speedup: fast lane + packed
#: transition engine vs generic lane + per-cycle reference engine.
E2E_FLOOR = 3.0

#: Interleaved repetitions per (lane, backend) configuration; the best
#: rep is reported.  Wall clock on a loaded host only ever adds noise,
#: so best-of-N is the stable estimator of what the code costs.
E2E_REPS = 3

#: Default output file, at the repository root by convention.
DEFAULT_OUTPUT = "BENCH_PR10.json"


def _row(metric: str, value: float, unit: str,
         config: typing.Dict[str, typing.Any]) -> dict:
    return {"metric": metric, "value": value, "unit": unit,
            "config": config}


# ----------------------------------------------------------------------
# kernel-shape workload: the scheduler alone
# ----------------------------------------------------------------------

def _kernel_throughput(cycles: int, fast_lane: bool) -> float:
    """Cycles/second of a bare clock + two trivial edge processes."""
    simulator = Simulator("bench_kernel", fast_lane=fast_lane)
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    counters = {"pos": 0, "neg": 0}

    def on_posedge() -> None:
        counters["pos"] += 1

    def on_negedge() -> None:
        counters["neg"] += 1

    Process(simulator, on_posedge, "pos",
            dont_initialize=True).sensitive(clock.posedge_event)
    Process(simulator, on_negedge, "neg",
            dont_initialize=True).sensitive(clock.negedge_event)
    simulator.run(100 * CLOCK_PERIOD)  # warm-up: settle + compile plans
    start_cycles = clock.cycles
    started = time.perf_counter()
    simulator.run(cycles * CLOCK_PERIOD)
    wall = time.perf_counter() - started
    ran = clock.cycles - start_cycles
    if ran < cycles:
        raise RuntimeError(f"kernel bench ran {ran} < {cycles} cycles")
    return ran / wall


def bench_kernel(cycles: int) -> typing.List[dict]:
    config = {"workload": "clock+2 edge methods", "cycles": cycles,
              "clock_period": CLOCK_PERIOD}
    generic = _kernel_throughput(cycles, fast_lane=False)
    fast = _kernel_throughput(cycles, fast_lane=True)
    return [
        _row("kernel_cycles_per_s_generic", generic, "cycles/s", config),
        _row("kernel_cycles_per_s_fast", fast, "cycles/s", config),
        _row("kernel_fastlane_speedup", fast / generic, "x", config),
    ]


# ----------------------------------------------------------------------
# full bus layers: Table-3 workload with energy estimation
# ----------------------------------------------------------------------

def _layer_throughput(layer: int, transactions: int, fast_lane: bool,
                      backend: str = "packed", eager: bool = False
                      ) -> typing.Tuple[float, float]:
    """(cycles/s, total energy pJ) of the Table-3 workload on *layer*.

    *backend* selects the transition engine; *eager* (layer 1 only)
    forces per-cycle accounting — the shape of the pre-packed-word
    energy path, which is what the end-to-end baseline must price.
    """
    table = characterization().table
    simulator = Simulator(f"bench_l{layer}", fast_lane=fast_lane)
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = fresh_memory_map()
    if layer == 1:
        model: typing.Any = Layer1PowerModel(table, backend=backend,
                                             eager=eager)
        bus = EcBusLayer1(simulator, clock, memory_map, power_model=model)
    else:
        model = Layer2PowerModel(table, backend=backend)
        bus = EcBusLayer2(simulator, clock, memory_map, power_model=model)
    _bind_dynamic_slaves(memory_map, bus)
    master = PipelinedMaster(simulator, clock, bus,
                             make_script(transactions))
    started = time.perf_counter()
    run_script(simulator, master, 5_000_000, clock)
    wall = time.perf_counter() - started
    if not master.done:
        raise RuntimeError(f"layer-{layer} bench workload incomplete")
    if layer == 2:
        model.account_cycles(bus.cycle)
    return clock.cycles / wall, model.total_energy_pj


def bench_layers(transactions: int) -> typing.List[dict]:
    """End-to-end bus-layer throughput plus per-backend rows.

    The end-to-end comparison is the whole PR-10 claim: *baseline* is
    the generic delta-cycle lane driving the per-cycle ``reference``
    engine (the uncompiled energy path), *fast* is the fast lane
    driving the deferred ``packed`` engine.  Configurations are
    interleaved across :data:`E2E_REPS` repetitions and the best rep
    of each is reported, which keeps the ratio stable on noisy hosts.
    Every run's total energy is asserted identical first.
    """
    from repro.power import available_backends
    rows = []
    for layer in (1, 2):
        config = {"workload": "table3", "transactions": transactions,
                  "layer": layer, "estimation": True, "reps": E2E_REPS}
        setups = {
            "generic": dict(fast_lane=False, backend="reference",
                            eager=(layer == 1)),
            "fast": dict(fast_lane=True, backend="packed"),
        }
        best: typing.Dict[str, float] = {}
        energies = {}
        for _rep in range(E2E_REPS):
            for name, setup in setups.items():
                rate, energy = _layer_throughput(layer, transactions,
                                                 **setup)
                best[name] = max(best.get(name, 0.0), rate)
                energies[name] = energy
        if energies["fast"] != energies["generic"]:
            raise RuntimeError(
                f"layer-{layer} energy diverged between engines: "
                f"{energies['fast']} != {energies['generic']}")
        rows.extend([
            _row(f"layer{layer}_cycles_per_s_e2e_generic",
                 best["generic"], "cycles/s",
                 dict(config, lane="generic", backend="reference",
                      accounting="per-cycle")),
            _row(f"layer{layer}_cycles_per_s_e2e_fast",
                 best["fast"], "cycles/s",
                 dict(config, lane="fast", backend="packed",
                      accounting="deferred")),
            _row(f"layer{layer}_e2e_speedup",
                 best["fast"] / best["generic"], "x", config),
        ])
        # one row per available engine backend, all on the fast lane
        # with deferred accounting, so the backends race on equal terms
        for backend in available_backends():
            rate, energy = _layer_throughput(layer, transactions,
                                             fast_lane=True,
                                             backend=backend)
            if energy != energies["fast"]:
                raise RuntimeError(
                    f"layer-{layer} backend {backend!r} energy "
                    f"diverged: {energy} != {energies['fast']}")
            rows.append(_row(
                f"layer{layer}_cycles_per_s_backend_{backend}", rate,
                "cycles/s", dict(config, lane="fast",
                                 backend=backend)))
    return rows


# ----------------------------------------------------------------------
# T=1 link layer: sessions/second, clean wire vs noisy wire
# ----------------------------------------------------------------------

def _link_sessions_per_s(sessions: int, commands: int,
                         noise: float) -> typing.Tuple[float, int]:
    """(sessions/s, total retries) of T=1 sessions at *noise*."""
    from repro.link import NoisyChannel, run_link_session
    from repro.soc import SmartCardPlatform
    table = characterization().table
    retries = 0
    started = time.perf_counter()
    for index in range(sessions):
        seed = f"bench-link/{noise}/{index}"
        channel = (NoisyChannel(noise, seed=f"{seed}/chan")
                   if noise > 0.0 else None)
        platform = SmartCardPlatform(
            bus_layer=1, power_model=Layer1PowerModel(table))
        report = run_link_session(
            platform, ("select", "read_record", "internal_auth"),
            seed=seed, channel=channel)
        if not report.clean_close:
            raise RuntimeError(
                f"link bench session {index} at noise {noise} did not "
                f"close cleanly ({report.outcome})")
        retries += report.session_retries
    wall = time.perf_counter() - started
    return sessions / wall, retries


def bench_link(sessions: int) -> typing.List[dict]:
    rows = []
    for noise in (0.0, 0.01):
        config = {"workload": "t1_link", "sessions": sessions,
                  "commands": 3, "layer": 1, "noise": noise}
        rate, retries = _link_sessions_per_s(sessions, 3, noise)
        label = "clean" if noise == 0.0 else "noisy"
        rows.append(_row(f"link_sessions_per_s_{label}", rate,
                         "sessions/s", dict(config, retries=retries)))
    return rows


# ----------------------------------------------------------------------
# routable fabric: transactions/second, flat bus vs bridged topology
# ----------------------------------------------------------------------

def _fabric_txns_per_s(topology: str, commands: int
                       ) -> typing.Tuple[float, int]:
    """(transactions/s, transactions) of an APDU+DMA workload routed
    through *topology* on layer 1."""
    from .fabric_campaign import _run_fabric_cell
    table = characterization().table
    started = time.perf_counter()
    cell = _run_fabric_cell(topology, "layer1", "bench-fabric",
                            commands, table, 300_000,
                            check_identity=False)
    wall = time.perf_counter() - started
    if not cell["balanced"]:
        raise RuntimeError(
            f"fabric bench ({topology}): per-link books do not "
            f"telescope (imbalance {cell['imbalance_pj']} pJ)")
    return cell["transactions"] / wall, cell["transactions"]


def bench_fabric(commands: int) -> typing.List[dict]:
    """Prices what hierarchical routing costs in simulation speed: the
    same workload through the flat single bus and through the bridged
    two-segment fabric (bridge clones + posted-write drain)."""
    rows = []
    rates = {}
    for topology in ("flat", "bridged"):
        config = {"workload": "apdu+dma", "commands": commands,
                  "layer": 1, "topology": topology}
        rate, transactions = _fabric_txns_per_s(topology, commands)
        rates[topology] = rate
        rows.append(_row(f"fabric_txns_per_s_{topology}", rate,
                         "txns/s", dict(config,
                                        transactions=transactions)))
    rows.append(_row("fabric_bridge_overhead",
                     rates["flat"] / rates["bridged"], "x",
                     {"workload": "apdu+dma", "commands": commands,
                      "layer": 1}))
    return rows


# ----------------------------------------------------------------------
# chaos oracle: differential scenarios/second
# ----------------------------------------------------------------------

def bench_chaos(scenarios: int) -> typing.List[dict]:
    """Prices the chaos oracle: one generated scenario costs three
    full platform runs (layers 1, 2, 3) plus the invariant checks.
    The bench scenarios must all pass — a failing scenario would be a
    real finding, not a benchmark."""
    from repro.chaos import generate_scenario, run_scenario
    started = time.perf_counter()
    for index in range(scenarios):
        result = run_scenario(generate_scenario("bench-chaos", index))
        if not result.passed:
            raise RuntimeError(
                f"chaos bench scenario {index} failed "
                f"({result.failure_signature}): the bench only runs "
                f"on a passing oracle")
    wall = time.perf_counter() - started
    return [_row("chaos_scenarios_per_s", scenarios / wall,
                 "scenarios/s",
                 {"scenarios": scenarios, "layers": 3,
                  "seed": "bench-chaos"})]


# ----------------------------------------------------------------------
# campaign sharding: supervisor cells/second
# ----------------------------------------------------------------------

def _campaign_cells_per_s(workers: int, rates, classes
                          ) -> typing.Tuple[float, int, int]:
    from .fault_campaign import run_fault_campaign
    started = time.perf_counter()
    result = run_fault_campaign(
        rates=rates, classes=classes,
        layers=("layer1", "layer2"), workers=workers)
    wall = time.perf_counter() - started
    return (len(result.cells) / wall, len(result.cells),
            result.effective_workers or 1)


def bench_campaign(workers: int, quick: bool) -> typing.List[dict]:
    # enough cells that sharding amortises the pool start-up; the
    # quick grid is for smoke runs and may not show a speedup
    if quick:
        rates, classes = (0.0, 0.05), ("random_mix",)
    else:
        rates = (0.0, 0.02, 0.05, 0.1)
        classes = ("random_mix", "burst_heavy")
    serial, cells, _ = _campaign_cells_per_s(1, rates, classes)
    parallel, _, effective = _campaign_cells_per_s(
        workers, rates, classes)
    # sharding buys wall clock only when cores exist to shard onto;
    # the supervisor falls back to serial on 1-CPU hosts, and calling
    # the resulting ~1.0 a "speedup" would misread as a regression —
    # label the ratio honestly and record what actually ran
    serial_fallback = effective < max(1, workers)
    config = {"experiment": "fault_campaign", "cells": cells,
              "workers": workers, "effective_workers": effective,
              "serial_fallback": serial_fallback,
              "host_cpus": os.cpu_count()}
    ratio_metric = ("campaign_parallel_ratio" if serial_fallback
                    else "campaign_parallel_speedup")
    return [
        _row("campaign_cells_per_s_serial", serial, "cells/s",
             dict(config, workers=1, effective_workers=1)),
        _row("campaign_cells_per_s_parallel", parallel, "cells/s",
             config),
        _row(ratio_metric, parallel / serial, "x", config),
    ]


# ----------------------------------------------------------------------

def run_bench(quick: bool = False, workers: int = 2,
              campaign: bool = True) -> typing.List[dict]:
    """Run the benchmark suite; ``quick`` shrinks the workloads for CI
    smoke runs without changing the metrics reported."""
    kernel_cycles = 20_000 if quick else 100_000
    transactions = 300 if quick else 2_000
    link_sessions = 2 if quick else 6
    fabric_commands = 4 if quick else 8
    chaos_scenarios = 2 if quick else 6
    rows = bench_kernel(kernel_cycles)
    rows.extend(bench_layers(transactions))
    rows.extend(bench_link(link_sessions))
    rows.extend(bench_fabric(fabric_commands))
    rows.extend(bench_chaos(chaos_scenarios))
    if campaign:
        rows.extend(bench_campaign(workers, quick))
    return rows


def fastlane_speedup(rows: typing.Sequence[dict]) -> float:
    for row in rows:
        if row["metric"] == "kernel_fastlane_speedup":
            return row["value"]
    raise KeyError("kernel_fastlane_speedup")


def layer1_e2e_speedup(rows: typing.Sequence[dict]) -> float:
    for row in rows:
        if row["metric"] == "layer1_e2e_speedup":
            return row["value"]
    raise KeyError("layer1_e2e_speedup")


def write_bench(rows: typing.Sequence[dict], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=2)
        handle.write("\n")


def format_rows(rows: typing.Sequence[dict]) -> str:
    lines = [f"{'metric':<34}{'value':>14}  unit"]
    for row in rows:
        lines.append(f"{row['metric']:<34}{row['value']:>14,.1f}"
                     f"  {row['unit']}")
    return "\n".join(lines)
