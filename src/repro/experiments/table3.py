"""Table 3 — simulation performance of the transaction-level models.

Paper (DATE 2004, §4.2): executed bus transactions per second for the
two TLM layers, with and without energy estimation; the stimulus
"contained all combinations between of single reads, single writes,
burst reads, and burst write transactions":

    ==========  ================  ======  ==================  ======
    model       with estimation   factor  without estimation  factor
    ==========  ================  ======  ==================  ======
    TL layer 1        85.3 kT/s     1.0           94.6 kT/s     1.1
    TL layer 2       129.6 kT/s    1.52          145.8 kT/s     1.7
    ==========  ================  ======  ==================  ======

Absolute kT/s depend on the host (the paper's 2003 workstation vs this
Python port); the reproduced *shape* is the factor column: layer 2
about 1.5x layer 1 with estimation, about 1.7x without, and roughly
10% gained by switching estimation off.  The same harness also
measures the gate-level model to show the TLM speed-up the paper cites
from prior work.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.soc.smartcard import EEPROM_BASE, RAM_BASE
from repro.workloads import table3_script

from .common import RunResult, characterization, run_on_layer, run_on_rtl


@dataclasses.dataclass
class Table3Row:
    model: str
    with_estimation_kts: float
    with_estimation_factor: float
    without_estimation_kts: float
    without_estimation_factor: float


@dataclasses.dataclass
class Table3Result:
    rows: typing.List[Table3Row]
    transactions: int
    gate_level_kts: typing.Optional[float] = None

    def row(self, name: str) -> Table3Row:
        for row in self.rows:
            if row.model == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        lines = [
            "Table 3: simulation performance (executed transactions/s)",
            f"{'':<14}{'with estimation':>22}{'without estimation':>24}",
            f"{'':<14}{'kT/s':>12}{'factor':>10}{'kT/s':>14}{'factor':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.model:<14}{row.with_estimation_kts:>12.1f}"
                f"{row.with_estimation_factor:>10.2f}"
                f"{row.without_estimation_kts:>14.1f}"
                f"{row.without_estimation_factor:>10.2f}")
        if self.gate_level_kts is not None:
            lines.append(f"{'gate level':<14}{'-':>12}{'-':>10}"
                         f"{self.gate_level_kts:>14.1f}"
                         f"{'':>10}")
        return "\n".join(lines)


def make_script(transactions: int, seed: int = 42) -> list:
    """The Table-3 stimulus (single/burst read/write mix)."""
    return table3_script(random.Random(seed), transactions,
                         fast_base=RAM_BASE, slow_base=EEPROM_BASE)


def run_table3(transactions: int = 2_000, seed: int = 42,
               include_gate_level: bool = False,
               gate_level_transactions: int = 200) -> Table3Result:
    """Reproduce Table 3 by timing all four model configurations."""
    table = characterization().table
    results: typing.Dict[typing.Tuple[int, bool], RunResult] = {}
    for layer in (1, 2):
        for with_estimation in (True, False):
            script = make_script(transactions, seed)
            results[(layer, with_estimation)] = run_on_layer(
                layer, script, table=table if with_estimation else None)
    baseline = results[(1, True)].transactions_per_second
    rows = []
    for layer in (1, 2):
        with_est = results[(layer, True)].transactions_per_second
        without_est = results[(layer, False)].transactions_per_second
        rows.append(Table3Row(
            f"TL Layer {layer}",
            with_est / 1e3, with_est / baseline,
            without_est / 1e3, without_est / baseline))
    gate_kts = None
    if include_gate_level:
        gate = run_on_rtl(make_script(gate_level_transactions, seed),
                          estimate_power=True)
        gate_kts = gate.transactions_per_second / 1e3
    return Table3Result(rows, transactions, gate_kts)
