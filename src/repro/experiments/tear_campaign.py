"""Tear campaign: does anti-tearing hold, and what does it cost?

A smart card can lose power at *any* cycle — the reader yanks the
field, the harvest loop browns out mid-EEPROM-write.  The journal in
:mod:`repro.soc.journal` promises that a journaled update survives a
tear at every point of its discipline; this campaign *checks* that
promise empirically, per bus layer, and prices the boot-time recovery
it relies on.

Per (layer, tear point) cell the campaign

1. builds a fresh :class:`~repro.soc.SmartCardPlatform`, pre-loads the
   EEPROM home region with the seeded old values, and drives the
   journaled update workload with a :class:`~repro.tlm.BlockingMaster`
   (in-order issue *is* the journal discipline);
2. kills the whole card at the scheduled cycle through a
   :class:`~repro.faults.TearInjector` (clean kernel halt — volatile
   state gone, EEPROM frozen mid-flight);
3. re-fields the card with
   :meth:`~repro.soc.SmartCardPlatform.cold_boot` (same non-volatile
   image, fresh everything else) and runs the journal's boot-time
   :meth:`~repro.soc.journal.TransactionJournal.recovery_script` over
   the bus, measuring its cycles and energy on the same layer;
4. verifies the consistency invariants: every logical transaction is
   all-old or all-new (no partial commit is visible), the applied
   transactions form a prefix of the issue order, a frame that was
   durably committed at the tear point is applied after recovery, and
   the journal is clean afterwards.

Tear points come from :func:`~repro.faults.tear_schedule`, seeded per
layer and spanning each layer's own tear-free baseline run, so the
grid exercises address phases, data beats, EEPROM busy windows and the
journal discipline's every inter-write gap.

A governor sub-study runs the same workload twice on a deliberately
starved :class:`~repro.power.PowerSupply` — once open-loop, once with
masters consulting an :class:`~repro.power.EnergyGovernor` — and
reports the brownout counts side by side.  The supply parameters are
calibrated so the open-loop run dips below the brownout threshold
while the governed run, deferring issues whenever projected draw would
breach the budget, stays above it.

Deterministic in (seed, points, transactions): schedules, workload
values and supply behaviour all derive from seeded streams, so
journaled campaign rows replay byte-identically under ``--resume``.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.faults import TearInjector, tear_schedule
from repro.power import (EnergyGovernor, Layer1PowerModel,
                         Layer2PowerModel, PowerDomain, PowerSupply)
from repro.power.diesel import DieselEstimator, InterfaceActivityLog
from repro.rtl import RtlBus
from repro.soc import EEPROM_BASE, SmartCardPlatform, TransactionJournal
from repro.tlm import BlockingMaster, run_script

from .common import characterization
from .robustness import DEFAULT_SEED
from .supervisor import CampaignSupervisor

LAYERS = ("layer1", "layer2", "gate-level")

#: Home words per logical transaction (each journaled all-or-nothing).
WORDS_PER_TXN = 2

#: EEPROM layout of the workload: home region well below the journal
#: window, journal window well inside the EEPROM.
HOME_OFFSET = 0x100
JOURNAL_OFFSET = 0x800

#: Supply operating point of the governor sub-study, calibrated so the
#: open-loop workload browns out while the governed one does not: the
#: harvest rate (2 pJ/cycle) undercuts the workload's average draw
#: (~2.4 pJ/cycle), so the storage cap slowly drains.  The governor's
#: margin is about one transaction cost of headroom above the brownout
#: threshold; note ``capacity - brownout`` must exceed ``margin`` plus
#: the dearest transaction's cost, or the governor can never grant and
#: the governed run livelocks (the run_script watchdog would flag it).
GOVERNOR_SUPPLY = dict(capacity_nj=0.10, harvest_pj_per_cycle=2.0,
                       brownout_nj=0.05, power_loss_nj=0.0)
GOVERNOR_MARGIN_NJ = 0.02


@dataclasses.dataclass
class TearCell:
    """One (layer, tear point) run: tear, cold boot, recover, verify."""

    layer: str
    tear_cycle: int
    torn: bool                  # False when the workload beat the tear
    transactions: int
    applied: int                # transactions all-new after recovery
    committed_at_tear: bool     # journal held a durable frame
    replayed: bool              # recovery replayed that frame
    recovery_cycles: int
    recovery_energy_pj: float
    consistent: bool
    violations: typing.List[str] = dataclasses.field(default_factory=list)
    #: "ok", or "degraded" when the cell kept crashing and the
    #: supervisor recorded a placeholder instead of sinking the sweep
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class GovernorCell:
    """One arm of the governor sub-study on the starved supply."""

    governed: bool
    completed: bool
    cycles: int
    brownouts: int
    deferrals: int
    drained_pj: float
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class TearCampaignResult:
    seed: typing.Union[int, str]
    points: int
    transactions: int
    layers: typing.Tuple[str, ...]
    baselines: typing.Dict[str, dict]
    cells: typing.List[TearCell]
    governor: typing.List[GovernorCell]

    def layer_cells(self, layer: str) -> typing.List[TearCell]:
        return [cell for cell in self.cells if cell.layer == layer]

    def consistency_rate(self, layer: str) -> float:
        cells = [c for c in self.layer_cells(layer) if c.status == "ok"]
        if not cells:
            return 0.0
        return sum(1 for c in cells if c.consistent) / len(cells)

    @property
    def all_consistent(self) -> bool:
        return all(cell.status == "ok" and cell.consistent
                   for cell in self.cells)

    @property
    def governor_effective(self) -> bool:
        """Strictly fewer brownouts with the governor, both arms done."""
        arms = {cell.governed: cell for cell in self.governor
                if cell.status == "ok"}
        if True not in arms or False not in arms:
            return False
        return (arms[True].completed and arms[False].completed
                and arms[True].brownouts < arms[False].brownouts)

    def format(self) -> str:
        lines = [
            f"Tear campaign (seed={self.seed!r}, {self.points} tear "
            f"points/layer, {self.transactions} journaled txns of "
            f"{WORDS_PER_TXN} words):",
            f"{'layer':<12}{'points':>7}{'torn':>6}{'consistent':>11}"
            f"{'rate':>8}{'replays':>8}{'recovery cyc':>13}"
            f"{'replay E (nJ)':>14}",
        ]
        for layer in self.layers:
            cells = self.layer_cells(layer)
            ok = [c for c in cells if c.status == "ok"]
            consistent = sum(1 for c in ok if c.consistent)
            replays = [c for c in ok if c.replayed]
            mean_cycles = (sum(c.recovery_cycles for c in replays)
                           / len(replays)) if replays else 0.0
            mean_nj = (sum(c.recovery_energy_pj for c in replays)
                       / len(replays) / 1e3) if replays else 0.0
            lines.append(
                f"{layer:<12}{len(cells):>7}"
                f"{sum(1 for c in ok if c.torn):>6}"
                f"{consistent:>11}"
                f"{100.0 * self.consistency_rate(layer):>7.1f}%"
                f"{len(replays):>8}{mean_cycles:>13.1f}{mean_nj:>14.3f}")
        violations = [(cell, v) for cell in self.cells
                      for v in cell.violations]
        for cell, violation in violations[:10]:
            lines.append(f"  VIOLATION {cell.layer} @cycle "
                         f"{cell.tear_cycle}: {violation}")
        degraded = [c for c in self.cells if c.status != "ok"]
        for cell in degraded[:5]:
            lines.append(f"  DEGRADED {cell.layer} @cycle "
                         f"{cell.tear_cycle}: {cell.error}")
        if self.governor:
            supply = GOVERNOR_SUPPLY
            lines.append(
                f"governor sub-study (layer1, "
                f"{supply['capacity_nj']:.2f} nJ cap, "
                f"{supply['harvest_pj_per_cycle']:.1f} pJ/cycle "
                f"harvest, brownout at {supply['brownout_nj']:.2f} nJ):")
            for cell in self.governor:
                arm = "governed" if cell.governed else "open-loop"
                if cell.status != "ok":
                    lines.append(f"  {arm:<10} DEGRADED: {cell.error}")
                    continue
                lines.append(
                    f"  {arm:<10} brownouts={cell.brownouts}"
                    f" deferrals={cell.deferrals}"
                    f" cycles={cell.cycles}"
                    f" completed={'yes' if cell.completed else 'NO'}")
            lines.append(
                "  governor verdict: "
                + ("effective (strictly fewer brownouts)"
                   if self.governor_effective else "NOT effective"))
        lines.append(
            "verdict: "
            + ("all tear points recovered consistently"
               if self.all_consistent
               else "CONSISTENCY VIOLATIONS — see above"))
        return "\n".join(lines)


class _JournalWorkload:
    """The seeded journaled-update workload shared by every cell.

    *transactions* logical updates, each writing ``WORDS_PER_TXN``
    disjoint home words, each compiled to the full journal discipline.
    Old and new values come from one seeded stream, so every layer and
    every tear point faces byte-identical traffic.
    """

    def __init__(self, seed: typing.Union[int, str],
                 transactions: int) -> None:
        home_words = WORDS_PER_TXN * transactions
        if HOME_OFFSET + 4 * home_words > JOURNAL_OFFSET:
            raise ValueError(
                f"{transactions} transactions overflow the home "
                f"region (fits "
                f"{(JOURNAL_OFFSET - HOME_OFFSET) // (4 * WORDS_PER_TXN)})")
        self.transactions = transactions
        self.journal = TransactionJournal(EEPROM_BASE + JOURNAL_OFFSET,
                                          capacity=WORDS_PER_TXN)
        rng = random.Random(f"{seed}/tear-workload")
        self.old: typing.Dict[int, int] = {}
        self.txn_writes: typing.List[
            typing.List[typing.Tuple[int, int]]] = []
        for txn in range(transactions):
            writes = []
            for word in range(WORDS_PER_TXN):
                address = (EEPROM_BASE + HOME_OFFSET
                           + 4 * (WORDS_PER_TXN * txn + word))
                old = rng.randrange(1 << 32)
                new = rng.randrange(1 << 32)
                if new == old:
                    new ^= 0xFFFFFFFF
                self.old[address] = old
                writes.append((address, new))
            self.txn_writes.append(writes)

    def preload(self, platform: SmartCardPlatform) -> None:
        for address, value in self.old.items():
            platform.eeprom.poke(address - EEPROM_BASE, value)

    def script(self):
        """A fresh script (transactions are single-use objects)."""
        items = []
        for seq, writes in enumerate(self.txn_writes):
            items.extend(self.journal.update_script(seq, writes))
        return items

    def reader(self, platform: SmartCardPlatform
               ) -> typing.Callable[[int], int]:
        return lambda address: platform.eeprom.peek(address - EEPROM_BASE)

    def classify(self, platform: SmartCardPlatform) -> typing.List[str]:
        """Per transaction: ``"old"``, ``"new"`` or ``"mixed"``."""
        read = self.reader(platform)
        statuses = []
        for writes in self.txn_writes:
            values = [read(address) for address, _ in writes]
            if values == [new for _, new in writes]:
                statuses.append("new")
            elif values == [self.old[address] for address, _ in writes]:
                statuses.append("old")
            else:
                statuses.append("mixed")
        return statuses


def _fresh_model(layer: str, table):
    if layer == "layer1":
        return Layer1PowerModel(table)
    if layer == "layer2":
        return Layer2PowerModel(table)
    return None


class _GateFactory:
    """Bus factory for gate-level platforms; one activity log per
    platform built, so the torn run and the cold-booted recovery run
    are priced separately."""

    def __init__(self) -> None:
        self.logs: typing.List[InterfaceActivityLog] = []

    def __call__(self, simulator, clock, memory_map, power_model=None):
        self.logs.append(InterfaceActivityLog())
        return RtlBus(simulator, clock, memory_map,
                      activity_log=self.logs[-1])


def _fresh_platform(layer: str, table):
    if layer == "gate-level":
        factory = _GateFactory()
        return SmartCardPlatform(bus_factory=factory), None, factory
    model = _fresh_model(layer, table)
    bus_layer = 1 if layer == "layer1" else 2
    return SmartCardPlatform(bus_layer=bus_layer,
                             power_model=model), model, None


def _platform_energy(platform: SmartCardPlatform, layer: str,
                     power_model, activity) -> float:
    if layer == "gate-level":
        report = DieselEstimator().estimate(
            activity, netlists=[platform.bus.decoder.netlist],
            control_register_toggles=platform.bus.control_register_toggles,
            control_flop_count=platform.bus.control_flop_count,
            cycles=platform.bus.cycle)
        return report.total_energy_pj
    if layer == "layer2":
        power_model.account_cycles(platform.bus.cycle)
    return power_model.total_energy_pj


def _run_baseline(layer: str, seed, transactions: int, table,
                  max_cycles: int,
                  wall_seconds: typing.Optional[float]) -> dict:
    """The tear-free run of one layer: the grid's cycle span."""
    workload = _JournalWorkload(seed, transactions)
    platform, model, factory = _fresh_platform(layer, table)
    workload.preload(platform)
    master = BlockingMaster(platform.simulator, platform.clock,
                            platform.bus, workload.script())
    cycles = run_script(platform.simulator, master, max_cycles,
                        platform.clock, wall_seconds=wall_seconds)
    if not master.done:
        raise RuntimeError(
            f"{layer} baseline incomplete after {cycles} cycles")
    statuses = workload.classify(platform)
    if statuses != ["new"] * transactions:
        raise RuntimeError(f"{layer} baseline left home region "
                           f"inconsistent: {statuses}")
    activity = factory.logs[-1] if factory else None
    return {"layer": layer, "cycles": cycles,
            "energy_pj": _platform_energy(platform, layer, model,
                                          activity)}


def _run_tear_cell(layer: str, tear_cycle: int, seed,
                   transactions: int, table, max_cycles: int,
                   wall_seconds: typing.Optional[float]) -> dict:
    workload = _JournalWorkload(seed, transactions)
    platform, model, factory = _fresh_platform(layer, table)
    workload.preload(platform)
    master = BlockingMaster(platform.simulator, platform.clock,
                            platform.bus, workload.script())
    TearInjector(platform.simulator, platform.clock,
                 lambda: platform.bus.cycle, at_cycle=tear_cycle)
    run_script(platform.simulator, master, max_cycles, platform.clock,
               wall_seconds=wall_seconds)
    torn = platform.simulator.powered_off
    state_at_tear = workload.journal.decode(workload.reader(platform))

    # re-field the card: fresh volatile world, same EEPROM image
    recovery_model = _fresh_model(layer, table)
    booted = platform.cold_boot(power_model=recovery_model)
    state = workload.journal.decode(workload.reader(booted))
    recovery = workload.journal.recovery_script(state)
    recovery_master = BlockingMaster(booted.simulator, booted.clock,
                                     booted.bus, recovery)
    recovery_cycles = run_script(booted.simulator, recovery_master,
                                 max_cycles, booted.clock,
                                 wall_seconds=wall_seconds)
    activity = factory.logs[-1] if factory else None
    recovery_energy = _platform_energy(booted, layer, recovery_model,
                                       activity)

    violations = []
    if not recovery_master.done:
        violations.append("recovery script did not complete")
    statuses = workload.classify(booted)
    for index, status in enumerate(statuses):
        if status == "mixed":
            violations.append(f"txn {index} partially committed")
    applied = [i for i, s in enumerate(statuses) if s == "new"]
    if applied != list(range(len(applied))):
        violations.append(f"applied set {applied} is not a prefix")
    if state_at_tear.committed and statuses[state_at_tear.seq] != "new":
        violations.append(
            f"durably committed txn {state_at_tear.seq} lost")
    if workload.journal.decode(workload.reader(booted)).committed:
        violations.append("journal still committed after recovery")
    if not torn and statuses != ["new"] * transactions:
        violations.append("untorn run did not apply every txn")

    return {
        "layer": layer, "tear_cycle": tear_cycle, "torn": torn,
        "transactions": transactions, "applied": len(applied),
        "committed_at_tear": state_at_tear.committed,
        "replayed": state.committed,
        "recovery_cycles": recovery_cycles,
        "recovery_energy_pj": recovery_energy,
        "consistent": not violations, "violations": violations,
    }


def _run_governor_cell(governed: bool, seed, transactions: int, table,
                       max_cycles: int,
                       wall_seconds: typing.Optional[float]) -> dict:
    workload = _JournalWorkload(seed, transactions)
    model = Layer1PowerModel(table)
    platform = SmartCardPlatform(bus_layer=1, power_model=model)
    workload.preload(platform)
    supply = PowerSupply(model, **GOVERNOR_SUPPLY)
    PowerDomain(platform.simulator, platform.clock, platform.bus,
                supply, halt_on_power_loss=False)
    governor = (EnergyGovernor(supply, table,
                               margin_nj=GOVERNOR_MARGIN_NJ)
                if governed else None)
    master = BlockingMaster(platform.simulator, platform.clock,
                            platform.bus, workload.script(),
                            governor=governor)
    cycles = run_script(platform.simulator, master, max_cycles,
                        platform.clock, wall_seconds=wall_seconds)
    return {
        "governed": governed, "completed": master.done,
        "cycles": cycles, "brownouts": len(supply.brownouts),
        "deferrals": governor.deferrals if governor else 0,
        "drained_pj": supply.drained_pj,
    }


def run_tear_campaign(
        points: int = 100,
        transactions: int = 12,
        seed: typing.Union[int, str] = DEFAULT_SEED,
        layers: typing.Sequence[str] = LAYERS,
        max_cycles: int = 200_000,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2,
        cell_wall_seconds: typing.Optional[float] = None,
        governor_study: bool = True,
        workers: int = 1) -> TearCampaignResult:
    """Sweep seeded tear points across the journal workload per layer.

    Per layer, a tear-free baseline run spans the grid; *points*
    seeded tear cycles inside that span then each get the full
    tear / cold-boot / recover / verify treatment.  With
    *journal_path* every finished cell is checkpointed (JSONL);
    *resume* replays journaled cells byte-identically.

    *workers* > 1 shards each phase over a process pool: first the
    per-layer baselines (the tear grids depend on their cycle spans),
    then the whole tear grid across layers, then the governor arms.
    Cells are independently seeded and the supervisor journals them in
    grid order, so journal, resume and report are byte-identical to a
    ``workers=1`` run.
    """
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    if transactions < 1:
        raise ValueError(
            f"transactions must be >= 1, got {transactions}")
    for layer in layers:
        if layer not in LAYERS:
            raise ValueError(f"unknown layer {layer!r}; "
                             f"expected one of {LAYERS}")
    _JournalWorkload(seed, transactions)  # bounds-check the layout
    supervisor = CampaignSupervisor(
        "tear_campaign", seed, journal_path=journal_path,
        resume=resume, max_attempts=max_attempts,
        cell_wall_seconds=cell_wall_seconds)
    table = characterization().table
    baselines: typing.Dict[str, dict] = {}
    cells: typing.List[TearCell] = []
    # phase 1: the tear-free baselines — the tear grids need their
    # cycle spans, so they run (possibly in parallel) before any tear
    baseline_specs = [
        ({"layer": layer, "phase": "baseline"}, _run_baseline,
         (layer, seed, transactions, table, max_cycles,
          supervisor.cell_wall_seconds))
        for layer in layers]
    for layer, outcome in zip(
            layers, supervisor.run_cells(baseline_specs,
                                         workers=workers)):
        if not outcome.ok:
            raise RuntimeError(
                f"{layer} baseline failed: {outcome.error}")
        baselines[layer] = outcome.payload
    # phase 2: the tear grid — span the whole discipline: every cycle
    # of a layer's baseline run is a candidate tear point
    tear_specs = []
    for layer in layers:
        schedule = tear_schedule(f"{seed}/{layer}", points,
                                 max_cycle=baselines[layer]["cycles"])
        for index, tear_cycle in enumerate(schedule):
            tear_specs.append(
                ({"layer": layer, "phase": "tear",
                  "index": index, "tear_cycle": tear_cycle},
                 _run_tear_cell,
                 (layer, tear_cycle, seed, transactions, table,
                  max_cycles, supervisor.cell_wall_seconds)))
    for (params, _, _), cell_outcome in zip(
            tear_specs, supervisor.run_cells(tear_specs,
                                             workers=workers)):
        if cell_outcome.ok:
            cells.append(TearCell(**cell_outcome.payload))
        else:
            cells.append(TearCell(
                layer=params["layer"],
                tear_cycle=params["tear_cycle"], torn=False,
                transactions=transactions, applied=0,
                committed_at_tear=False, replayed=False,
                recovery_cycles=0, recovery_energy_pj=0.0,
                consistent=False, status="degraded",
                error=cell_outcome.error))
    governor_cells: typing.List[GovernorCell] = []
    if governor_study:
        governor_specs = [
            ({"phase": "governor", "governed": governed},
             _run_governor_cell,
             (governed, seed, transactions, table, max_cycles,
              supervisor.cell_wall_seconds))
            for governed in (False, True)]
        for (params, _, _), outcome in zip(
                governor_specs,
                supervisor.run_cells(governor_specs, workers=workers)):
            if outcome.ok:
                governor_cells.append(GovernorCell(**outcome.payload))
            else:
                governor_cells.append(GovernorCell(
                    governed=params["governed"], completed=False,
                    cycles=0, brownouts=0, deferrals=0, drained_pj=0.0,
                    status="degraded", error=outcome.error))
    return TearCampaignResult(
        seed=seed, points=points, transactions=transactions,
        layers=tuple(layers), baselines=baselines, cells=cells,
        governor=governor_cells)
