"""Fabric campaign: flat vs bridged topology under APDU traffic.

The routable fabric (:mod:`repro.fabric`) makes three claims:

* **routing is transparent** — the same APDU firmware traffic runs
  unmodified whether the peripherals sit on the CPU bus or behind a
  bridge, on every abstraction layer (1, 2 and 3),
* **the flat default is the legacy card** — a platform built from the
  explicit flat topology is byte-identical (cycle counts *and* probe
  energy, bit for bit) to the historical single-bus construction,
* **per-link energy books telescope** — every picojoule lands in a
  named per-link bucket (segment wires, bridge logic, arbitration,
  peripheral ledgers) and the buckets sum *exactly* to the composite
  probe total.

This campaign pins all three behind a seeded topology x layer grid.
Every timed cell runs a DMA engine alongside the CPU (multi-master
contention at the root arbiter, with the CPU's peripheral traffic
crossing the bridge in the bridged arm) and demands zero transaction
errors, drained posted queues, and balanced books.  The bridged arm
must demonstrably cross its bridge and pay for it in cycles.

Deterministic in (seed, grid): journaled rows replay byte-identically
under ``--resume`` and ``workers > 1`` shards the grid with identical
results.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.ec import data_read, data_write
from repro.fabric import Topology, build_fabric
from repro.power import Layer1PowerModel, Layer2PowerModel
from repro.soc import DMA_BASE, RAM_BASE, UART_BASE, SmartCardPlatform
from repro.soc.dma import CTRL, CTRL_BURST, CTRL_START, DST, LEN, SRC
from repro.tlm.master import PipelinedMaster, normalise_script, run_script
from repro.workloads.apdu import apdu_session

from .common import characterization
from .robustness import DEFAULT_SEED
from .supervisor import CampaignSupervisor

TOPOLOGIES = ("flat", "bridged")
FABRIC_LAYERS = ("layer1", "layer2", "layer3")

#: RAM staging windows of the campaign's DMA descriptor (outside the
#: address ranges the APDU expanders touch)
_DMA_SRC = RAM_BASE + 0x600
_DMA_DST = RAM_BASE + 0x700
_DMA_WORDS = 8


@dataclasses.dataclass
class FabricCell:
    """One (topology, layer) arm of the grid."""

    topology: str
    layer: str
    cycles: int
    transactions: int
    errors: int
    dma_words: int
    cpu_grants: int
    dma_grants: int
    bridge_crossings: int
    posted_errors: int
    probe_total_pj: float
    buckets: typing.Dict[str, float]
    balanced: bool
    imbalance_pj: float
    #: summed in-flight latency of the transactions that target the
    #: peripheral segment — the traffic that crosses the bridge in the
    #: bridged arm (posted writes can *shorten* root-bus contention,
    #: so whole-workload cycle counts cannot isolate the crossing)
    periph_cycles: int = 0
    #: flat arms only: explicit-flat-topology platform byte-identical
    #: to the legacy default construction (None on bridged arms)
    flat_identity: typing.Optional[bool] = None
    status: str = "ok"
    error: typing.Optional[str] = None


@dataclasses.dataclass
class FabricCampaignResult:
    seed: typing.Union[int, str]
    topologies: typing.Tuple[str, ...]
    layers: typing.Tuple[str, ...]
    commands: int
    cells: typing.List[FabricCell]

    @property
    def all_cells_ok(self) -> bool:
        return all(cell.status == "ok" for cell in self.cells)

    @property
    def books_balanced(self) -> bool:
        """Every cell's per-link buckets telescope exactly into the
        composite probe total — the fabric's attribution invariant."""
        return all(cell.balanced for cell in self.cells
                   if cell.status == "ok")

    @property
    def no_errors(self) -> bool:
        return all(cell.errors == 0 and cell.posted_errors == 0
                   for cell in self.cells if cell.status == "ok")

    @property
    def bridged_arm_crossed(self) -> bool:
        """Every bridged cell routed traffic through its bridge, and
        the timed bridged cells granted both masters at the arbiter."""
        bridged = [cell for cell in self.cells
                   if cell.status == "ok" and cell.topology == "bridged"]
        if not bridged:
            return True
        for cell in bridged:
            if cell.bridge_crossings == 0:
                return False
            if cell.layer != "layer3" and (cell.cpu_grants == 0
                                           or cell.dma_grants == 0):
                return False
        return True

    @property
    def flat_is_legacy(self) -> bool:
        """The explicit flat topology reproduces the legacy default
        single-bus platform byte-identically (cycles and energy)."""
        return all(cell.flat_identity is not False for cell in self.cells
                   if cell.status == "ok")

    @property
    def bridge_costs_cycles(self) -> bool:
        """On the timed layers, the bridged arm pays for its crossing:
        same workload, and the transactions that route across the
        bridge spend strictly more cycles in flight than they do on
        the flat bus.  (Whole-workload cycles are deliberately not
        compared: posted writes release the root bus early, which can
        *speed up* unrelated traffic and mask the crossing cost.)"""
        by_key = {(cell.topology, cell.layer): cell
                  for cell in self.cells if cell.status == "ok"}
        for layer in ("layer1", "layer2"):
            flat = by_key.get(("flat", layer))
            bridged = by_key.get(("bridged", layer))
            if flat is not None and bridged is not None \
                    and bridged.periph_cycles <= flat.periph_cycles:
                return False
        return True

    @property
    def passed(self) -> bool:
        return (self.all_cells_ok and self.books_balanced
                and self.no_errors and self.bridged_arm_crossed
                and self.flat_is_legacy and self.bridge_costs_cycles)

    def format(self) -> str:
        lines = [
            f"fabric campaign (seed={self.seed!r}, "
            f"{'/'.join(self.topologies)} x {'/'.join(self.layers)}, "
            f"{self.commands} APDU commands + DMA):",
            f"{'topology':<9}{'layer':<8}{'cycles':>8}{'periph':>7}"
            f"{'txns':>6}{'err':>4}{'dma':>4}{'grants c/d':>11}"
            f"{'cross':>6}{'total pJ':>11}{'books':>6}",
        ]
        for cell in self.cells:
            if cell.status != "ok":
                lines.append(f"{cell.topology:<9}{cell.layer:<8}"
                             f" DEGRADED: {cell.error}")
                continue
            lines.append(
                f"{cell.topology:<9}{cell.layer:<8}{cell.cycles:>8}"
                f"{cell.periph_cycles:>7}"
                f"{cell.transactions:>6}{cell.errors:>4}"
                f"{cell.dma_words:>4}"
                f"{cell.cpu_grants:>6}/{cell.dma_grants:<4}"
                f"{cell.bridge_crossings:>6}"
                f"{cell.probe_total_pj:>11.1f}"
                f"{'  ok' if cell.balanced else ' LEAK':>6}")
        checks = [
            ("all cells ran", self.all_cells_ok),
            ("per-link books telescope to the probe total",
             self.books_balanced),
            ("zero transaction / posted-write errors", self.no_errors),
            ("bridged arm crossed the bridge under contention",
             self.bridged_arm_crossed),
            ("flat topology byte-identical to the legacy card",
             self.flat_is_legacy),
            ("bridge crossing costs cycles on the timed layers",
             self.bridge_costs_cycles),
        ]
        for label, good in checks:
            lines.append(f"  [{'pass' if good else 'FAIL'}] {label}")
        lines.append("verdict: "
                     + ("per-link energy books telescope to the "
                        "probe total" if self.passed else "FAILED"))
        return "\n".join(lines)


def _campaign_topology(topology: str, layer: str) -> Topology:
    """The topology of one arm.  The timed arms arbitrate the root
    segment (CPU vs DMA); layer 3 is untimed, hence un-arbitrated."""
    arbiter = None if layer == "layer3" else "priority_rr"
    if topology == "flat":
        return Topology.flat(arbiter=arbiter)
    return Topology.two_segment(arbiter=arbiter)


def _session_script(seed_string: str, commands: int) -> list:
    return apdu_session(random.Random(seed_string), commands).script


def _periph_probe() -> typing.List:
    """Deterministic peripheral touches appended to every arm: short
    seeded sessions may never draw a peripheral access, and an arm
    with zero cross-bridge traffic proves nothing about the bridge."""
    return [data_write(UART_BASE, [0x55AA_55AA]),
            data_read(UART_BASE + 4),   # UART status
            data_read(UART_BASE)]       # UART data (loopback drain)


def _dma_descriptor(rng: random.Random) -> typing.List:
    """Bus script programming one burst RAM-to-RAM DMA move."""
    payload = [rng.getrandbits(32) for _ in range(_DMA_WORDS)]
    script = [data_write(_DMA_SRC, payload[:4]),
              data_write(_DMA_SRC + 16, payload[4:])]
    for offset, value in ((SRC, _DMA_SRC), (DST, _DMA_DST),
                          (LEN, _DMA_WORDS),
                          (CTRL, CTRL_START | CTRL_BURST)):
        script.append(data_write(DMA_BASE + 4 * offset, [value]))
    return script


def _timed_platform(topology: str, layer: str, table):
    model_cls = Layer1PowerModel if layer == "layer1" else Layer2PowerModel
    return SmartCardPlatform(
        bus_layer=1 if layer == "layer1" else 2,
        power_model=model_cls(table),
        topology=_campaign_topology(topology, layer),
        power_model_factory=lambda segment: model_cls(table),
        with_dma=True)


def _drain(platform, limit: int = 4000) -> None:
    """Run until the DMA, every segment bus and every posted queue is
    quiet — the books are only comparable on a quiescent fabric."""
    for _ in range(limit):
        quiet = (not platform.dma.busy
                 and platform.fabric.posted_writes_pending == 0
                 and all(not segment.bus.busy
                         for segment in platform.fabric.segments.values()))
        if quiet:
            return
        platform.run_cycles(1)
    raise RuntimeError(
        f"fabric did not drain within {limit} cycles (dma busy: "
        f"{platform.dma.busy}, posted: "
        f"{platform.fabric.posted_writes_pending})")


def _bridge_crossings(fabric) -> typing.Tuple[int, int]:
    crossings = sum(bridge.forwarded_reads + bridge.forwarded_writes
                    + bridge.messages_forwarded
                    for bridge in fabric.bridges.values())
    posted_errors = sum(bridge.posted_errors
                        for bridge in fabric.bridges.values())
    return crossings, posted_errors


def _flat_identity(layer: str, seed, commands: int, table,
                   max_cycles: int) -> bool:
    """Build the same card twice — legacy default vs explicit flat
    topology — run the same session, demand bitwise-equal results."""
    results = []
    for topology in (None, Topology.flat()):
        model_cls = (Layer1PowerModel if layer == "layer1"
                     else Layer2PowerModel)
        platform = SmartCardPlatform(
            bus_layer=1 if layer == "layer1" else 2,
            power_model=model_cls(table), topology=topology)
        script = _session_script(f"{seed}/identity/{layer}", commands)
        master = PipelinedMaster(platform.simulator, platform.clock,
                                 platform.cpu_interface, script,
                                 name="cpu")
        cycles = run_script(platform.simulator, master, max_cycles,
                            platform.clock)
        report = platform.energy_report()
        results.append((cycles, len(master.completed),
                        report.probe_total_pj, report.balanced))
    return results[0] == results[1]


def _run_fabric_cell(topology: str, layer: str, seed, commands: int,
                     table, max_cycles: int,
                     check_identity: bool = True) -> dict:
    # the workload seed deliberately excludes the topology: the flat
    # and bridged arms of one layer replay the *same* traffic, so
    # their cycle counts isolate the cost of the bridge crossing
    rng = random.Random(f"{seed}/dma/{layer}")
    if layer == "layer3":
        return _run_layer3_cell(topology, rng, seed, commands)
    platform = _timed_platform(topology, layer, table)
    script = (_dma_descriptor(rng)
              + _session_script(f"{seed}/session/{layer}", commands)
              + _periph_probe())
    master = PipelinedMaster(platform.simulator, platform.clock,
                             platform.cpu_interface, script, name="cpu")
    run_script(platform.simulator, master, max_cycles, platform.clock)
    _drain(platform)
    # summed in-flight latency: end-to-end wall time hides the bridge
    # (crossings absorb into the script's inter-command gaps), but the
    # cycles each transaction spends on the bus cannot lie
    busy_cycles = sum(t.latency_cycles or 0 for t in master.completed)
    periph_cycles = sum(t.latency_cycles or 0 for t in master.completed
                        if UART_BASE <= t.address < DMA_BASE)
    report = platform.energy_report()
    arbiter = platform.fabric.root.arbiter
    grants = {port.name: port.grants for port in arbiter.ports}
    crossings, posted_errors = _bridge_crossings(platform.fabric)
    identity = (None if topology != "flat" or not check_identity
                else _flat_identity(layer, seed, commands, table,
                                    max_cycles))
    return {
        "topology": topology, "layer": layer,
        "cycles": busy_cycles,  # summed per-transaction bus occupancy
        "periph_cycles": periph_cycles,
        "transactions": len(master.completed),
        "errors": len(master.errors),
        "dma_words": platform.dma.words_moved,
        "cpu_grants": grants.get("cpu", 0),
        "dma_grants": grants.get("dma", 0),
        "bridge_crossings": crossings,
        "posted_errors": posted_errors,
        "probe_total_pj": report.probe_total_pj,
        "buckets": dict(report.buckets),
        "balanced": report.balanced,
        "imbalance_pj": report.imbalance_pj,
        "flat_identity": identity,
    }


def _run_layer3_cell(topology: str, rng: random.Random, seed,
                     commands: int) -> dict:
    """The untimed arm: same traffic, synchronous routing, energy from
    the peripheral + bridge ledgers only (layer 3 prices no wires)."""
    platform = SmartCardPlatform(bus_layer=1)  # slave farm only
    named = {"rom": platform.rom, "flash": platform.flash,
             "eeprom": platform.eeprom, "ram": platform.ram,
             "uart": platform.uart, "timers": platform.timers,
             "trng": platform.rng, "intc": platform.intc}
    fabric = build_fabric(_campaign_topology(topology, "layer3"),
                          named, bus_layer=3)
    script = (_session_script(f"{seed}/session/layer3", commands)
              + _periph_probe())
    errors = completed = 0
    for _, transaction in normalise_script(script):
        state = fabric.root_bus.issue(transaction)
        if not state.finished:
            raise RuntimeError(
                f"layer-3 transaction did not complete synchronously: "
                f"{transaction}")
        completed += 1
        if transaction.error:
            errors += 1
    report = fabric.energy_report(platform.energy_ledgers())
    crossings, posted_errors = _bridge_crossings(fabric)
    return {
        "topology": topology, "layer": "layer3",
        "cycles": 0, "transactions": completed, "errors": errors,
        "dma_words": 0, "cpu_grants": 0, "dma_grants": 0,
        "bridge_crossings": crossings, "posted_errors": posted_errors,
        "probe_total_pj": report.probe_total_pj,
        "buckets": dict(report.buckets),
        "balanced": report.balanced,
        "imbalance_pj": report.imbalance_pj,
        "flat_identity": None,
    }


def run_fabric_campaign(
        topologies: typing.Sequence[str] = TOPOLOGIES,
        layers: typing.Sequence[str] = FABRIC_LAYERS,
        commands: int = 8,
        seed: typing.Union[int, str] = DEFAULT_SEED,
        max_cycles: int = 300_000,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2,
        cell_wall_seconds: typing.Optional[float] = None,
        workers: int = 1) -> FabricCampaignResult:
    """Run the fabric grid: topologies x abstraction layers.

    Each timed cell replays a seeded APDU session plus a DMA burst
    move through a fresh platform and checks routing, contention and
    exact per-link energy telescoping.  With *journal_path* every
    finished cell is checkpointed (JSONL); *resume* replays journaled
    cells byte-identically; *workers* > 1 shards the grid over a
    process pool with identical results.
    """
    if commands < 1:
        raise ValueError(f"commands must be >= 1, got {commands}")
    for topology in topologies:
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {topology!r}; expected "
                             f"one of {TOPOLOGIES}")
    for layer in layers:
        if layer not in FABRIC_LAYERS:
            raise ValueError(f"unknown layer {layer!r}; expected one "
                             f"of {FABRIC_LAYERS}")
    table = characterization().table
    supervisor = CampaignSupervisor(
        "fabric_campaign", seed, journal_path=journal_path,
        resume=resume, max_attempts=max_attempts,
        cell_wall_seconds=cell_wall_seconds)
    specs = []
    for topology in topologies:
        for layer in layers:
            specs.append((
                {"topology": topology, "layer": layer},
                _run_fabric_cell,
                (topology, layer, seed, commands, table, max_cycles)))
    cells: typing.List[FabricCell] = []
    for (params, _, _), outcome in zip(
            specs, supervisor.run_cells(specs, workers=workers)):
        if outcome.ok:
            cells.append(FabricCell(**outcome.payload))
        else:
            cells.append(FabricCell(
                topology=params["topology"], layer=params["layer"],
                cycles=0, transactions=0, errors=0, dma_words=0,
                cpu_grants=0, dma_grants=0, bridge_crossings=0,
                posted_errors=0, probe_total_pj=0.0, buckets={},
                balanced=False, imbalance_pj=0.0, flat_identity=None,
                status="degraded", error=outcome.error))
    return FabricCampaignResult(
        seed=seed, topologies=tuple(topologies), layers=tuple(layers),
        commands=commands, cells=cells)
