"""Shared machinery for the paper-reproduction experiments.

Provides the §4.1 verification/evaluation flow:

1. execute an assembly test program on the layer-1 platform with the
   MIPS core and trace the bus transactions,
2. replay the trace on the gate-level bus, the layer-1 bus and the
   layer-2 bus,
3. compare cycle counts (Table 1), energies (Table 2) and simulation
   speed (Table 3).
"""

from __future__ import annotations

import dataclasses
import functools
import time
import typing

from repro.ec import MemoryMap
from repro.kernel import Clock, Simulator
from repro.power import Layer1PowerModel, Layer2PowerModel
from repro.power.characterize import (CharacterizationResult,
                                      default_characterization)
from repro.power.diesel import DieselEstimator, InterfaceActivityLog
from repro.power.table import CharacterizationTable
from repro.rtl import RtlBus
from repro.soc.smartcard import SmartCardPlatform
from repro.tlm import EcBusLayer1, EcBusLayer2, PipelinedMaster, run_script
from repro.workloads import BusTrace

CLOCK_PERIOD = 100


@dataclasses.dataclass
class RunResult:
    """Outcome of one model run over one script."""

    model: str
    cycles: int
    transactions: int
    wall_seconds: float
    energy_pj: typing.Optional[float] = None

    @property
    def transactions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.transactions / self.wall_seconds


@functools.lru_cache(maxsize=1)
def characterization() -> CharacterizationResult:
    """The shared characterisation run (cached per process)."""
    return default_characterization()


def fresh_memory_map() -> MemoryMap:
    """A fresh Figure-1 memory map with fresh slave state."""
    return SmartCardPlatform(bus_layer=1).memory_map


def _bind_dynamic_slaves(memory_map: MemoryMap, bus) -> None:
    for region in memory_map.regions:
        if hasattr(region.slave, "bind_cycle_source"):
            region.slave.bind_cycle_source(lambda: bus.cycle)


def run_on_layer(layer: int, script, table: typing.Optional[
        CharacterizationTable] = None,
        max_cycles: int = 2_000_000) -> RunResult:
    """Replay *script* on a TLM layer, optionally with energy model."""
    simulator = Simulator(f"layer{layer}")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = fresh_memory_map()
    power_model = None
    if table is not None:
        power_model = (Layer1PowerModel(table) if layer == 1
                       else Layer2PowerModel(table))
    bus_class = EcBusLayer1 if layer == 1 else EcBusLayer2
    bus = bus_class(simulator, clock, memory_map, power_model=power_model)
    _bind_dynamic_slaves(memory_map, bus)
    master = PipelinedMaster(simulator, clock, bus, script)
    started = time.perf_counter()
    run_script(simulator, master, max_cycles, clock)
    wall = time.perf_counter() - started
    cycles = _busy_cycles(master)
    energy = None
    if power_model is not None:
        if layer == 2:
            power_model.account_cycles(bus.cycle)
        energy = power_model.total_energy_pj
    return RunResult(f"layer{layer}", cycles, len(master.completed),
                     wall, energy)


def run_on_rtl(script, estimate_power: bool = True,
               max_cycles: int = 2_000_000) -> RunResult:
    """Replay *script* on the gate-level reference (+ Diesel)."""
    simulator = Simulator("rtl")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = fresh_memory_map()
    activity = InterfaceActivityLog() if estimate_power else None
    bus = RtlBus(simulator, clock, memory_map, activity_log=activity)
    _bind_dynamic_slaves(memory_map, bus)
    master = PipelinedMaster(simulator, clock, bus, script)
    started = time.perf_counter()
    run_script(simulator, master, max_cycles, clock)
    wall = time.perf_counter() - started
    energy = None
    if estimate_power:
        report = DieselEstimator().estimate(
            activity, netlists=[bus.decoder.netlist],
            control_register_toggles=bus.control_register_toggles,
            control_flop_count=bus.control_flop_count,
            cycles=bus.cycle)
        energy = report.total_energy_pj
    return RunResult("gate-level", _busy_cycles(master),
                     len(master.completed), wall, energy)


def _busy_cycles(master) -> int:
    """Cycle span from first issue to last completion, inclusive."""
    issued = [t.issue_cycle for t in master.completed
              if t.issue_cycle is not None]
    done = [t.data_done_cycle for t in master.completed
            if t.data_done_cycle is not None]
    if not issued or not done:
        return 0
    return max(done) - min(issued) + 1


#: The §4.1 assembly test program: a smart card "transaction": read a
#: record from EEPROM into RAM, checksum it, update a counter record
#: in EEPROM (triggering programming-busy windows), then log a byte
#: stream to the UART — a realistic mix of fetch bursts, RAM traffic
#: and slow EEPROM accesses.
TEST_PROGRAM = """
        lui   $s0, 0x0030          # RAM
        lui   $s1, 0x0020          # EEPROM
        lui   $s2, 0x0040          # UART

        # seed a record in EEPROM (8 words)
        addiu $t0, $zero, 0
        addiu $t1, $zero, 8
seed:   sll   $t2, $t0, 10
        xori  $t2, $t2, 0x2BAD
        sll   $t3, $t0, 2
        addu  $t3, $t3, $s1
        sw    $t2, 0($t3)
        addiu $t0, $t0, 1
        bne   $t0, $t1, seed

        # copy the record EEPROM -> RAM, accumulating a checksum
        addiu $t0, $zero, 0
        addiu $t4, $zero, 0
copy:   sll   $t3, $t0, 2
        addu  $t5, $t3, $s1
        lw    $t2, 0($t5)
        addu  $t6, $t3, $s0
        sw    $t2, 0($t6)
        addu  $t4, $t4, $t2
        addiu $t0, $t0, 1
        bne   $t0, $t1, copy

        # store checksum and bump the update counter in EEPROM
        sw    $t4, 64($s1)
        lw    $t7, 68($s1)
        addiu $t7, $t7, 1
        sw    $t7, 68($s1)

        # enable the UART and log four checksum bytes
        addiu $t0, $zero, 1
        sw    $t0, 8($s2)
        addiu $t0, $zero, 0
        addiu $t1, $zero, 4
log:    andi  $t2, $t4, 0xFF
        sw    $t2, 0($s2)
        srl   $t4, $t4, 8
        addiu $t0, $t0, 1
        bne   $t0, $t1, log

        # drain: spin while the UART shifts the bytes out
        addiu $t2, $zero, 80
spin:   addiu $t2, $t2, -1
        bne   $t2, $zero, spin

        # commit burst: four posted stores straight into EEPROM (the
        # write budget fills) followed by immediate read-back — the
        # programming-busy window makes wait states change between
        # request creation and service, the one situation where the
        # layer-2 snapshot is stale
        addiu $t0, $zero, 4
commit: sll   $t3, $t0, 2
        addu  $t3, $t3, $s1
        sw    $t7, 256($t3)
        addiu $t0, $t0, -1
        bne   $t0, $zero, commit
        lw    $t8, 260($s1)
        lw    $t8, 264($s1)
        lw    $t8, 268($s1)

        halt
"""


@functools.lru_cache(maxsize=1)
def test_program_trace() -> BusTrace:
    """Execute the §4.1 test program and capture its bus trace."""
    platform = SmartCardPlatform(bus_layer=1, with_cpu=True)
    platform.bus.enable_tracing()
    platform.load_assembly(TEST_PROGRAM)
    platform.cpu.run_to_halt(200_000)
    if platform.cpu.fault:
        raise RuntimeError(f"test program faulted: {platform.cpu.fault}")
    finished = [t for t in platform.bus.trace_log if t.finished]
    return BusTrace.from_completed(finished)


def evaluation_script() -> list:
    """The Table-1/Table-2 evaluation workload.

    Two back-to-back runs of the traced §4.1 test program (two card
    transactions) followed by an EEPROM programming-contention
    epilogue: a record write whose programming-busy window is still
    open when the subsequent reads are *created* but already closed
    when they are *serviced* — the one situation where the layer-2
    wait-state snapshot (§3.2) mis-times the bus.
    """
    from repro.ec import data_read, data_write
    from repro.soc.smartcard import EEPROM_BASE, RAM_BASE

    trace = test_program_trace()
    script = trace.to_script()
    second = trace.to_script()
    gap, first = second[0]
    second[0] = (gap + 20, first)
    script += second
    script += [
        data_write(EEPROM_BASE + 0x400, [0x5A5A0001]),
        (10, data_read(EEPROM_BASE + 0x404)),
        data_read(EEPROM_BASE + 0x408),
        data_read(RAM_BASE + 0x40),
    ]
    return script


def percent_error(value: float, reference: float) -> float:
    """Signed percentage error of *value* against *reference*."""
    if reference == 0:
        raise ZeroDivisionError("reference value is zero")
    return 100.0 * (value - reference) / reference
