"""Machine-readable export of the reproduced results.

``write_csv_reports`` regenerates every table/figure and writes one
CSV per artefact, so downstream tooling (plots, regression dashboards,
the paper-vs-repro comparison in EXPERIMENTS.md) can consume the
numbers without scraping text tables.
"""

from __future__ import annotations

import csv
import pathlib
import typing

from .casestudy import run_casestudy
from .figure6 import run_figure6
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3


def _write(path: pathlib.Path, header: typing.Sequence[str],
           rows: typing.Iterable[typing.Sequence]) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_table1(directory: pathlib.Path) -> pathlib.Path:
    result = run_table1()
    path = directory / "table1_timing.csv"
    _write(path,
           ["abstraction_level", "cycles", "cycles_relative_percent",
            "error_percent"],
           [(row.abstraction_level, row.cycles,
             f"{row.cycles_relative:.4f}",
             "" if row.error_percent is None
             else f"{row.error_percent:.4f}")
            for row in result.rows])
    return path


def export_table2(directory: pathlib.Path) -> pathlib.Path:
    result = run_table2()
    path = directory / "table2_energy.csv"
    _write(path,
           ["abstraction_level", "energy_pj", "energy_relative",
            "error_percent"],
           [(row.abstraction_level, f"{row.energy_pj:.4f}",
             f"{row.energy_relative:.4f}",
             "" if row.error_percent is None
             else f"{row.error_percent:.4f}")
            for row in result.rows])
    return path


def export_table3(directory: pathlib.Path,
                  transactions: int = 1_000) -> pathlib.Path:
    result = run_table3(transactions=transactions)
    path = directory / "table3_performance.csv"
    _write(path,
           ["model", "with_estimation_kts", "with_estimation_factor",
            "without_estimation_kts", "without_estimation_factor"],
           [(row.model, f"{row.with_estimation_kts:.3f}",
             f"{row.with_estimation_factor:.3f}",
             f"{row.without_estimation_kts:.3f}",
             f"{row.without_estimation_factor:.3f}")
            for row in result.rows])
    return path


def export_figure6(directory: pathlib.Path) -> pathlib.Path:
    result = run_figure6()
    path = directory / "figure6_sampling.csv"
    rows = []
    labels = [str(cycle) for cycle in result.sample_cycles] + ["final"]
    for label, layer2, layer1 in zip(labels, result.layer2_samples_pj,
                                     result.layer1_window_pj):
        rows.append((label, f"{layer2:.4f}", f"{layer1:.4f}"))
    _write(path, ["sample_cycle", "layer2_pj", "layer1_pj"], rows)
    return path


def export_casestudy(directory: pathlib.Path) -> pathlib.Path:
    result = run_casestudy()
    path = directory / "casestudy_exploration.csv"
    _write(path,
           ["configuration", "layout", "stack_base", "access_pattern",
            "bus_cycles", "bus_energy_pj", "bus_transactions",
            "results_correct"],
           [(row.config.name, row.config.layout.value,
             f"{row.config.stack_base:#x}",
             row.config.access_pattern.name,
             row.bus_cycles, f"{row.bus_energy_pj:.4f}",
             row.bus_transactions, int(row.results_correct))
            for row in result.exploration.rows])
    return path


def write_csv_reports(directory,
                      transactions: int = 1_000
                      ) -> typing.List[pathlib.Path]:
    """Regenerate every artefact and write one CSV each."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        export_table1(directory),
        export_table2(directory),
        export_table3(directory, transactions),
        export_figure6(directory),
        export_casestudy(directory),
    ]
