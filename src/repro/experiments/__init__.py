"""Paper-reproduction experiments: one module per table/figure.

* :mod:`repro.experiments.table1` — timing accuracy,
* :mod:`repro.experiments.table2` — energy estimation accuracy,
* :mod:`repro.experiments.table3` — simulation performance,
* :mod:`repro.experiments.figure6` — energy sampling profile,
* :mod:`repro.experiments.casestudy` — §4.3 HW/SW interface
  exploration,
* :mod:`repro.experiments.coprocessor` — the §1 coprocessor HW/SW
  interface study (extension),
* :mod:`repro.experiments.report` — everything at once.
"""

from .bench import run_bench
from .bus_sweep import BusSweepResult, run_bus_sweep
from .casestudy import CaseStudyResult, run_casestudy
from .chaos_campaign import (ChaosCampaignResult, ChaosCell, ShrinkCell,
                             run_chaos_campaign)
from .coprocessor import CoprocessorStudyResult, run_coprocessor_study
from .common import (RunResult, characterization, evaluation_script,
                     percent_error, run_on_layer, run_on_rtl,
                     test_program_trace)
from .export import write_csv_reports
from .dpm_campaign import (DpmCampaignResult, DpmCell, EmergencyCell,
                           run_dpm_campaign)
from .fabric_campaign import (FabricCampaignResult, FabricCell,
                              run_fabric_campaign)
from .fault_campaign import (CampaignCell, FaultCampaignResult,
                             run_fault_campaign)
from .figure6 import Figure6Result, run_figure6
from .link_campaign import (LinkCampaignResult, LinkCell,
                            run_link_campaign)
from .report import full_report
from .robustness import RobustnessResult, run_robustness
from .supervisor import (CampaignSupervisor, CellOutcome,
                         CheckpointJournal, cell_key)
from .table1 import Table1Result, run_table1
from .tear_campaign import (GovernorCell, TearCampaignResult, TearCell,
                            run_tear_campaign)
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3

__all__ = [
    "BusSweepResult",
    "CampaignCell",
    "CampaignSupervisor",
    "CaseStudyResult",
    "CellOutcome",
    "ChaosCampaignResult",
    "ChaosCell",
    "CheckpointJournal",
    "CoprocessorStudyResult",
    "DpmCampaignResult",
    "DpmCell",
    "EmergencyCell",
    "FabricCampaignResult",
    "FabricCell",
    "FaultCampaignResult",
    "Figure6Result",
    "GovernorCell",
    "LinkCampaignResult",
    "LinkCell",
    "RobustnessResult",
    "RunResult",
    "ShrinkCell",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "TearCampaignResult",
    "TearCell",
    "cell_key",
    "characterization",
    "evaluation_script",
    "full_report",
    "percent_error",
    "run_bench",
    "run_bus_sweep",
    "run_casestudy",
    "run_chaos_campaign",
    "run_coprocessor_study",
    "run_dpm_campaign",
    "run_fabric_campaign",
    "run_fault_campaign",
    "run_figure6",
    "run_link_campaign",
    "run_on_layer",
    "run_on_rtl",
    "run_robustness",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_tear_campaign",
    "test_program_trace",
    "write_csv_reports",
]
