"""T=1 link campaign: does the link layer survive a noisy reader?

The link layer (:mod:`repro.link`) claims that every T=1 session over
the modelled UART either completes or degrades *cleanly*: bounded
retransmission, the RESYNC → IFS → ABORT ladder, no hangs, and every
picojoule the recovery machinery burns attributed to a named bucket.
This campaign puts a seeded grid behind that claim:

* **noise rates** — per-byte corruption probabilities of the
  :class:`~repro.link.NoisyChannel` (drops, bit flips, spurious bytes,
  jitter, truncated frames), including the clean 0.0 baseline,
* **bus layers** — layer 1 and layer 2, so recovery energy is priced
  by both estimation models,
* **DPM off/on** — with DPM on, the full power stack rides along
  (supply, domain, governor, per-peripheral PSMs) and the UART's
  clock-gated receiver genuinely loses wire bytes; the link layer must
  absorb those extra drops with the same machinery.

Each cell runs several sessions of seeded APDU command mixes on a
fresh platform.  The verdict demands: every session closes cleanly
(``complete`` or ``degraded``, retries within the session budget, and
the energy books balanced — clean + recovery == total), zero hangs
anywhere, and the noise-free/DPM-off baseline finishes with zero
retransmissions in either direction.

Deterministic in (seed, grid): channel faults, command mixes and
host think times all derive from per-session seed strings, so
journaled rows replay byte-identically under ``--resume`` and
``workers > 1`` shards the grid with identical results.
"""

from __future__ import annotations

import dataclasses
import random
import time
import typing

from repro.link import LinkParams, NoisyChannel, run_link_session
from repro.power import (CardPowerModel, DpmController, DpmGovernor,
                         FixedTimeoutPolicy, Layer1PowerModel,
                         Layer2PowerModel, PowerDomain, PowerSupply)
from repro.soc import SmartCardPlatform
from repro.workloads.apdu import COMMANDS

from .common import characterization
from .robustness import DEFAULT_SEED
from .supervisor import CampaignSupervisor

LAYERS = ("layer1", "layer2")
DPM_MODES = ("off", "on")

#: default per-byte corruption rates; 0.0 is the load-bearing baseline
#: (it must produce *zero* retransmissions, proving the link layer adds
#: no overhead when the wire is clean)
NOISE_RATES = (0.0, 0.01, 0.03)

#: host think time between commands (cycles); the DPM arm thinks
#: longer so the governor actually gets to gate the UART between APDUs
BASE_THINK = (60, 160)
DPM_THINK = (180, 500)

#: DPM-arm governor: ``gate_after`` must exceed the UART's byte pace
#: (BAUD = 16 cycles/byte) or the governor re-gates the receiver
#: *between* the bytes of a frame and every other byte is lost on the
#: wire.  At 24 the receiver stays up across a frame and only the
#: leading byte after a think gap is sacrificed to wake the card.
DPM_POLICY = dict(gate_after=24, sleep_after=300)

#: DPM-arm supply: generous enough never to brown out — this campaign
#: measures link-layer robustness under gating, not charge starvation
#: (the DPM campaign owns that axis).  ``power_loss_nj=0`` keeps every
#: session alive to its verdict.
DPM_SUPPLY = dict(capacity_nj=80.0, harvest_pj_per_cycle=6.0,
                  brownout_nj=1.0, power_loss_nj=0.0)


@dataclasses.dataclass
class LinkCell:
    """One (layer, noise, dpm) arm: *sessions* T=1 sessions."""

    layer: str
    noise: float
    dpm: str
    sessions: int
    completed: int
    degraded: int
    hung: int
    commands_total: int
    commands_completed: int
    commands_shed: int
    retries: int
    max_session_retries: int
    retry_budget: int
    host_retransmissions: int
    card_retransmissions: int
    retransmitted_bytes: int
    resyncs: int
    ifs_renegotiations: int
    wtx_grants: int
    aborts: int
    cwt_timeouts: int
    bwt_timeouts: int
    rx_overruns: int
    rx_dropped_gated: int
    channel_events: int
    cycles: int
    energy_pj: float
    clean_energy_pj: float
    recovery_pj: typing.Dict[str, float]
    max_unaccounted_pj: float
    all_accounted: bool
    all_clean: bool
    status: str = "ok"
    error: typing.Optional[str] = None

    @property
    def recovery_total_pj(self) -> float:
        return sum(self.recovery_pj.values())


@dataclasses.dataclass
class LinkCampaignResult:
    seed: typing.Union[int, str]
    noise_rates: typing.Tuple[float, ...]
    layers: typing.Tuple[str, ...]
    dpm_modes: typing.Tuple[str, ...]
    sessions: int
    commands: int
    cells: typing.List[LinkCell]

    @property
    def all_cells_ok(self) -> bool:
        return all(cell.status == "ok" for cell in self.cells)

    @property
    def no_hangs(self) -> bool:
        return all(cell.hung == 0 for cell in self.cells
                   if cell.status == "ok")

    @property
    def all_sessions_clean(self) -> bool:
        """Every session of every healthy cell closed cleanly: it
        completed or degraded (never hung), kept its retries within
        the session budget, and its energy books balanced."""
        return all(cell.all_clean for cell in self.cells
                   if cell.status == "ok")

    @property
    def baseline_quiet(self) -> bool:
        """The noise-free/DPM-off arms complete every session with
        zero retransmissions in either direction — the link layer is
        free when the wire is clean."""
        baseline = [cell for cell in self.cells
                    if cell.noise == 0.0 and cell.dpm == "off"]
        if not baseline:
            return True
        return all(cell.status == "ok"
                   and cell.completed == cell.sessions
                   and cell.host_retransmissions == 0
                   and cell.card_retransmissions == 0
                   and cell.retries == 0
                   for cell in baseline)

    @property
    def passed(self) -> bool:
        return (self.all_cells_ok and self.no_hangs
                and self.all_sessions_clean and self.baseline_quiet)

    def format(self) -> str:
        lines = [
            f"T=1 link campaign (seed={self.seed!r}, "
            f"{len(self.noise_rates)} noise rates x "
            f"{len(self.layers)} layers x DPM {'/'.join(self.dpm_modes)}"
            f", {self.sessions} sessions x {self.commands} commands):",
            f"{'layer':<8}{'noise':>6}{'dpm':>5}{'ok/dg/hg':>9}"
            f"{'cmds':>8}{'retry':>6}{'retx h/c':>9}{'rsync':>6}"
            f"{'abrt':>5}{'cwt':>5}{'bwt':>5}{'gated':>6}"
            f"{'recov pJ':>10}{'total nJ':>10}{'books':>6}",
        ]
        for cell in self.cells:
            if cell.status != "ok":
                lines.append(
                    f"{cell.layer:<8}{cell.noise:>6.3f}{cell.dpm:>5}"
                    f" DEGRADED: {cell.error}")
                continue
            lines.append(
                f"{cell.layer:<8}{cell.noise:>6.3f}{cell.dpm:>5}"
                f"{cell.completed:>3}/{cell.degraded:>2}/{cell.hung:>2}"
                f"{cell.commands_completed:>4}/{cell.commands_total:<3}"
                f"{cell.retries:>6}"
                f"{cell.host_retransmissions:>4}/"
                f"{cell.card_retransmissions:<4}"
                f"{cell.resyncs:>6}{cell.aborts:>5}"
                f"{cell.cwt_timeouts:>5}{cell.bwt_timeouts:>5}"
                f"{cell.rx_dropped_gated:>6}"
                f"{cell.recovery_total_pj:>10.1f}"
                f"{cell.energy_pj / 1e3:>10.3f}"
                f"{'  ok' if cell.all_accounted else ' LEAK':>6}")
        checks = [
            ("all cells ran", self.all_cells_ok),
            ("zero hangs", self.no_hangs),
            ("every session closed cleanly (books balanced, "
             "retries within budget)", self.all_sessions_clean),
            ("clean baseline retransmission-free", self.baseline_quiet),
        ]
        for label, good in checks:
            lines.append(f"  [{'pass' if good else 'FAIL'}] {label}")
        lines.append("verdict: "
                     + ("every session completes or degrades cleanly"
                        if self.passed else "FAILED"))
        return "\n".join(lines)


def _link_platform(layer: str, dpm: str, table):
    """A fresh platform for one session, with the energy probe and
    (for the DPM arm) the full power stack attached."""
    model = (Layer1PowerModel(table) if layer == "layer1"
             else Layer2PowerModel(table))
    platform = SmartCardPlatform(bus_layer=1 if layer == "layer1" else 2,
                                 power_model=model)
    composite = CardPowerModel(model, ledgers=platform.energy_ledgers())
    if dpm == "on":
        supply = PowerSupply(composite, **DPM_SUPPLY)
        PowerDomain(platform.simulator, platform.clock, platform.bus,
                    supply, halt_on_power_loss=False)
        governor = DpmGovernor(supply, table,
                               policy=FixedTimeoutPolicy(**DPM_POLICY))
        psms = platform.attach_dpm(governor)
        for psm in psms.values():
            composite.add_ledger(psm)
        DpmController(platform.simulator, platform.clock, governor)
    account = getattr(model, "account_cycles", None)

    def probe() -> float:
        # layer 2 accrues bus-clock energy lazily; bring the books up
        # to the current cycle before reading the total (PowerSupply
        # owns energy_since_last_call_pj — only ever read the total)
        if account is not None:
            account(platform.bus.cycle)
        return composite.total_energy_pj

    return platform, probe


def _merge_recovery(total: typing.Dict[str, float],
                    part: typing.Mapping[str, float]) -> None:
    for kind, pj in part.items():
        total[kind] = total.get(kind, 0.0) + pj


def _run_link_cell(layer: str, noise: float, dpm: str, seed,
                   sessions: int, commands: int, table,
                   max_cycles: int,
                   wall_seconds: typing.Optional[float]) -> dict:
    deadline = (time.monotonic() + wall_seconds
                if wall_seconds is not None else None)
    params = LinkParams()
    think = DPM_THINK if dpm == "on" else BASE_THINK
    outcomes = {"complete": 0, "degraded": 0, "hung": 0,
                "incomplete": 0}
    totals = dict(commands_total=0, commands_completed=0,
                  commands_shed=0, retries=0, host_retransmissions=0,
                  card_retransmissions=0, retransmitted_bytes=0,
                  resyncs=0, ifs_renegotiations=0, wtx_grants=0,
                  aborts=0, cwt_timeouts=0, bwt_timeouts=0,
                  rx_overruns=0, rx_dropped_gated=0, channel_events=0,
                  cycles=0)
    energy = clean = 0.0
    recovery: typing.Dict[str, float] = {}
    max_unaccounted = 0.0
    max_retries = 0
    all_accounted = all_clean = True
    for index in range(sessions):
        if deadline is not None and time.monotonic() > deadline:
            raise RuntimeError(
                f"cell wall budget exhausted after {index}/{sessions} "
                f"sessions")
        session_seed = f"{seed}/{layer}/n{noise}/d{dpm}/s{index}"
        mix_rng = random.Random(f"{session_seed}/mix")
        mix = ["select"] + [mix_rng.choice(COMMANDS[1:])
                            for _ in range(commands - 1)]
        channel = (NoisyChannel(noise, seed=f"{session_seed}/chan")
                   if noise > 0.0 else None)
        platform, probe = _link_platform(layer, dpm, table)
        report = run_link_session(
            platform, mix, params=params, seed=session_seed,
            channel=channel, energy_probe=probe,
            max_cycles=max_cycles, think_range=think)
        outcomes[report.outcome] = outcomes.get(report.outcome, 0) + 1
        totals["commands_total"] += report.commands_total
        totals["commands_completed"] += report.commands_completed
        totals["commands_shed"] += report.commands_shed
        totals["retries"] += report.session_retries
        totals["host_retransmissions"] += report.host_retransmissions
        totals["card_retransmissions"] += report.card_retransmissions
        totals["retransmitted_bytes"] += report.retransmitted_bytes
        totals["resyncs"] += report.resyncs
        totals["ifs_renegotiations"] += report.ifs_renegotiations
        totals["wtx_grants"] += report.wtx_grants
        totals["aborts"] += report.aborts
        totals["cwt_timeouts"] += report.cwt_timeouts
        totals["bwt_timeouts"] += report.bwt_timeouts
        totals["rx_overruns"] += report.uart_rx_overruns
        totals["rx_dropped_gated"] += report.uart_rx_dropped_gated
        totals["channel_events"] += sum(
            count for kind, count in report.channel_events.items()
            if kind != "bytes")
        totals["cycles"] += report.cycles
        energy += report.total_energy_pj
        clean += report.clean_energy_pj
        _merge_recovery(recovery, report.recovery_energy_pj)
        max_unaccounted = max(max_unaccounted,
                              abs(report.unaccounted_pj))
        max_retries = max(max_retries, report.session_retries)
        all_accounted = all_accounted and report.accounted
        all_clean = all_clean and report.clean_close
    return {
        "layer": layer, "noise": noise, "dpm": dpm,
        "sessions": sessions,
        "completed": outcomes["complete"],
        "degraded": outcomes["degraded"],
        "hung": outcomes["hung"] + outcomes["incomplete"],
        "max_session_retries": max_retries,
        "retry_budget": params.session_retry_budget,
        "energy_pj": energy, "clean_energy_pj": clean,
        "recovery_pj": recovery,
        "max_unaccounted_pj": max_unaccounted,
        "all_accounted": all_accounted, "all_clean": all_clean,
        **totals,
    }


def run_link_campaign(
        noise_rates: typing.Sequence[float] = NOISE_RATES,
        layers: typing.Sequence[str] = LAYERS,
        dpm_modes: typing.Sequence[str] = DPM_MODES,
        sessions: int = 4,
        commands: int = 6,
        seed: typing.Union[int, str] = DEFAULT_SEED,
        max_cycles: int = 400_000,
        journal_path: typing.Optional[str] = None,
        resume: bool = False,
        max_attempts: int = 2,
        cell_wall_seconds: typing.Optional[float] = None,
        workers: int = 1) -> LinkCampaignResult:
    """Run the T=1 link grid: noise rates x layers x DPM modes.

    Each cell runs *sessions* fresh-platform T=1 sessions of
    *commands* seeded APDUs.  With *journal_path* every finished cell
    is checkpointed (JSONL); *resume* replays journaled cells
    byte-identically; *workers* > 1 shards the grid over a process
    pool with identical results.
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if commands < 1:
        raise ValueError(f"commands must be >= 1, got {commands}")
    for rate in noise_rates:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"noise rate must be in [0, 1), got {rate}")
    for layer in layers:
        if layer not in LAYERS:
            raise ValueError(f"unknown layer {layer!r}; expected one "
                             f"of {LAYERS}")
    for mode in dpm_modes:
        if mode not in DPM_MODES:
            raise ValueError(f"unknown dpm mode {mode!r}; expected one "
                             f"of {DPM_MODES}")
    table = characterization().table
    supervisor = CampaignSupervisor(
        "link_campaign", seed, journal_path=journal_path, resume=resume,
        max_attempts=max_attempts, cell_wall_seconds=cell_wall_seconds)
    specs = []
    for layer in layers:
        for rate in noise_rates:
            for mode in dpm_modes:
                specs.append((
                    {"layer": layer, "noise": rate, "dpm": mode},
                    _run_link_cell,
                    (layer, rate, mode, seed, sessions, commands,
                     table, max_cycles, supervisor.cell_wall_seconds)))
    cells: typing.List[LinkCell] = []
    for (params, _, _), outcome in zip(
            specs, supervisor.run_cells(specs, workers=workers)):
        if outcome.ok:
            cells.append(LinkCell(**outcome.payload))
        else:
            cells.append(LinkCell(
                layer=params["layer"], noise=params["noise"],
                dpm=params["dpm"], sessions=sessions, completed=0,
                degraded=0, hung=0, commands_total=0,
                commands_completed=0, commands_shed=0, retries=0,
                max_session_retries=0, retry_budget=0,
                host_retransmissions=0, card_retransmissions=0,
                retransmitted_bytes=0, resyncs=0, ifs_renegotiations=0,
                wtx_grants=0, aborts=0, cwt_timeouts=0, bwt_timeouts=0,
                rx_overruns=0, rx_dropped_gated=0, channel_events=0,
                cycles=0, energy_pj=0.0, clean_energy_pj=0.0,
                recovery_pj={}, max_unaccounted_pj=0.0,
                all_accounted=False, all_clean=False,
                status="degraded", error=outcome.error))
    return LinkCampaignResult(
        seed=seed, noise_rates=tuple(noise_rates),
        layers=tuple(layers), dpm_modes=tuple(dpm_modes),
        sessions=sessions, commands=commands, cells=cells)
