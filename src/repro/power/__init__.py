"""Power modelling stack: characterisation table, hierarchical energy
models for TLM layers 1 and 2, gate-level estimation (Diesel
substitute), traces and SPA/DPA leakage metrics."""

from .calibration import (TechnologyPoint, TechnologyTable,
                          default_technology_table)
from .domain import (BrownoutEvent, EnergyGovernor, PowerDomain,
                     PowerLossEvent, PowerSupply,
                     estimate_transaction_energy_pj)
from .engine import (BACKEND_ENV_VAR, BACKEND_NAMES, NumpyEngine,
                     PackedEngine, ReferenceEngine, TransitionEngine,
                     available_backends, make_engine, resolve_backend)
from .governors import (AlwaysOnPolicy, BudgetAwarePolicy, DpmController,
                        DpmGovernor, DpmPolicy, FixedTimeoutPolicy,
                        HistoryPredictivePolicy, IssueGate, POLICIES)
from .interfaces import (CycleAccuratePowerInterface, EnergyAccumulator,
                         PowerInterface)
from .layer1 import Layer1PowerModel, SignalStateRecorder
from .layer2 import Layer2PowerModel
from .psm import (CardPowerModel, DEFAULT_STATE_PROFILES, PowerState,
                  PowerStateMachine, StateProfile)
from .table import CharacterizationTable, default_table
from .trace import EnergySample, PowerTrace, SamplingProfiler
from .vcd import dump_vcd, save_vcd
from . import security, units

__all__ = [
    "AlwaysOnPolicy",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BrownoutEvent",
    "BudgetAwarePolicy",
    "CardPowerModel",
    "CharacterizationTable",
    "CycleAccuratePowerInterface",
    "DEFAULT_STATE_PROFILES",
    "DpmController",
    "DpmGovernor",
    "DpmPolicy",
    "EnergyAccumulator",
    "EnergyGovernor",
    "EnergySample",
    "FixedTimeoutPolicy",
    "HistoryPredictivePolicy",
    "IssueGate",
    "Layer1PowerModel",
    "Layer2PowerModel",
    "NumpyEngine",
    "POLICIES",
    "PackedEngine",
    "PowerDomain",
    "PowerInterface",
    "PowerLossEvent",
    "PowerState",
    "PowerStateMachine",
    "PowerSupply",
    "PowerTrace",
    "ReferenceEngine",
    "SamplingProfiler",
    "SignalStateRecorder",
    "StateProfile",
    "TechnologyPoint",
    "TechnologyTable",
    "TransitionEngine",
    "available_backends",
    "default_table",
    "default_technology_table",
    "dump_vcd",
    "estimate_transaction_energy_pj",
    "make_engine",
    "resolve_backend",
    "save_vcd",
    "security",
    "units",
]
