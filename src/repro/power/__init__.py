"""Power modelling stack: characterisation table, hierarchical energy
models for TLM layers 1 and 2, gate-level estimation (Diesel
substitute), traces and SPA/DPA leakage metrics."""

from .interfaces import (CycleAccuratePowerInterface, EnergyAccumulator,
                         PowerInterface)
from .layer1 import Layer1PowerModel, SignalStateRecorder, popcount
from .layer2 import Layer2PowerModel
from .table import CharacterizationTable, default_table
from .trace import EnergySample, PowerTrace, SamplingProfiler
from .vcd import dump_vcd, save_vcd
from . import security, units

__all__ = [
    "CharacterizationTable",
    "CycleAccuratePowerInterface",
    "EnergyAccumulator",
    "EnergySample",
    "Layer1PowerModel",
    "Layer2PowerModel",
    "PowerInterface",
    "PowerTrace",
    "SamplingProfiler",
    "SignalStateRecorder",
    "default_table",
    "dump_vcd",
    "popcount",
    "save_vcd",
    "security",
    "units",
]
