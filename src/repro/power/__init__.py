"""Power modelling stack: characterisation table, hierarchical energy
models for TLM layers 1 and 2, gate-level estimation (Diesel
substitute), traces and SPA/DPA leakage metrics."""

from .domain import (BrownoutEvent, EnergyGovernor, PowerDomain,
                     PowerLossEvent, PowerSupply,
                     estimate_transaction_energy_pj)
from .interfaces import (CycleAccuratePowerInterface, EnergyAccumulator,
                         PowerInterface)
from .layer1 import Layer1PowerModel, SignalStateRecorder, popcount
from .layer2 import Layer2PowerModel
from .table import CharacterizationTable, default_table
from .trace import EnergySample, PowerTrace, SamplingProfiler
from .vcd import dump_vcd, save_vcd
from . import security, units

__all__ = [
    "BrownoutEvent",
    "CharacterizationTable",
    "CycleAccuratePowerInterface",
    "EnergyAccumulator",
    "EnergyGovernor",
    "EnergySample",
    "Layer1PowerModel",
    "Layer2PowerModel",
    "PowerDomain",
    "PowerInterface",
    "PowerLossEvent",
    "PowerSupply",
    "PowerTrace",
    "SamplingProfiler",
    "SignalStateRecorder",
    "default_table",
    "dump_vcd",
    "estimate_transaction_energy_pj",
    "popcount",
    "save_vcd",
    "security",
    "units",
]
