"""Packed-word transition-energy engines for the layer-1 hot path.

The per-cycle energy accounting of :class:`~repro.power.Layer1PowerModel`
is, arithmetically, fifteen XOR + popcount + multiply-accumulate steps.
Substrate-level power emulation (Coburn et al., PAPERS.md) shows this
work can ride on the execution substrate's native word operations: pack
every reconstructed EC interface signal into one fixed lane of a
single machine word per cycle, diff whole words, and look the per-lane
energy
up in tables precomputed from the characterisation coefficients.

This module defines the canonical lane layout plus the selectable
engines behind one :class:`TransitionEngine` interface:

``reference``
    The naive per-cycle oracle: unpack the word, walk all fifteen
    signals with :func:`~repro.ec.hamming_distance` and live
    ``table.coefficient()`` lookups — exactly the recomputation the
    PR-5 equivalence tests perform.  Slow on purpose; every other
    engine must match it float for float.
``packed`` (default)
    Pure python, no dependencies: one XOR per cycle, per-group lane
    masks to skip silent groups, ``int.bit_count()`` per toggled lane
    and transition-energy LUTs instead of multiplies.
``numpy``
    Optional bit-slice backend (``pip install repro[fast]``): the
    whole deferred buffer becomes an ``(N, 16)`` byte matrix, XOR and
    popcount vectorize across all cycles at once, and only the sparse
    nonzero (cycle, lane) pairs are replayed in python.

Byte-identity contract (the PR-5 discipline): every engine performs
*the same float operations in the same order* as the original
per-signal scan — per cycle the clock baseline first, then ascending
EC_SIGNALS index order, one ``transitions * coefficient`` product and
one add per signal, one accumulator commit per cycle.  LUT entry
``lut[t]`` is precomputed as ``t * coefficient`` — the identical
operation on the identical operands — so substituting the lookup for
the multiply cannot change a single bit.

Engines cache their LUTs against
:attr:`~repro.power.CharacterizationTable.lut_version` and rebuild on
the first flush after :meth:`~repro.power.CharacterizationTable.
invalidate_luts` (recalibration can therefore never leave a stale LUT
in play).
"""

from __future__ import annotations

import os
import typing

from repro.ec import EC_SIGNALS, SignalGroup
from repro.ec.signals import hamming_distance

from .table import CharacterizationTable

try:  # the numpy backend is optional (pip install repro[fast])
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None

#: environment override for the default backend selection
BACKEND_ENV_VAR = "REPRO_ENERGY_BACKEND"

#: engine names accepted by :func:`resolve_backend`
BACKEND_NAMES = ("packed", "reference", "numpy")


# ----------------------------------------------------------------------
# canonical lane layout: one lane per EC signal in a 128-bit word
# ----------------------------------------------------------------------

#: lane bit offsets, byte-aligned for the multi-bit buses so the numpy
#: backend can slice whole byte columns: EB_A bytes 0-4, control bits
#: packed into bytes 5-6, EB_RData bytes 8-11, EB_WData bytes 12-15
LANE_SHIFTS: typing.Dict[str, int] = {
    "EB_A": 0,
    "EB_AValid": 40, "EB_Instr": 41, "EB_Write": 42, "EB_Burst": 43,
    "EB_BFirst": 44, "EB_BLast": 45, "EB_ARdy": 46,
    "EB_BE": 48,
    "EB_RdVal": 52, "EB_RBErr": 53, "EB_WDRdy": 54, "EB_WBErr": 55,
    "EB_RData": 64,
    "EB_WData": 96,
}

#: bytes per packed cycle word
WORD_BYTES = 16
WORD_BITS = WORD_BYTES * 8

#: (name, shift, width, field mask in place) per signal, EC index order
LANES: typing.Tuple[typing.Tuple[str, int, int, int], ...] = tuple(
    (spec.name, LANE_SHIFTS[spec.name], spec.width,
     spec.mask() << LANE_SHIFTS[spec.name])
    for spec in EC_SIGNALS)

#: reset state of the interface: controls low, EB_ARdy high
RESET_WORD = 1 << LANE_SHIFTS["EB_ARdy"]

#: per-group toggle masks (skip a whole group when none of its lanes
#: toggled this cycle); lane indices are contiguous per group, so the
#: skip cannot reorder the ascending-index accounting walk
GROUP_TOGGLE_MASK: typing.Dict[SignalGroup, int] = {
    group: 0 for group in SignalGroup}
for _spec, (_name, _shift, _width, _mask) in zip(EC_SIGNALS, LANES):
    GROUP_TOGGLE_MASK[_spec.group] |= _mask

#: group accumulator slots, in SignalGroup declaration order (the
#: order ``Layer1PowerModel.group_energy_pj`` has always iterated)
GROUP_ORDER: typing.Tuple[SignalGroup, ...] = tuple(SignalGroup)
GROUP_INDEX: typing.Dict[SignalGroup, int] = {
    group: i for i, group in enumerate(GROUP_ORDER)}

#: EC signal index -> group accumulator slot
LANE_GROUP_INDEX: typing.Tuple[int, ...] = tuple(
    GROUP_INDEX[spec.group] for spec in EC_SIGNALS)


def _check_layout() -> None:
    occupied = 0
    for name, shift, width, mask in LANES:
        if shift + width > WORD_BITS:
            raise AssertionError(f"lane {name} exceeds the packed word")
        if occupied & mask:
            raise AssertionError(f"lane {name} overlaps another lane")
        occupied |= mask


_check_layout()


def pack_values(values: typing.Mapping[str, int]) -> int:
    """Pack a full ``{signal: value}`` mapping into one cycle word."""
    word = 0
    for name, shift, _width, mask in LANES:
        word |= (values[name] << shift) & mask
    return word


def unpack_word(word: int) -> typing.Tuple[int, ...]:
    """Per-signal values of a packed word, in EC_SIGNALS index order."""
    return tuple((word >> shift) & (mask >> shift)
                 for _name, shift, _width, mask in LANES)


# ----------------------------------------------------------------------
# the engine interface
# ----------------------------------------------------------------------

class TransitionEngine:
    """Accounts batches of packed cycle words against a model's books.

    ``flush(model, words)`` must book every cycle in *words* exactly as
    the historical per-signal scan did: identical float operations in
    identical order against the model's accumulator, per-signal counts
    and per-group energies.  The *model* contract is the attribute set
    :class:`~repro.power.Layer1PowerModel` exposes: ``table``,
    ``_counts`` (per EC index), ``_gvals`` (per GROUP_ORDER slot),
    ``_acc``, ``_prev_word`` and ``_last_cycle_energy``.
    """

    name = "abstract"

    def __init__(self, table: CharacterizationTable) -> None:
        self.table = table
        self._lut_source: typing.Optional[CharacterizationTable] = None
        self._lut_version = -1  # force a rebuild on first flush

    def _stale(self, table: CharacterizationTable) -> bool:
        """True when cached LUTs no longer match the model's table —
        the table was invalidated, or swapped for another object."""
        return (self._lut_source is not table
                or self._lut_version != table.lut_version)

    def _rebuild(self, table: CharacterizationTable) -> None:
        """Refresh cached LUTs after construction or invalidation."""
        self._lut_source = table
        self._lut_version = table.lut_version

    def flush(self, model, words: typing.Sequence[int]) -> None:
        raise NotImplementedError  # pragma: no cover


class ReferenceEngine(TransitionEngine):
    """The naive per-cycle, per-signal oracle (no LUTs, no batching).

    A faithful transcription of the reference recomputation in the
    PR-5 equivalence tests: unpack every cycle into a ``{name: value}``
    dict, then walk all fifteen signals in EC index order calling
    :func:`hamming_distance` and ``table.coefficient`` live.  This is
    the uncompiled energy path the packed engines are benchmarked
    against, and the semantics every backend must reproduce bit for
    bit.
    """

    name = "reference"

    def flush(self, model, words: typing.Sequence[int]) -> None:
        if not words:
            return
        table = model.table
        clock_e = table.clock_energy_per_cycle_pj
        coefficient = table.coefficient
        counts = model._counts
        gvals = model._gvals
        acc = model._acc
        lanes = LANES
        group_of = LANE_GROUP_INDEX
        clock_slot = GROUP_INDEX[SignalGroup.CLOCK]
        previous = {name: (model._prev_word >> shift) & (mask >> shift)
                    for name, shift, _w, mask in lanes}
        energy = model._last_cycle_energy
        for word in words:
            values = {name: (word >> shift) & (mask >> shift)
                      for name, shift, _w, mask in lanes}
            energy = clock_e
            gvals[clock_slot] += clock_e
            for index, (name, _shift, width, _mask) in enumerate(lanes):
                transitions = hamming_distance(
                    previous[name], values[name], width)
                counts[index] += transitions
                signal_energy = transitions * coefficient(name)
                energy += signal_energy
                gvals[group_of[index]] += signal_energy
            acc.add(energy)
            previous = values
        model._prev_word = words[-1]
        model._last_cycle_energy = energy


class PackedEngine(TransitionEngine):
    """Pure-python packed backend: word XOR + ``int.bit_count`` + LUTs.

    The flush loop is hand-unrolled over the fifteen lanes — wide buses
    popcount their field, single-bit control lanes add a precomputed
    one-transition energy — with one group-mask test skipping whole
    silent signal groups.  Float accumulators are localised for the
    duration of the flush and written back once; every addition still
    happens in the historical order, so the result is bit-identical.
    """

    name = "packed"

    def _rebuild(self, table: CharacterizationTable) -> None:
        luts = table.transition_luts()
        self._a_lut = luts[0]
        self._be_lut = luts[7]
        self._rdata_lut = luts[9]
        self._wdata_lut = luts[12]
        #: one-transition energies of the single-bit control lanes
        self._bit_costs = tuple(lut[1] for lut in luts)
        super()._rebuild(table)

    def flush(self, model, words: typing.Sequence[int]) -> None:
        if not words:
            return
        table = model.table
        if self._stale(table):
            self._rebuild(table)
        clock_e = table.clock_energy_per_cycle_pj
        a_lut = self._a_lut
        be_lut = self._be_lut
        rd_lut = self._rdata_lut
        wd_lut = self._wdata_lut
        (_, c_avalid, c_instr, c_write, c_burst, c_bfirst, c_blast, _,
         c_ardy, _, c_rdval, c_rberr, _, c_wdrdy, c_wberr
         ) = self._bit_costs
        counts = model._counts
        gvals = model._gvals
        acc = model._acc
        g_addr = gvals[_GI_ADDR]
        g_read = gvals[_GI_READ]
        g_write = gvals[_GI_WRITE]
        g_clock = gvals[_GI_CLOCK]
        total = acc._total
        prev = model._prev_word
        energy = model._last_cycle_energy
        for word in words:
            toggled = prev ^ word
            prev = word
            energy = clock_e
            g_clock += clock_e
            if toggled:
                if toggled & _ADDR_GROUP:
                    field = toggled & _A_FIELD
                    if field:
                        n = field.bit_count()
                        counts[0] += n
                        se = a_lut[n]
                        energy += se
                        g_addr += se
                    if toggled & _AVALID_BIT:
                        counts[1] += 1
                        energy += c_avalid
                        g_addr += c_avalid
                    if toggled & _INSTR_BIT:
                        counts[2] += 1
                        energy += c_instr
                        g_addr += c_instr
                    if toggled & _WRITE_BIT:
                        counts[3] += 1
                        energy += c_write
                        g_addr += c_write
                    if toggled & _BURST_BIT:
                        counts[4] += 1
                        energy += c_burst
                        g_addr += c_burst
                    if toggled & _BFIRST_BIT:
                        counts[5] += 1
                        energy += c_bfirst
                        g_addr += c_bfirst
                    if toggled & _BLAST_BIT:
                        counts[6] += 1
                        energy += c_blast
                        g_addr += c_blast
                    field = (toggled >> _BE_SHIFT) & 0xF
                    if field:
                        n = field.bit_count()
                        counts[7] += n
                        se = be_lut[n]
                        energy += se
                        g_addr += se
                    if toggled & _ARDY_BIT:
                        counts[8] += 1
                        energy += c_ardy
                        g_addr += c_ardy
                if toggled & _READ_GROUP:
                    field = (toggled >> _RDATA_SHIFT) & 0xFFFFFFFF
                    if field:
                        n = field.bit_count()
                        counts[9] += n
                        se = rd_lut[n]
                        energy += se
                        g_read += se
                    if toggled & _RDVAL_BIT:
                        counts[10] += 1
                        energy += c_rdval
                        g_read += c_rdval
                    if toggled & _RBERR_BIT:
                        counts[11] += 1
                        energy += c_rberr
                        g_read += c_rberr
                if toggled & _WRITE_GROUP:
                    field = toggled >> _WDATA_SHIFT
                    if field:
                        n = field.bit_count()
                        counts[12] += n
                        se = wd_lut[n]
                        energy += se
                        g_write += se
                    if toggled & _WDRDY_BIT:
                        counts[13] += 1
                        energy += c_wdrdy
                        g_write += c_wdrdy
                    if toggled & _WBERR_BIT:
                        counts[14] += 1
                        energy += c_wberr
                        g_write += c_wberr
            total += energy
        acc._total = total
        gvals[_GI_ADDR] = g_addr
        gvals[_GI_READ] = g_read
        gvals[_GI_WRITE] = g_write
        gvals[_GI_CLOCK] = g_clock
        model._prev_word = prev
        model._last_cycle_energy = energy


class NumpyEngine(TransitionEngine):
    """Bit-slice backend: vectorized XOR + popcount over a byte matrix.

    The deferred buffer is reinterpreted as an ``(N, 16)`` uint8
    matrix; the previous-cycle XOR and the per-lane popcounts happen in
    a handful of vector operations.  Only the sparse nonzero
    ``(cycle, lane)`` transition pairs come back to python, where the
    accounting is replayed cycle-major in ascending lane order — the
    same per-contribution float operations, so still bit-identical.
    """

    name = "numpy"

    def __init__(self, table: CharacterizationTable) -> None:
        if _np is None:
            raise RuntimeError(
                "the 'numpy' energy backend needs numpy installed "
                "(pip install repro[fast])")
        super().__init__(table)
        self._pop8 = _np.array([b.bit_count() for b in range(256)],
                               dtype=_np.int64)

    def _rebuild(self, table: CharacterizationTable) -> None:
        self._luts = table.transition_luts()
        super()._rebuild(table)

    def flush(self, model, words: typing.Sequence[int]) -> None:
        if not words:
            return
        table = model.table
        if self._stale(table):
            self._rebuild(table)
        np = _np
        n = len(words)
        prev = model._prev_word
        buf = b"".join(w.to_bytes(WORD_BYTES, "little") for w in words)
        grid = np.frombuffer(buf, dtype=np.uint8).reshape(n, WORD_BYTES)
        shifted = np.empty_like(grid)
        shifted[0] = np.frombuffer(
            prev.to_bytes(WORD_BYTES, "little"), dtype=np.uint8)
        shifted[1:] = grid[:-1]
        toggled = grid ^ shifted
        pop8 = self._pop8
        pc = pop8[toggled]
        # per-lane transition counts, EC index order; the control bits
        # live in byte columns 5 (shifts 40-46) and 6 (BE + shifts
        # 52-55), the buses in whole byte columns
        ctrl5 = toggled[:, 5]
        ctrl6 = toggled[:, 6]
        matrix = np.empty((n, len(LANES)), dtype=np.int64)
        matrix[:, 0] = pc[:, 0:5].sum(axis=1)              # EB_A
        matrix[:, 1] = (ctrl5 >> 0) & 1                    # EB_AValid
        matrix[:, 2] = (ctrl5 >> 1) & 1                    # EB_Instr
        matrix[:, 3] = (ctrl5 >> 2) & 1                    # EB_Write
        matrix[:, 4] = (ctrl5 >> 3) & 1                    # EB_Burst
        matrix[:, 5] = (ctrl5 >> 4) & 1                    # EB_BFirst
        matrix[:, 6] = (ctrl5 >> 5) & 1                    # EB_BLast
        matrix[:, 7] = pop8[ctrl6 & 0x0F]                  # EB_BE
        matrix[:, 8] = (ctrl5 >> 6) & 1                    # EB_ARdy
        matrix[:, 9] = pc[:, 8:12].sum(axis=1)             # EB_RData
        matrix[:, 10] = (ctrl6 >> 4) & 1                   # EB_RdVal
        matrix[:, 11] = (ctrl6 >> 5) & 1                   # EB_RBErr
        matrix[:, 12] = pc[:, 12:16].sum(axis=1)           # EB_WData
        matrix[:, 13] = (ctrl6 >> 6) & 1                   # EB_WDRdy
        matrix[:, 14] = (ctrl6 >> 7) & 1                   # EB_WBErr
        # np.nonzero walks the matrix row-major: cycle-major, ascending
        # lane order within a cycle — the exact historical add order
        rows, lanes = np.nonzero(matrix)
        transitions = matrix[rows, lanes].tolist()
        rows = rows.tolist()
        lanes = lanes.tolist()
        clock_e = table.clock_energy_per_cycle_pj
        luts = self._luts
        group_of = LANE_GROUP_INDEX
        counts = model._counts
        gvals = model._gvals
        acc = model._acc
        g_clock = gvals[_GI_CLOCK]
        total = acc._total
        energy = model._last_cycle_energy
        pairs = len(rows)
        ptr = 0
        for cycle_index in range(n):
            energy = clock_e
            g_clock += clock_e
            while ptr < pairs and rows[ptr] == cycle_index:
                lane = lanes[ptr]
                tr = transitions[ptr]
                counts[lane] += tr
                se = luts[lane][tr]
                energy += se
                gvals[group_of[lane]] += se
                ptr += 1
            total += energy
        acc._total = total
        gvals[_GI_CLOCK] = g_clock
        model._prev_word = words[-1]
        model._last_cycle_energy = energy


# module-level lane constants for the hand-unrolled packed flush
_ADDR_GROUP = GROUP_TOGGLE_MASK[SignalGroup.ADDRESS]
_READ_GROUP = GROUP_TOGGLE_MASK[SignalGroup.READ]
_WRITE_GROUP = GROUP_TOGGLE_MASK[SignalGroup.WRITE]
_A_FIELD = LANES[0][3]
_AVALID_BIT = LANES[1][3]
_INSTR_BIT = LANES[2][3]
_WRITE_BIT = LANES[3][3]
_BURST_BIT = LANES[4][3]
_BFIRST_BIT = LANES[5][3]
_BLAST_BIT = LANES[6][3]
_BE_SHIFT = LANES[7][1]
_ARDY_BIT = LANES[8][3]
_RDATA_SHIFT = LANES[9][1]
_RDVAL_BIT = LANES[10][3]
_RBERR_BIT = LANES[11][3]
_WDATA_SHIFT = LANES[12][1]
_WDRDY_BIT = LANES[13][3]
_WBERR_BIT = LANES[14][3]
_GI_ADDR = GROUP_INDEX[SignalGroup.ADDRESS]
_GI_READ = GROUP_INDEX[SignalGroup.READ]
_GI_WRITE = GROUP_INDEX[SignalGroup.WRITE]
_GI_CLOCK = GROUP_INDEX[SignalGroup.CLOCK]


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------

_ENGINES: typing.Dict[str, typing.Type[TransitionEngine]] = {
    "reference": ReferenceEngine,
    "packed": PackedEngine,
    "numpy": NumpyEngine,
}


def available_backends() -> typing.Tuple[str, ...]:
    """Backends usable on this host (``numpy`` only when importable)."""
    names = ["packed", "reference"]
    if _np is not None:
        names.append("numpy")
    return tuple(names)


def resolve_backend(backend: typing.Optional[str] = None) -> str:
    """Pick the engine name: explicit argument beats the
    ``REPRO_ENERGY_BACKEND`` environment variable beats ``packed``."""
    name = backend or os.environ.get(BACKEND_ENV_VAR) or "packed"
    if name not in _ENGINES:
        raise ValueError(
            f"unknown energy backend {name!r}; "
            f"choose from {BACKEND_NAMES}")
    if name == "numpy" and _np is None:
        raise RuntimeError(
            "energy backend 'numpy' requested but numpy is not "
            "installed (pip install repro[fast])")
    return name


def make_engine(backend: typing.Optional[str],
                table: CharacterizationTable) -> TransitionEngine:
    """Instantiate the engine selected by :func:`resolve_backend`."""
    return _ENGINES[resolve_backend(backend)](table)
