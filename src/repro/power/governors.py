"""DPM governor policies and graceful degradation under scarcity.

The :mod:`repro.power.psm` layer gives every peripheral a power state
machine; this module decides *when* to use it.  Three classic DPM
policies (fixed-timeout, history-predictive, budget-aware) plus the
degenerate always-on baseline, and a :class:`DpmGovernor` that applies
one policy to a fleet of PSMs while watching the
:class:`~repro.power.PowerSupply` for scarcity.

Graceful degradation: as the supply's stored charge falls through the
configured watermarks the governor sheds load in stages instead of
letting the card hit the power-loss threshold mid-write:

=====  ===================  =========================================
stage  below watermark      response
=====  ===================  =========================================
1      ``defer_nj``         non-critical issue gates defer new bus
                            work (DMA chunks, crypto DMA, scripted
                            masters flagged non-critical)
2      ``sleep_nj``         non-critical peripherals are forced to
                            SLEEP regardless of policy
3      ``emergency_nj``     the emergency checkpoint callback fires
                            once per descent — the card OS commits a
                            journal frame while there is still charge
                            to finish it, so the impending
                            :class:`~repro.power.PowerLossEvent`
                            tears *after* a durable commit
=====  ===================  =========================================

Stages are cumulative (stage 2 implies stage 1) and release as
harvesting rebuilds charge above the watermark; the emergency
checkpoint re-arms only after charge recovers, so one descent fires
one checkpoint.

Issue gating composes with the PR-3 plumbing: :meth:`DpmGovernor.gate`
returns an object with the same ``may_issue(transaction)`` contract as
:class:`~repro.power.EnergyGovernor`, accepted by
``DmaController.attach_governor`` and the scripted masters' governor
hook unchanged.
"""

from __future__ import annotations

import abc
import typing

from repro.ec import Transaction

from .domain import EnergyGovernor, PowerSupply, PJ_PER_NJ
from .psm import PowerState, PowerStateMachine
from .table import CharacterizationTable


class DpmPolicy(abc.ABC):
    """Chooses a target state for an idle component."""

    name = "policy"

    @abc.abstractmethod
    def select(self, psm: PowerStateMachine,
               supply: typing.Optional[PowerSupply]) -> PowerState:
        """Deepest state the component should occupy right now."""


class AlwaysOnPolicy(DpmPolicy):
    """The baseline every adaptive policy must beat: never leave
    ACTIVE, never pay a transition, burn the full idle power."""

    name = "always_on"

    def select(self, psm: PowerStateMachine,
               supply: typing.Optional[PowerSupply]) -> PowerState:
        return PowerState.ACTIVE


class FixedTimeoutPolicy(DpmPolicy):
    """Enter deeper states after fixed idle timeouts.

    IDLE immediately when not busy, CLOCK_GATED after *gate_after*
    consecutive idle cycles, SLEEP after *sleep_after*.
    """

    name = "fixed_timeout"

    def __init__(self, gate_after: int = 16,
                 sleep_after: int = 256) -> None:
        if not 0 < gate_after <= sleep_after:
            raise ValueError(
                "need 0 < gate_after <= sleep_after, got "
                f"{gate_after} / {sleep_after}")
        self.gate_after = gate_after
        self.sleep_after = sleep_after

    def select(self, psm: PowerStateMachine,
               supply: typing.Optional[PowerSupply]) -> PowerState:
        if psm.idle_cycles >= self.sleep_after:
            return PowerState.SLEEP
        if psm.idle_cycles >= self.gate_after:
            return PowerState.CLOCK_GATED
        return PowerState.IDLE


class HistoryPredictivePolicy(DpmPolicy):
    """Predict the idle period from history; gate/sleep early when the
    prediction amortises the transition cost.

    The predictor is the mean of the component's recent idle periods
    (:attr:`PowerStateMachine.idle_history`).  A state is worth
    entering when the predicted *remaining* idle time exceeds its
    break-even: the idle cycles whose saved energy repays entry + exit.
    Savings per cycle are approximated by *idle_cost_pj_per_cycle* —
    what the component burns per idle cycle when left ACTIVE.  With no
    history yet the policy falls back to fixed timeouts.
    """

    name = "history_predictive"

    def __init__(self, idle_cost_pj_per_cycle: float = 0.05,
                 fallback: typing.Optional[FixedTimeoutPolicy] = None
                 ) -> None:
        if idle_cost_pj_per_cycle <= 0:
            raise ValueError("idle_cost_pj_per_cycle must be positive")
        self.idle_cost_pj_per_cycle = idle_cost_pj_per_cycle
        self.fallback = fallback or FixedTimeoutPolicy()

    def breakeven_cycles(self, psm: PowerStateMachine,
                         state: PowerState) -> float:
        profile = psm.profiles[state]
        return ((profile.entry_pj + profile.exit_pj)
                / self.idle_cost_pj_per_cycle)

    def select(self, psm: PowerStateMachine,
               supply: typing.Optional[PowerSupply]) -> PowerState:
        predicted = psm.mean_idle_period()
        if predicted is None:
            return self.fallback.select(psm, supply)
        remaining = predicted - psm.idle_cycles
        for state in (PowerState.SLEEP, PowerState.CLOCK_GATED):
            # enter as soon as the prediction amortises the cost, with
            # a 2x safety factor against mispredicted short idles
            if remaining >= 2.0 * self.breakeven_cycles(psm, state):
                return state
        return self.fallback.select(psm, supply)


class BudgetAwarePolicy(DpmPolicy):
    """Fixed timeouts scaled by the supply's remaining headroom.

    A full capacitor affords lazy timeouts (fewer transitions, lower
    wake latency); a draining one shortens them down to *min_scale* of
    the configured values, sliding into SLEEP aggressively before the
    brownout threshold is ever reached.  Without a supply this is a
    plain :class:`FixedTimeoutPolicy`.
    """

    name = "budget_aware"

    def __init__(self, gate_after: int = 32, sleep_after: int = 512,
                 min_scale: float = 0.05) -> None:
        if not 0 < min_scale <= 1:
            raise ValueError(f"min_scale must be in (0, 1]: {min_scale}")
        self.base = FixedTimeoutPolicy(gate_after, sleep_after)
        self.min_scale = min_scale

    def _scale(self, supply: typing.Optional[PowerSupply]) -> float:
        if supply is None:
            return 1.0
        span = supply.capacity_pj - supply.brownout_pj
        if span <= 0:
            return self.min_scale
        fraction = supply.headroom_pj() / span
        return max(self.min_scale, min(1.0, fraction))

    def select(self, psm: PowerStateMachine,
               supply: typing.Optional[PowerSupply]) -> PowerState:
        scale = self._scale(supply)
        gate_after = max(1, int(self.base.gate_after * scale))
        sleep_after = max(gate_after, int(self.base.sleep_after * scale))
        if psm.idle_cycles >= sleep_after:
            return PowerState.SLEEP
        if psm.idle_cycles >= gate_after:
            return PowerState.CLOCK_GATED
        return PowerState.IDLE


#: The selectable policies of the ``repro dpm`` campaign.
POLICIES: typing.Dict[str, typing.Callable[[], DpmPolicy]] = {
    "always_on": AlwaysOnPolicy,
    "fixed_timeout": FixedTimeoutPolicy,
    "history_predictive": HistoryPredictivePolicy,
    "budget_aware": BudgetAwarePolicy,
}


class IssueGate:
    """Per-client issue gate with the ``may_issue`` contract.

    Critical clients (the card OS's journal master) are only subject
    to the underlying energy check; non-critical clients (bulk DMA,
    crypto offload) are additionally deferred while the governor is in
    degradation stage 1 or deeper.  A single transaction flagged
    ``critical=True`` (see :class:`~repro.ec.Transaction`) gets the
    critical treatment even on a non-critical gate — the override for
    a bulk client's one must-not-shed write.
    """

    def __init__(self, governor: "DpmGovernor", name: str,
                 critical: bool) -> None:
        self.governor = governor
        self.name = name
        self.critical = critical
        self.grants = 0
        self.deferrals = 0
        self.shed_deferrals = 0

    def may_issue(self, transaction: Transaction) -> bool:
        stage = self.governor.stage
        critical = self.critical or transaction.critical
        if stage >= 3 or (not critical and stage >= 1):
            # stage 3 stops the world: the emergency checkpoint is the
            # last durable write before the impending power loss, and
            # nothing may overwrite the journal window after it
            self.deferrals += 1
            self.shed_deferrals += 1
            self.governor.deferrals += 1
            return False
        if self.governor.may_issue(transaction):
            self.grants += 1
            return True
        self.deferrals += 1
        return False


class _ManagedPsm(typing.NamedTuple):
    psm: PowerStateMachine
    busy: typing.Callable[[], bool]
    critical: bool


class DpmGovernor(EnergyGovernor):
    """Policy-driven DPM governor with staged graceful degradation.

    Extends :class:`~repro.power.EnergyGovernor` (the per-transaction
    energy check keeps working, and the grants/deferrals counters stay
    comparable) with a state-management loop over registered PSMs and
    the watermark machinery described in the module docstring.

    Watermarks are absolute stored charge in nJ; ``None`` disables a
    stage.  They must be ordered ``emergency <= sleep <= defer`` where
    present — deeper scarcity triggers stronger responses.
    """

    def __init__(self, supply: PowerSupply,
                 table: CharacterizationTable,
                 policy: typing.Optional[DpmPolicy] = None,
                 margin_nj: float = 0.0,
                 defer_nj: typing.Optional[float] = None,
                 sleep_nj: typing.Optional[float] = None,
                 emergency_nj: typing.Optional[float] = None,
                 emergency_checkpoint: typing.Optional[
                     typing.Callable[[], None]] = None) -> None:
        super().__init__(supply, table, margin_nj=margin_nj)
        ordered = [nj for nj in (emergency_nj, sleep_nj, defer_nj)
                   if nj is not None]
        if ordered != sorted(ordered):
            raise ValueError(
                "watermarks must satisfy emergency_nj <= sleep_nj <= "
                f"defer_nj, got {emergency_nj} / {sleep_nj} / "
                f"{defer_nj}")
        self.policy = policy or AlwaysOnPolicy()
        self.defer_pj = (None if defer_nj is None
                         else defer_nj * PJ_PER_NJ)
        self.sleep_pj = (None if sleep_nj is None
                         else sleep_nj * PJ_PER_NJ)
        self.emergency_pj = (None if emergency_nj is None
                             else emergency_nj * PJ_PER_NJ)
        self.emergency_checkpoint = emergency_checkpoint
        self.stage = 0
        self.stage_cycles = {1: 0, 2: 0, 3: 0}
        self.emergency_checkpoints = 0
        self._emergency_armed = True
        self._managed: typing.List[_ManagedPsm] = []
        self._gates: typing.Dict[str, IssueGate] = {}

    # -- registration ------------------------------------------------------

    def register(self, psm: PowerStateMachine,
                 busy: typing.Callable[[], bool],
                 critical: bool = False) -> PowerStateMachine:
        """Manage *psm*: tick it each cycle with the *busy* predicate
        and apply the policy while the component is idle.  Critical
        components are never forced to SLEEP by stage 2."""
        self._managed.append(_ManagedPsm(psm, busy, critical))
        return psm

    def gate(self, name: str, critical: bool = False) -> IssueGate:
        """An issue gate for client *name* (memoised per name)."""
        existing = self._gates.get(name)
        if existing is None:
            existing = IssueGate(self, name, critical)
            self._gates[name] = existing
        return existing

    @property
    def gates(self) -> typing.Mapping[str, IssueGate]:
        return dict(self._gates)

    # -- the per-cycle loop ------------------------------------------------

    def _current_stage(self) -> int:
        charge = self.supply.charge_pj
        if self.emergency_pj is not None and charge < self.emergency_pj:
            return 3
        if self.sleep_pj is not None and charge < self.sleep_pj:
            return 2
        if self.defer_pj is not None and charge < self.defer_pj:
            return 1
        return 0

    def tick(self) -> None:
        """One clock cycle of governing: watermark staging, emergency
        checkpointing and PSM policy application."""
        self.stage = self._current_stage()
        if self.stage:
            self.stage_cycles[self.stage] += 1
        if self.stage >= 3:
            if self._emergency_armed:
                self._emergency_armed = False
                self.emergency_checkpoints += 1
                if self.emergency_checkpoint is not None:
                    self.emergency_checkpoint()
        elif not self._emergency_armed:
            # charge recovered above the emergency watermark: re-arm
            self._emergency_armed = True
        for psm, busy, critical in self._managed:
            psm.tick(busy())
            if psm.idle_cycles == 0:
                continue  # busy (or just woken): stay ACTIVE
            if self.stage >= 2 and not critical:
                psm.request(PowerState.SLEEP, forced=True)
                continue
            target = self.policy.select(psm, self.supply)
            psm.request(target)


class DpmController:
    """Kernel process ticking a :class:`DpmGovernor` once per cycle.

    The DPM analogue of :class:`~repro.power.PowerDomain`: a posedge
    method on the platform clock.  Construct it *after* the power
    domain so the governor observes the charge level the domain just
    settled for this cycle.
    """

    def __init__(self, simulator, clock, governor: DpmGovernor,
                 name: str = "dpm") -> None:
        from repro.kernel import Module  # late: avoid import cycles

        self.simulator = simulator
        self.governor = governor
        self._module = Module(simulator, name)
        self._module.method(self._on_posedge, name="govern",
                            sensitive=[clock.posedge_event],
                            dont_initialize=True)

    def _on_posedge(self) -> None:
        if self.simulator.powered_off:
            return
        self.governor.tick()
