"""The power domain: supply budget, brownout/power-loss events and the
energy governor (the "power-aware" loop the paper motivates).

A contactless smart card harvests its entire power budget from the
reader field into a small storage capacitor; the card dies the moment
the capacitor drains below the regulator's drop-out.  The paper's bus
models estimate the energy the card *spends*; this module closes the
loop and makes those estimates actionable:

* :class:`PowerSupply` — a capacitor charged at a fixed field-harvest
  rate and drained by a live :class:`~repro.power.PowerInterface`
  (layer-1, layer-2 or accumulator).  Crossing the *brownout* threshold
  emits a :class:`BrownoutEvent`; crossing the *power-loss* threshold
  emits a :class:`PowerLossEvent` and marks the supply dead.
* :class:`PowerDomain` — the kernel process sampling the model into
  the supply once per clock cycle, optionally turning supply
  exhaustion into a cooperative whole-card halt
  (:meth:`~repro.kernel.Simulator.power_off`).
* :class:`EnergyGovernor` — the dynamic-power-management policy
  masters and the DMA engine consult before issuing *new* bus work:
  when the projected draw of a transaction would push the capacitor
  into brownout, the work is deferred until harvesting has rebuilt
  headroom.  Graceful degradation: the workload still completes, just
  slower.  With no governor attached the masters are bit-identical to
  the governor-less originals.

Charge is tracked in pJ internally (the unit of every energy model)
but configured in nJ — capacitor budgets are naturally nanojoules:
at a 10 MHz clock, a 5 mW field delivers 500 pJ per cycle.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import Transaction, TransactionKind

from .interfaces import PowerInterface
from .table import CharacterizationTable

#: pJ per nJ — the supply is configured in nJ, drained in pJ.
PJ_PER_NJ = 1e3


@dataclasses.dataclass(frozen=True)
class BrownoutEvent:
    """The supply dipped below the brownout threshold (one event per
    downward crossing, not per cycle spent below)."""

    cycle: int
    charge_nj: float


@dataclasses.dataclass(frozen=True)
class PowerLossEvent:
    """The supply drained below the power-loss threshold: the card is
    dead until re-fielded."""

    cycle: int
    charge_nj: float


class PowerSupply:
    """Field-harvesting storage capacitor drained by a power model.

    Parameters
    ----------
    power_model:
        Any :class:`~repro.power.PowerInterface`; its
        ``energy_since_last_call_pj`` stream is the drain.  The supply
        must then be that method's only caller.
    capacity_nj:
        Storage capacitor budget (the charge ceiling).
    harvest_pj_per_cycle:
        Energy entering from the reader field every cycle.
    brownout_nj / power_loss_nj:
        Thresholds: below *brownout* the regulator flags low voltage
        (the card should shed load); below *power_loss* the card dies.
    initial_nj:
        Starting charge (defaults to a full capacitor).
    """

    def __init__(self, power_model: PowerInterface,
                 capacity_nj: float = 50.0,
                 harvest_pj_per_cycle: float = 500.0,
                 brownout_nj: float = 10.0,
                 power_loss_nj: float = 2.0,
                 initial_nj: typing.Optional[float] = None) -> None:
        if capacity_nj <= 0:
            raise ValueError("capacity_nj must be positive")
        if harvest_pj_per_cycle < 0:
            raise ValueError("harvest_pj_per_cycle must be >= 0")
        if not 0 <= power_loss_nj <= brownout_nj <= capacity_nj:
            raise ValueError(
                "thresholds must satisfy 0 <= power_loss_nj <= "
                "brownout_nj <= capacity_nj, got "
                f"{power_loss_nj} / {brownout_nj} / {capacity_nj}")
        if initial_nj is None:
            initial_nj = capacity_nj
        if not 0 <= initial_nj <= capacity_nj:
            raise ValueError("initial_nj must be within the capacity")
        self.power_model = power_model
        self.capacity_pj = capacity_nj * PJ_PER_NJ
        self.harvest_pj_per_cycle = harvest_pj_per_cycle
        self.brownout_pj = brownout_nj * PJ_PER_NJ
        self.power_loss_pj = power_loss_nj * PJ_PER_NJ
        self.charge_pj = initial_nj * PJ_PER_NJ
        self.brownouts: typing.List[BrownoutEvent] = []
        self.power_losses: typing.List[PowerLossEvent] = []
        self.cycles_stepped = 0
        self.drained_pj = 0.0
        self.harvested_pj = 0.0

    @property
    def charge_nj(self) -> float:
        return self.charge_pj / PJ_PER_NJ

    @property
    def in_brownout(self) -> bool:
        return self.charge_pj < self.brownout_pj

    @property
    def powered_down(self) -> bool:
        return bool(self.power_losses)

    def headroom_pj(self) -> float:
        """Charge above the brownout threshold (what a governor may
        spend before the regulator complains)."""
        return self.charge_pj - self.brownout_pj

    def step(self, cycle: int) -> float:
        """Advance one cycle: harvest, drain the model's delta, emit
        threshold-crossing events.  Returns the energy drained (pJ)."""
        was_brownout = self.in_brownout
        was_down = self.powered_down
        drained = self.power_model.energy_since_last_call_pj()
        self.drained_pj += drained
        self.harvested_pj += self.harvest_pj_per_cycle
        self.charge_pj = min(
            self.charge_pj + self.harvest_pj_per_cycle - drained,
            self.capacity_pj)
        if self.charge_pj < 0.0:
            self.charge_pj = 0.0
        self.cycles_stepped += 1
        if self.in_brownout and not was_brownout:
            self.brownouts.append(BrownoutEvent(cycle, self.charge_nj))
        if self.charge_pj < self.power_loss_pj and not was_down:
            self.power_losses.append(
                PowerLossEvent(cycle, self.charge_nj))
        return drained


def estimate_transaction_energy_pj(table: CharacterizationTable,
                                   transaction: Transaction) -> float:
    """Projected energy of one bus transaction, before it runs.

    Layer-2-style arithmetic from the characterisation table: the
    address phase at the characterised inter-transaction average, the
    data phase with exact beat-to-beat Hamming where the payload is
    known (writes) and the characterised average where it is not
    (reads), plus the clock baseline for the transaction's minimum
    occupancy.  An a-priori estimate — the governor uses it to decide
    whether issuing now could breach the energy budget.
    """
    coeff = table.coefficient
    energy = table.inter_txn_address_hamming * coeff("EB_A")
    for name in ("EB_AValid", "EB_BFirst", "EB_BLast", "EB_ARdy",
                 "EB_Instr", "EB_Write", "EB_Burst", "EB_BE"):
        energy += table.phase_toggles(name) * coeff(name)
    if transaction.kind is TransactionKind.DATA_WRITE:
        bus_name, valid_name = "EB_WData", "EB_WDRdy"
    else:
        bus_name, valid_name = "EB_RData", "EB_RdVal"
    energy += table.inter_txn_data_hamming * coeff(bus_name)
    data = transaction.data if (
        transaction.kind is TransactionKind.DATA_WRITE) else None
    for beat in range(1, transaction.burst_length):
        if data is not None:
            energy += (data[beat - 1] ^ data[beat]).bit_count() \
                * coeff(bus_name)
        else:
            energy += table.inter_txn_data_hamming * coeff(bus_name)
    energy += (table.beat_toggles(valid_name)
               * transaction.burst_length * coeff(valid_name))
    # minimum occupancy: one address cycle plus one cycle per beat
    energy += ((1 + transaction.burst_length)
               * table.clock_energy_per_cycle_pj)
    return energy


class EnergyGovernor:
    """Defers new bus work when its projected draw would breach the
    supply budget (dynamic power management, graceful degradation).

    Masters and the DMA engine call :meth:`may_issue` before issuing a
    transaction they have not started yet; a False verdict defers the
    work to a later cycle, by which time field harvesting has rebuilt
    headroom.  *margin_nj* keeps a safety buffer above the brownout
    threshold, covering the clock baseline and estimation error during
    the transaction's flight.
    """

    def __init__(self, supply: PowerSupply,
                 table: CharacterizationTable,
                 margin_nj: float = 0.0) -> None:
        if margin_nj < 0:
            raise ValueError("margin_nj must be >= 0")
        self.supply = supply
        self.table = table
        self.margin_pj = margin_nj * PJ_PER_NJ
        self.deferrals = 0
        self.grants = 0

    def projected_cost_pj(self, transaction: Transaction) -> float:
        return estimate_transaction_energy_pj(self.table, transaction)

    def may_issue(self, transaction: Transaction) -> bool:
        cost = self.projected_cost_pj(transaction)
        if self.supply.headroom_pj() - cost >= self.margin_pj:
            self.grants += 1
            return True
        self.deferrals += 1
        return False


class PowerDomain:
    """Kernel process wiring a :class:`PowerSupply` to a running bus.

    Samples the power model into the supply once per rising clock edge
    (the cycle the bus booked on the preceding falling edge).  For
    layer-2 models the per-cycle clock baseline is folded in first via
    ``account_cycles``, so the supply sees the same totals the
    experiments report.  With *halt_on_power_loss* the first
    :class:`PowerLossEvent` powers the whole simulator off — the
    whole-card tear the anti-tearing journal must survive.
    """

    def __init__(self, simulator, clock, bus, supply: PowerSupply,
                 name: str = "power_domain",
                 halt_on_power_loss: bool = True) -> None:
        from repro.kernel import Module  # late: avoid import cycles

        self.simulator = simulator
        self.bus = bus
        self.supply = supply
        self.halt_on_power_loss = halt_on_power_loss
        self._account_cycles = getattr(supply.power_model,
                                       "account_cycles", None)
        self._module = Module(simulator, name)
        self._module.method(self._on_posedge, name="sample",
                            sensitive=[clock.posedge_event],
                            dont_initialize=True)

    def _on_posedge(self) -> None:
        if self.simulator.powered_off:
            return
        if self._account_cycles is not None:
            self._account_cycles(self.bus.cycle)
        self.supply.step(self.bus.cycle)
        if (self.halt_on_power_loss and self.supply.powered_down):
            event = self.supply.power_losses[0]
            self.simulator.power_off(
                f"supply exhausted at cycle {event.cycle} "
                f"({event.charge_nj:.2f} nJ left)")
