"""Power-analysis (SPA/DPA) leakage metrics.

The paper's second motivation for accurate power-over-time estimation
is resistance against simple and differential power analysis (§1):
"Estimation of power consumption over time is important to reduce the
probability of a successful power analysis attack."  This module makes
that motivation executable: given per-cycle power traces produced by
the layer-1 model (or the gate-level estimator), it quantifies how
distinguishable secret-dependent operations are.

This is the paper's future-work direction implemented as an extension;
the metrics are the standard first-order ones:

* SPA distinguishability — normalised maximum trace difference,
* DPA difference of means — split traces by a selection bit,
* CPA correlation — Pearson correlation of a leakage hypothesis
  (e.g. Hamming weight of key-dependent data) against each cycle.
"""

from __future__ import annotations

import math
import typing

Trace = typing.Sequence[float]


def _check_equal_length(traces: typing.Sequence[Trace]) -> int:
    lengths = {len(trace) for trace in traces}
    if len(lengths) != 1:
        raise ValueError(f"traces differ in length: {sorted(lengths)}")
    return lengths.pop()


def spa_distinguishability(trace_a: Trace, trace_b: Trace) -> float:
    """Normalised maximum pointwise difference of two traces in [0, 1].

    0 means the operations are indistinguishable by simple power
    analysis; values near 1 mean a single trace reveals which operation
    ran.
    """
    _check_equal_length([trace_a, trace_b])
    peak = max(max(trace_a, default=0.0), max(trace_b, default=0.0))
    if peak <= 0.0:
        return 0.0
    worst = max(abs(a - b) for a, b in zip(trace_a, trace_b))
    return worst / peak


def dpa_difference_of_means(traces: typing.Sequence[Trace],
                            selection_bits: typing.Sequence[int]
                            ) -> typing.List[float]:
    """Classic DPA: per-cycle difference of the two selection groups.

    *selection_bits* holds the attacker's 0/1 hypothesis per trace; the
    result is the per-cycle mean(group 1) - mean(group 0).  Peaks
    indicate cycles whose power depends on the selected bit.
    """
    if len(traces) != len(selection_bits):
        raise ValueError("one selection bit per trace required")
    length = _check_equal_length(traces)
    ones = [t for t, bit in zip(traces, selection_bits) if bit]
    zeros = [t for t, bit in zip(traces, selection_bits) if not bit]
    if not ones or not zeros:
        raise ValueError("both selection groups must be non-empty")
    result = []
    for cycle in range(length):
        mean_one = sum(t[cycle] for t in ones) / len(ones)
        mean_zero = sum(t[cycle] for t in zeros) / len(zeros)
        result.append(mean_one - mean_zero)
    return result


def _pearson(xs: typing.Sequence[float], ys: typing.Sequence[float]
             ) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def cpa_correlation(traces: typing.Sequence[Trace],
                    hypothesis: typing.Sequence[float]
                    ) -> typing.List[float]:
    """Correlation power analysis: per-cycle Pearson r against a
    leakage hypothesis (one value per trace, e.g. Hamming weights)."""
    if len(traces) != len(hypothesis):
        raise ValueError("one hypothesis value per trace required")
    if len(traces) < 3:
        raise ValueError("need at least 3 traces for correlation")
    length = _check_equal_length(traces)
    return [
        _pearson([trace[cycle] for trace in traces], hypothesis)
        for cycle in range(length)
    ]


def max_abs(values: typing.Sequence[float]) -> float:
    """Convenience: the attack figure of merit max |value|."""
    return max((abs(v) for v in values), default=0.0)
