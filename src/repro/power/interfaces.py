"""The power interface of the bus models (§3.3).

Layer 1 exposes both methods — "a method returning the energy
dissipated during the last clock cycle and a second method which
returns the dissipated energy since the last method call" — enabling
cycle-accurate energy profiling.  Layer 2 "comprises only one method to
get the energy consumed since the last method call", because its
energy is booked per finished phase, not per cycle.
"""

from __future__ import annotations

import abc


class PowerInterface(abc.ABC):
    """Accumulated-energy view every energy model provides."""

    @property
    @abc.abstractmethod
    def total_energy_pj(self) -> float:
        """Total energy booked since construction (pJ)."""

    @abc.abstractmethod
    def energy_since_last_call_pj(self) -> float:
        """Energy since the previous invocation of this method (pJ)."""


class CycleAccuratePowerInterface(PowerInterface):
    """Adds the per-cycle method only layer 1 can support."""

    @abc.abstractmethod
    def energy_last_cycle_pj(self) -> float:
        """Energy dissipated during the most recent clock cycle (pJ)."""


class EnergyAccumulator:
    """Small helper implementing the since-last-call bookkeeping."""

    def __init__(self) -> None:
        self._total = 0.0
        self._last_sample = 0.0

    def add(self, energy_pj: float) -> None:
        self._total += energy_pj

    @property
    def total(self) -> float:
        return self._total

    def since_last_call(self) -> float:
        delta = self._total - self._last_sample
        self._last_sample = self._total
        return delta
