"""Per-component power state machines (dynamic power management).

Conti's SystemC DPM work models every peripheral with a Power State
Machine: a handful of operating states, each with its own power level,
connected by transitions that themselves cost energy and time.  This
module reconstructs that layer for the smart card platform:

* :class:`PowerState` — ACTIVE / IDLE / CLOCK_GATED / SLEEP, ordered by
  depth (deeper states spend less per cycle, cost more to leave);
* :class:`StateProfile` — the per-state numbers: a *scale* applied to
  the component's dynamic event energy, a per-cycle residency cost, and
  the entry/exit energy and wake latency of reaching/leaving the state;
* :class:`PowerStateMachine` — the per-component instance: tracks the
  current state, books residency and transition energy into its own
  ledger, counts per-state residency cycles, and answers the two
  questions peripherals ask every cycle (``event_scale`` — how much
  does a dynamic event cost right now; ``clock_running`` — may my
  ``tick()`` advance at all);
* :class:`CardPowerModel` — a composite
  :class:`~repro.power.PowerInterface` merging the bus model's energy
  with peripheral ledgers and PSM overhead ledgers, so one
  :class:`~repro.power.PowerSupply` drains *everything*: the same
  composite works in front of layer 1, layer 2 or the gate-level
  estimate, which is what keeps DPM priced consistently across the
  abstraction layers.

Wake latency is modelled the way the EEPROM models its programming-busy
window: the peripheral's ``wait_states`` property adds the PSM's wake
latency when an access arrives in a gated or sleeping state.  Layer 1
samples the property per beat, layer 2 snapshots it at request
creation (§3.2) — both layers therefore see the same wake stall.

Everything here is strictly opt-in: a peripheral without an attached
PSM books energy through the exact pre-DPM code path, bit for bit.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from .interfaces import PowerInterface


class PowerState(enum.IntEnum):
    """DPM states, ordered by depth (higher = deeper = cheaper/cycle)."""

    ACTIVE = 0        # clocked, working
    IDLE = 1          # clocked, quiescent datapath
    CLOCK_GATED = 2   # functional clock stopped, state retained
    SLEEP = 3         # power-gated except retention, slow wake


@dataclasses.dataclass(frozen=True)
class StateProfile:
    """The numbers of one PSM state.

    Parameters
    ----------
    event_scale:
        Multiplier applied to the component's dynamic event energy
        booked while resident in this state (clock-tree and datapath
        activity shrink as the state deepens).
    cycle_cost_pj:
        Residency cost booked to the PSM ledger every cycle spent in
        this state (retention / leakage floor).
    entry_pj / exit_pj:
        Energy of entering this state from a shallower one, and of
        waking from it back to ACTIVE (isolation cells, PLL relock...).
    wake_cycles:
        Extra wait states an access arriving in this state suffers
        before the component can serve it.
    """

    event_scale: float = 1.0
    cycle_cost_pj: float = 0.0
    entry_pj: float = 0.0
    exit_pj: float = 0.0
    wake_cycles: int = 0

    def __post_init__(self) -> None:
        for field in ("event_scale", "cycle_cost_pj", "entry_pj",
                      "exit_pj"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")
        if self.wake_cycles < 0:
            raise ValueError("wake_cycles must be >= 0")


#: Default profiles, scaled to the peripheral ledgers' magnitudes
#: (UART idle: 0.02 pJ/cycle, timer tick: 0.05 pJ): clock gating pays
#: for itself after tens of idle cycles, sleep after hundreds.
DEFAULT_STATE_PROFILES: typing.Dict[PowerState, StateProfile] = {
    PowerState.ACTIVE: StateProfile(),
    PowerState.IDLE: StateProfile(event_scale=0.6),
    PowerState.CLOCK_GATED: StateProfile(
        event_scale=0.0, cycle_cost_pj=0.004, entry_pj=0.8,
        exit_pj=1.2, wake_cycles=2),
    PowerState.SLEEP: StateProfile(
        event_scale=0.0, cycle_cost_pj=0.001, entry_pj=2.5,
        exit_pj=6.0, wake_cycles=8),
}


class PowerStateMachine:
    """One component's DPM state, ledger and residency statistics.

    The PSM never decides anything by itself: a governor policy calls
    :meth:`request` to deepen the state, bus accesses and observed
    activity call :meth:`wake` / :meth:`notify_activity` to leave it.
    All DPM overhead (residency floors, entry/exit energy) lands in
    :attr:`energy_pj`, separate from the component's own ledger, so a
    report can show what the management itself cost.
    """

    def __init__(self, name: str = "psm",
                 profiles: typing.Optional[typing.Mapping[
                     PowerState, StateProfile]] = None) -> None:
        self.name = name
        self.profiles: typing.Dict[PowerState, StateProfile] = dict(
            DEFAULT_STATE_PROFILES)
        if profiles:
            self.profiles.update(profiles)
        for state in PowerState:
            if state not in self.profiles:
                raise ValueError(f"missing profile for {state.name}")
        self.state = PowerState.ACTIVE
        self.energy_pj = 0.0          # DPM overhead ledger
        self.transition_energy_pj = 0.0
        self.residency_energy_pj = 0.0
        self.idle_cycles = 0          # consecutive cycles without activity
        self.residency_cycles: typing.Dict[PowerState, int] = {
            state: 0 for state in PowerState}
        self.transition_counts: typing.Dict[
            typing.Tuple[PowerState, PowerState], int] = {}
        self.wakes = 0
        self.forced_sleeps = 0
        #: idle-period lengths observed at the last few wake-ups
        #: (bounded history for predictive policies)
        self.idle_history: typing.List[int] = []

    # -- the two per-cycle questions peripherals ask ----------------------

    @property
    def profile(self) -> StateProfile:
        return self.profiles[self.state]

    @property
    def clock_running(self) -> bool:
        """Whether the component's functional clock is running (its
        ``tick()`` may advance)."""
        return self.state in (PowerState.ACTIVE, PowerState.IDLE)

    def event_scale(self) -> float:
        """Multiplier for dynamic event energy booked right now."""
        return self.profiles[self.state].event_scale

    # -- transitions -------------------------------------------------------

    def _book_transition(self, target: PowerState,
                         energy_pj: float) -> None:
        key = (self.state, target)
        self.transition_counts[key] = \
            self.transition_counts.get(key, 0) + 1
        self.energy_pj += energy_pj
        self.transition_energy_pj += energy_pj
        self.state = target

    def request(self, target: PowerState, *, forced: bool = False) -> bool:
        """Governor side: move to a *deeper* state.

        Deepening books the target's entry energy.  Requests to the
        current or a shallower state are ignored (waking is the
        component's business, via :meth:`wake`).  Returns whether a
        transition happened.
        """
        if target <= self.state:
            return False
        self._book_transition(target, self.profiles[target].entry_pj)
        if forced:
            self.forced_sleeps += 1
        return True

    def wake(self) -> int:
        """Component side: an access (or activity) needs the device.

        Books the exit energy of the current state and returns the wake
        latency in cycles (extra wait states the in-flight access
        suffers).  Waking from ACTIVE/IDLE is free and instantaneous.
        """
        if self.state is PowerState.ACTIVE:
            return 0
        profile = self.profiles[self.state]
        latency = profile.wake_cycles
        self._book_transition(PowerState.ACTIVE, profile.exit_pj)
        if latency or profile.exit_pj:
            self.wakes += 1
        if self.idle_cycles:
            self.idle_history.append(self.idle_cycles)
            del self.idle_history[:-16]
        self.idle_cycles = 0
        return latency

    def notify_activity(self) -> None:
        """The component did real work this cycle: wake if needed and
        restart the idle counter."""
        if self.state is not PowerState.ACTIVE:
            self.wake()
        self.idle_cycles = 0

    # -- per-cycle accounting ---------------------------------------------

    def tick(self, busy: bool) -> None:
        """Advance one clock cycle: book residency, track idleness."""
        profile = self.profiles[self.state]
        if profile.cycle_cost_pj:
            self.energy_pj += profile.cycle_cost_pj
            self.residency_energy_pj += profile.cycle_cost_pj
        self.residency_cycles[self.state] += 1
        if busy:
            self.notify_activity()
        else:
            self.idle_cycles += 1

    # -- reporting ---------------------------------------------------------

    def mean_idle_period(self) -> typing.Optional[float]:
        """Mean of the recorded idle-period history (None when empty)."""
        if not self.idle_history:
            return None
        return sum(self.idle_history) / len(self.idle_history)

    def __repr__(self) -> str:
        return (f"PowerStateMachine({self.name!r}, {self.state.name}, "
                f"{self.energy_pj:.2f} pJ overhead)")


class CardPowerModel(PowerInterface):
    """Composite power model: bus energy + ledgers, one drain stream.

    Merges the bus power model (layer 1, layer 2 — or ``None`` for
    gate-level platforms whose energy is estimated offline) with any
    number of *ledgers* — objects exposing an ``energy_pj`` attribute:
    peripherals, :class:`PowerStateMachine` overhead, anything booked
    in picojoules.  The composite is what a
    :class:`~repro.power.PowerSupply` should drain on a DPM-managed
    card, so peripheral activity, PSM transitions and bus traffic all
    deplete the same capacitor.

    ``account_cycles`` forwards to the bus model when it has one
    (layer 2's per-cycle clock baseline), so
    :class:`~repro.power.PowerDomain` keeps working unchanged.
    """

    def __init__(self, bus_model: typing.Optional[PowerInterface],
                 ledgers: typing.Sequence[typing.Any] = ()) -> None:
        self.bus_model = bus_model
        self.ledgers = list(ledgers)
        self._last_sample = 0.0
        bus_account = getattr(bus_model, "account_cycles", None)
        if bus_account is not None:
            # expose the layer-2 baseline hook only when the bus model
            # has one — PowerDomain getattr-probes for it
            self.account_cycles = bus_account

    def add_ledger(self, ledger: typing.Any) -> None:
        """Track another ``energy_pj`` ledger (idempotent)."""
        if ledger not in self.ledgers:
            self.ledgers.append(ledger)

    @property
    def total_energy_pj(self) -> float:
        total = (self.bus_model.total_energy_pj
                 if self.bus_model is not None else 0.0)
        for ledger in self.ledgers:
            total += ledger.energy_pj
        return total

    def energy_since_last_call_pj(self) -> float:
        total = self.total_energy_pj
        delta = total - self._last_sample
        self._last_sample = total
        return delta
