"""Technology calibration: pricing the card at other process points.

The characterisation table is extracted at one technology point (the
paper's 0.25 um smart card process at nominal supply).  Substrate-level
power emulation work (Coburn et al., PAPERS.md) shows the same
behavioural model can be re-priced for other implementation targets by
scaling the per-event coefficients; this module provides that scaling
as a small calibrated grid — process node x supply voltage -> energy
scale factor relative to the reference point — with bilinear
interpolation between grid points.

The grid entries follow first-order CMOS scaling (switched capacitance
proportional to feature size, energy proportional to C * Vdd^2) with
small per-node deviations standing in for the extraction noise a real
re-characterisation would show — which is exactly why the table
interpolates measured-style entries instead of evaluating the closed
formula.

:meth:`TechnologyTable.calibrate` feeds the factor straight into
:meth:`~repro.power.CharacterizationTable.scaled`, so every energy
model (layer 1, layer 2, the governor's a-priori estimates) prices the
new technology point without any other change.
"""

from __future__ import annotations

import dataclasses
import typing

from .table import CharacterizationTable


@dataclasses.dataclass(frozen=True)
class TechnologyPoint:
    """One calibrated grid entry."""

    node_nm: float
    vdd: float
    scale: float

    def __post_init__(self) -> None:
        if self.node_nm <= 0 or self.vdd <= 0 or self.scale <= 0:
            raise ValueError("node_nm, vdd and scale must be positive")


class TechnologyTable:
    """Energy scale factors over a (process node, Vdd) grid.

    The grid must be rectangular: every listed node paired with every
    listed voltage.  Lookups bilinearly interpolate inside the grid
    (linear in node, linear in Vdd^2 — the physical axis of switching
    energy) and clamp outside it.
    """

    def __init__(self, points: typing.Sequence[TechnologyPoint],
                 reference_node_nm: float,
                 reference_vdd: float) -> None:
        if not points:
            raise ValueError("technology table needs at least one point")
        self.nodes = sorted({p.node_nm for p in points})
        self.vdds = sorted({p.vdd for p in points})
        self._grid: typing.Dict[typing.Tuple[float, float], float] = {
            (p.node_nm, p.vdd): p.scale for p in points}
        missing = [(n, v) for n in self.nodes for v in self.vdds
                   if (n, v) not in self._grid]
        if missing:
            raise ValueError(
                f"technology grid is not rectangular; missing {missing}")
        self.reference_node_nm = reference_node_nm
        self.reference_vdd = reference_vdd

    @staticmethod
    def _bracket(axis: typing.Sequence[float], value: float
                 ) -> typing.Tuple[float, float, float]:
        """Neighbours of *value* on *axis* plus the blend weight,
        clamped to the axis ends."""
        if value <= axis[0]:
            return axis[0], axis[0], 0.0
        if value >= axis[-1]:
            return axis[-1], axis[-1], 0.0
        for low, high in zip(axis, axis[1:]):
            if low <= value <= high:
                weight = (value - low) / (high - low)
                return low, high, weight
        raise AssertionError("unreachable: axis is sorted")

    def scale_factor(self, node_nm: float, vdd: float) -> float:
        """Interpolated energy scale factor at (*node_nm*, *vdd*)."""
        if node_nm <= 0 or vdd <= 0:
            raise ValueError("node_nm and vdd must be positive")
        n_lo, n_hi, n_w = self._bracket(self.nodes, node_nm)
        # interpolate on the Vdd^2 axis: energy is linear in V^2, so
        # the blend between calibrated voltages follows the physics
        squared = [v * v for v in self.vdds]
        v_lo2, v_hi2, v_w = self._bracket(squared, vdd * vdd)
        v_lo = self.vdds[squared.index(v_lo2)]
        v_hi = self.vdds[squared.index(v_hi2)]

        def node_blend(voltage: float) -> float:
            low = self._grid[(n_lo, voltage)]
            high = self._grid[(n_hi, voltage)]
            return low + (high - low) * n_w

        at_lo = node_blend(v_lo)
        at_hi = node_blend(v_hi)
        return at_lo + (at_hi - at_lo) * v_w

    def calibrate(self, table: CharacterizationTable, node_nm: float,
                  vdd: float) -> CharacterizationTable:
        """A characterisation table re-priced at (*node_nm*, *vdd*)."""
        factor = self.scale_factor(node_nm, vdd)
        calibrated = table.scaled(factor)
        calibrated.source = (f"{table.source} @ {node_nm:g} nm / "
                             f"{vdd:g} V (x{factor:.3f})")
        # the scaled copy starts with an empty LUT memo, but recalibrate
        # explicitly anyway: callers that re-point an existing model at
        # the calibrated coefficients in place must never see a stale
        # transition-energy LUT (see CharacterizationTable.lut_version)
        calibrated.invalidate_luts()
        return calibrated

    def corners(self) -> typing.List[TechnologyPoint]:
        """All calibrated grid points, ordered by (node, vdd)."""
        return [TechnologyPoint(n, v, self._grid[(n, v)])
                for n in self.nodes for v in self.vdds]


def default_technology_table() -> TechnologyTable:
    """Calibration grid around the paper's 250 nm / 3.3 V reference.

    Scale values are first-order CMOS scaling (node/250 * (vdd/3.3)^2)
    nudged by a few percent per node, standing in for the residuals a
    real per-node re-characterisation produces (wire capacitance does
    not shrink as fast as gate capacitance at the small nodes).
    """

    def ideal(node: float, vdd: float) -> float:
        return (node / 250.0) * (vdd / 3.3) ** 2

    deviations = {350.0: 0.97, 250.0: 1.00, 180.0: 1.04, 130.0: 1.09}
    points = [
        TechnologyPoint(node, vdd, round(ideal(node, vdd) * dev, 4))
        for node, dev in deviations.items()
        for vdd in (1.8, 3.3, 5.0)
    ]
    return TechnologyTable(points, reference_node_nm=250.0,
                           reference_vdd=3.3)
