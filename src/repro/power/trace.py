"""Power/energy traces and the Figure-6 sampling profile.

The paper motivates cycle-accurate energy profiling with power-analysis
attacks (§1) and illustrates in Figure 6 how the layer-2 power
interface samples energy: a sample taken at t1 contains the address
phases finished so far; a sample at t2 additionally contains completed
data phases — phases in flight are *not* included.  This module turns
those ideas into data structures the experiments and the SPA/DPA
tooling consume.
"""

from __future__ import annotations

import dataclasses
import typing

from .interfaces import PowerInterface
from .units import average_power_mw, supply_current_ma


class PowerTrace:
    """A per-cycle energy trace (layer 1 / gate level)."""

    def __init__(self, cycle_period_ps: int,
                 energies_pj: typing.Optional[typing.List[float]] = None
                 ) -> None:
        if cycle_period_ps <= 0:
            raise ValueError("cycle period must be positive")
        self.cycle_period_ps = cycle_period_ps
        self.energies_pj: typing.List[float] = list(energies_pj or [])

    def append(self, energy_pj: float) -> None:
        self.energies_pj.append(energy_pj)

    def __len__(self) -> int:
        return len(self.energies_pj)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energies_pj)

    def average_power_mw(self) -> float:
        """Average power over the whole trace (mW)."""
        if not self.energies_pj:
            return 0.0
        return average_power_mw(self.total_energy_pj,
                                len(self) * self.cycle_period_ps)

    def peak_cycle_power_mw(self) -> float:
        """Power of the most energetic single cycle (mW)."""
        if not self.energies_pj:
            return 0.0
        return average_power_mw(max(self.energies_pj),
                                self.cycle_period_ps)

    def peak_supply_current_ma(self, vdd: float = 1.8) -> float:
        """Peak cycle supply current — the contact-less budget check."""
        if not self.energies_pj:
            return 0.0
        return supply_current_ma(max(self.energies_pj),
                                 self.cycle_period_ps, vdd)

    def windowed_average_mw(self, window: int) -> typing.List[float]:
        """Sliding-window average power (mW), stride 1."""
        if window <= 0:
            raise ValueError("window must be positive")
        if window > len(self):
            return []
        result = []
        running = sum(self.energies_pj[:window])
        result.append(average_power_mw(running,
                                       window * self.cycle_period_ps))
        for i in range(window, len(self)):
            running += self.energies_pj[i] - self.energies_pj[i - window]
            result.append(average_power_mw(running,
                                           window * self.cycle_period_ps))
        return result

    def check_current_limit(self, limit_ma: float, window: int,
                            vdd: float = 1.8) -> typing.List[int]:
        """Cycle indices where windowed supply current exceeds the limit.

        Smart card standards cap supply current (the paper cites GSM's
        10 mA at 5 V); this reports violations of such a budget.
        """
        violations = []
        for index, milliwatts in enumerate(self.windowed_average_mw(window)):
            if milliwatts / vdd > limit_ma:
                violations.append(index)
        return violations


@dataclasses.dataclass(frozen=True)
class EnergySample:
    """One invocation of ``energy_since_last_call`` (Figure 6)."""

    cycle: int
    energy_pj: float


class SamplingProfiler:
    """Polls a :class:`PowerInterface` at caller-chosen instants.

    Reproduces the paper's Figure-6 observation: between two sample
    points the layer-2 interface accumulates *finished phases only*, so
    the sampled profile is not cycle-accurate — a data phase still in
    flight at the sample instant lands in the next sample.
    """

    def __init__(self, power_model: PowerInterface) -> None:
        self.power_model = power_model
        self.samples: typing.List[EnergySample] = []

    def sample(self, cycle: int) -> EnergySample:
        """Take a sample now; returns and records it."""
        sample = EnergySample(
            cycle, self.power_model.energy_since_last_call_pj())
        self.samples.append(sample)
        return sample

    @property
    def total_energy_pj(self) -> float:
        return sum(sample.energy_pj for sample in self.samples)

    def as_series(self) -> typing.List[typing.Tuple[int, float]]:
        """(cycle, energy) pairs for plotting/reporting."""
        return [(s.cycle, s.energy_pj) for s in self.samples]
