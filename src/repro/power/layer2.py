"""Layer-2 energy model: analytic per-phase estimation (§3.3).

"The bus process passes the transaction to the corresponding energy
estimation method after the address phase is finished. ... The entire
address phase for a burst read or write is calculated at once.  The
same mechanism is used for the read and write phase."

For each finished phase the model computes the signal transitions the
phase *must* have produced according to the interface specification:

* within a transaction, everything is exact — beat-to-beat data-bus
  Hamming distances are computable from the payload the model holds by
  reference;
* between transactions, the model is blind (it "considers each
  transaction phase on its own but does not consider interactions
  between following transactions"), so it charges characterised
  *average* inter-transaction Hamming distances for the buses and the
  full handshake toggle pattern for every control signal — even when
  consecutive transactions would have kept those lines asserted.

The second point is the documented source of the layer-2
over-estimation the paper reports in Table 2.
"""

from __future__ import annotations

from repro.ec import SignalGroup, Transaction, TransactionKind

from .interfaces import EnergyAccumulator, PowerInterface
from .layer1 import popcount
from .table import CharacterizationTable


class Layer2PowerModel(PowerInterface):
    """Per-phase analytic energy estimation for the layer-2 bus."""

    def __init__(self, table: CharacterizationTable) -> None:
        self.table = table
        self._acc = EnergyAccumulator()
        self.group_energy_pj = {group: 0.0 for group in SignalGroup}
        self.address_phases = 0
        self.data_phases = 0
        self.cycles_estimated = 0

    # ------------------------------------------------------------------
    # hooks invoked by EcBusLayer2 when a phase finishes
    # ------------------------------------------------------------------

    def address_phase_finished(self, transaction: Transaction) -> None:
        """Book the energy of one whole address phase at once."""
        table = self.table
        coeff = table.coefficient
        # address bus: inter-transaction Hamming is unknowable at this
        # layer -> charge the characterised average
        energy = table.inter_txn_address_hamming * coeff("EB_A")
        # control and qualifier lines: the model considers the phase in
        # isolation, so it can only charge the characterised *average*
        # transitions per phase — over-counting on workloads whose
        # phases run more back-to-back than the characterisation
        # stimulus (the paper's documented layer-2 error source)
        for name in ("EB_AValid", "EB_BFirst", "EB_BLast", "EB_ARdy",
                     "EB_Instr", "EB_Write", "EB_Burst", "EB_BE"):
            energy += table.phase_toggles(name) * coeff(name)
        self.address_phases += 1
        self.group_energy_pj[SignalGroup.ADDRESS] += energy
        self._acc.add(energy)

    def data_phase_finished(self, transaction: Transaction) -> None:
        """Book the energy of one whole data phase at once."""
        table = self.table
        coeff = table.coefficient
        if transaction.kind is TransactionKind.DATA_WRITE:
            bus_name, valid_name, err_name = ("EB_WData", "EB_WDRdy",
                                              "EB_WBErr")
        else:
            bus_name, valid_name, err_name = ("EB_RData", "EB_RdVal",
                                              "EB_RBErr")
        # first beat vs whatever was on the bus: characterised average
        energy = table.inter_txn_data_hamming * coeff(bus_name)
        # remaining beats: exact Hamming from the payload (pointer
        # passing makes the whole burst visible at once)
        data = transaction.data or []
        for beat in range(1, transaction.beats_done):
            energy += popcount(data[beat - 1] ^ data[beat]) \
                * coeff(bus_name)
        # valid strobe: characterised average transitions per beat
        energy += (self.table.beat_toggles(valid_name)
                   * transaction.burst_length * coeff(valid_name))
        if transaction.error:
            energy += 2.0 * coeff(err_name)
        self.data_phases += 1
        group = (SignalGroup.WRITE
                 if transaction.kind is TransactionKind.DATA_WRITE
                 else SignalGroup.READ)
        self.group_energy_pj[group] += energy
        self._acc.add(energy)

    def account_cycles(self, cycles: int) -> None:
        """Charge the per-cycle clock baseline for *cycles* cycles.

        Layer 2 has no per-cycle hook, so the harness calls this once
        at the end of a run with the bus's cycle counter.
        """
        if cycles < self.cycles_estimated:
            raise ValueError("cycle counter went backwards")
        delta = cycles - self.cycles_estimated
        self.cycles_estimated = cycles
        energy = delta * self.table.clock_energy_per_cycle_pj
        self.group_energy_pj[SignalGroup.CLOCK] += energy
        self._acc.add(energy)

    # ------------------------------------------------------------------
    # PowerInterface (only the since-last-call method, §3.3)
    # ------------------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        return self._acc.total

    def energy_since_last_call_pj(self) -> float:
        return self._acc.since_last_call()
