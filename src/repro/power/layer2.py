"""Layer-2 energy model: analytic per-phase estimation (§3.3).

"The bus process passes the transaction to the corresponding energy
estimation method after the address phase is finished. ... The entire
address phase for a burst read or write is calculated at once.  The
same mechanism is used for the read and write phase."

For each finished phase the model computes the signal transitions the
phase *must* have produced according to the interface specification:

* within a transaction, everything is exact — beat-to-beat data-bus
  Hamming distances are computable from the payload the model holds by
  reference;
* between transactions, the model is blind (it "considers each
  transaction phase on its own but does not consider interactions
  between following transactions"), so it charges characterised
  *average* inter-transaction Hamming distances for the buses and the
  full handshake toggle pattern for every control signal — even when
  consecutive transactions would have kept those lines asserted.

The second point is the documented source of the layer-2
over-estimation the paper reports in Table 2.

Since PR 10 the per-phase arithmetic is compiled against the table
(same engine-selection knob as layer 1): the address-phase sum and the
error/strobe coefficients are folded into constants once, and the
beat-to-beat Hamming products come from the shared transition-energy
LUTs.  Every folded value is produced by the identical float operations
in the identical order as the live lookups, so totals stay
byte-identical; the ``reference`` backend keeps the uncompiled lookups
for the equivalence suite.  Compiled state is cached against
:attr:`~repro.power.CharacterizationTable.lut_version`, so an in-place
recalibration can never leave stale constants in play.
"""

from __future__ import annotations

import typing

from repro.ec import SignalGroup, Transaction, TransactionKind

from .engine import resolve_backend
from .interfaces import EnergyAccumulator, PowerInterface
from .table import CharacterizationTable

#: (data bus, valid strobe, error strobe, EC LUT index of the bus) per
#: data-phase direction
_READ_CHANNEL = ("EB_RData", "EB_RdVal", "EB_RBErr", 9)
_WRITE_CHANNEL = ("EB_WData", "EB_WDRdy", "EB_WBErr", 12)

#: the address-phase control lines, in the historical accounting order
_ADDR_CONTROLS = ("EB_AValid", "EB_BFirst", "EB_BLast", "EB_ARdy",
                  "EB_Instr", "EB_Write", "EB_Burst", "EB_BE")


class Layer2PowerModel(PowerInterface):
    """Per-phase analytic energy estimation for the layer-2 bus.

    *backend* follows the layer-1 engine selection (``packed`` default,
    ``reference`` for the uncompiled oracle, ``numpy`` behaves like
    ``packed`` here — the per-phase path has no buffer to vectorise);
    ``None`` defers to ``REPRO_ENERGY_BACKEND``.
    """

    def __init__(self, table: CharacterizationTable,
                 backend: typing.Optional[str] = None) -> None:
        self.table = table
        self.backend = resolve_backend(backend)
        self._compiled = self.backend != "reference"
        self._lut_source: typing.Optional[CharacterizationTable] = None
        self._lut_version = -1  # force a compile on first phase
        self._acc = EnergyAccumulator()
        self.group_energy_pj = {group: 0.0 for group in SignalGroup}
        self.address_phases = 0
        self.data_phases = 0
        self.cycles_estimated = 0

    # ------------------------------------------------------------------
    # compiled per-phase constants
    # ------------------------------------------------------------------

    def _recompile(self, table: CharacterizationTable) -> None:
        """Fold the per-phase table lookups into constants.

        Every constant is computed by the same float operations in the
        same order the live path performs per phase — folding them once
        cannot change a bit of any total.
        """
        coeff = table.coefficient
        energy = table.inter_txn_address_hamming * coeff("EB_A")
        for name in _ADDR_CONTROLS:
            energy += table.phase_toggles(name) * coeff(name)
        self._addr_phase_energy = energy
        luts = table.transition_luts()
        self._channels = {}
        for channel in (_READ_CHANNEL, _WRITE_CHANNEL):
            bus_name, valid_name, err_name, lut_index = channel
            self._channels[bus_name] = (
                table.inter_txn_data_hamming * coeff(bus_name),
                luts[lut_index],
                table.beat_toggles(valid_name),
                coeff(valid_name),
                2.0 * coeff(err_name),
            )
        self._lut_source = table
        self._lut_version = table.lut_version

    def _stale(self, table: CharacterizationTable) -> bool:
        return (self._lut_source is not table
                or self._lut_version != table.lut_version)

    # ------------------------------------------------------------------
    # hooks invoked by EcBusLayer2 when a phase finishes
    # ------------------------------------------------------------------

    def address_phase_finished(self, transaction: Transaction) -> None:
        """Book the energy of one whole address phase at once."""
        table = self.table
        if self._compiled:
            if self._stale(table):
                self._recompile(table)
            energy = self._addr_phase_energy
        else:
            coeff = table.coefficient
            # address bus: inter-transaction Hamming is unknowable at
            # this layer -> charge the characterised average
            energy = table.inter_txn_address_hamming * coeff("EB_A")
            # control and qualifier lines: the model considers the
            # phase in isolation, so it can only charge the
            # characterised *average* transitions per phase —
            # over-counting on workloads whose phases run more
            # back-to-back than the characterisation stimulus (the
            # paper's documented layer-2 error source)
            for name in _ADDR_CONTROLS:
                energy += table.phase_toggles(name) * coeff(name)
        self.address_phases += 1
        self.group_energy_pj[SignalGroup.ADDRESS] += energy
        self._acc.add(energy)

    def data_phase_finished(self, transaction: Transaction) -> None:
        """Book the energy of one whole data phase at once."""
        table = self.table
        is_write = transaction.kind is TransactionKind.DATA_WRITE
        data = transaction.data or []
        if self._compiled:
            if self._stale(table):
                self._recompile(table)
            bus_name = "EB_WData" if is_write else "EB_RData"
            (energy, lut, beat_toggles, valid_coeff,
             error_energy) = self._channels[bus_name]
            # first beat vs whatever was on the bus is already folded
            # into the channel constant; remaining beats: exact Hamming
            # from the payload via the shared transition-energy LUT
            for beat in range(1, transaction.beats_done):
                energy += lut[(data[beat - 1] ^ data[beat]).bit_count()]
            energy += (beat_toggles * transaction.burst_length
                       * valid_coeff)
            if transaction.error:
                energy += error_energy
        else:
            coeff = table.coefficient
            channel = _WRITE_CHANNEL if is_write else _READ_CHANNEL
            bus_name, valid_name, err_name, _lut_index = channel
            # first beat vs whatever was on the bus: characterised avg
            energy = table.inter_txn_data_hamming * coeff(bus_name)
            # remaining beats: exact Hamming from the payload (pointer
            # passing makes the whole burst visible at once)
            for beat in range(1, transaction.beats_done):
                energy += (data[beat - 1] ^ data[beat]).bit_count() \
                    * coeff(bus_name)
            # valid strobe: characterised average transitions per beat
            energy += (table.beat_toggles(valid_name)
                       * transaction.burst_length * coeff(valid_name))
            if transaction.error:
                energy += 2.0 * coeff(err_name)
        self.data_phases += 1
        group = SignalGroup.WRITE if is_write else SignalGroup.READ
        self.group_energy_pj[group] += energy
        self._acc.add(energy)

    def account_cycles(self, cycles: int) -> None:
        """Charge the per-cycle clock baseline for *cycles* cycles.

        Layer 2 has no per-cycle hook, so the harness calls this once
        at the end of a run with the bus's cycle counter.
        """
        if cycles < self.cycles_estimated:
            raise ValueError("cycle counter went backwards")
        delta = cycles - self.cycles_estimated
        self.cycles_estimated = cycles
        energy = delta * self.table.clock_energy_per_cycle_pj
        self.group_energy_pj[SignalGroup.CLOCK] += energy
        self._acc.add(energy)

    # ------------------------------------------------------------------
    # PowerInterface (only the since-last-call method, §3.3)
    # ------------------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        return self._acc.total

    def energy_since_last_call_pj(self) -> float:
        return self._acc.since_last_call()
