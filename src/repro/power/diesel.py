"""Gate-level power estimation — the Diesel substitute (§3.3, [10]).

The paper's reference numbers come from Philips' Diesel tool: a
gate-level power estimator attached to the gate-level simulator that
"uses information from the layout about parasitic capacitances and
resistances", "estimates the dissipated energy for each wire and module
on the chip", distinguishes "all combinations of signal transitions
with regard to their signal slopes" and reports "the number of
transitions between false, true and high-impedance".

This module reproduces that behaviour over our substrate:

* interface wires — per-bit layout capacitances from a wire-load
  table; rise and fall transitions carry different energies and
  simultaneous switching within a bundle adds a slope penalty
  (IR-drop slows edges, increasing short-circuit current),
* decoder — every internal net of the synthesised netlist, at its own
  capacitance, including glitch transitions,
* datapath — the bus controller's internal pipeline/mux nets, which
  toggle a configurable number of times per interface bus-bit
  transition (the slave read-data multiplexer, write buffers...),
* control — the bus controller's sequential registers,
* clock — the clock tree load of all sequential elements, charged
  twice per cycle.

The characterisation flow (:mod:`repro.power.characterize`) collapses
the per-wire report into the average-energy-per-transition table the
TLM models consume — exactly the abstraction step the paper describes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import EC_SIGNALS, SIGNALS_BY_NAME

from .units import DEFAULT_VDD, transition_energy_pj

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtl.netlist import Netlist


@dataclasses.dataclass(frozen=True)
class WireLoadModel:
    """Layout parasitics and slope parameters of the bus wiring.

    Per-bit capacitances (fF) reflect the physical structure: address
    and data buses are long top-level routes spanning the die, control
    wires are shorter, and everything inside the bus controller is
    local.  ``rise_factor``/``fall_factor`` model the asymmetry of the
    P/N drive strengths; ``simultaneous_switching_alpha`` adds energy
    when many bits of one bundle switch in the same cycle.
    """

    wire_cap_ff: typing.Mapping[str, float]
    #: internal controller-datapath nets (pipeline registers, slave
    #: multiplexers) toggling per interface bus-bit transition
    datapath_depth: int = 4
    datapath_net_cap_ff: float = 10.0
    register_cap_ff: float = 5.0
    clock_pin_cap_ff: float = 1.6
    clock_wire_cap_ff: float = 90.0
    rise_factor: float = 1.05
    fall_factor: float = 0.95
    simultaneous_switching_alpha: float = 0.0015
    tristate_factor: float = 0.5
    vdd: float = DEFAULT_VDD

    def bit_cap(self, signal_name: str) -> float:
        try:
            return self.wire_cap_ff[signal_name]
        except KeyError:
            raise KeyError(
                f"no wire load for signal {signal_name!r}") from None


def default_wire_load() -> WireLoadModel:
    """Wire loads for the modelled smart card floorplan.

    Calibrated so the bus-interface wiring dominates the subsystem
    (long top-level routes) while the decoder and control logic
    contribute the high-single-digit share the paper's gate-level
    reference attributes to logic the layer-1 model cannot see.
    """
    caps = {
        # address & control group (long top-level routes with one tap
        # per slave plus the security/scrambling buffers smart card
        # buses carry)
        "EB_A": 420.0, "EB_AValid": 280.0, "EB_Instr": 220.0,
        "EB_Write": 220.0, "EB_Burst": 220.0, "EB_BFirst": 200.0,
        "EB_BLast": 200.0, "EB_BE": 240.0, "EB_ARdy": 280.0,
        # read group
        "EB_RData": 460.0, "EB_RdVal": 280.0, "EB_RBErr": 180.0,
        # write group
        "EB_WData": 460.0, "EB_WDRdy": 280.0, "EB_WBErr": 180.0,
    }
    return WireLoadModel(caps)


class InterfaceActivityLog:
    """Per-signal switching statistics of the interface wires.

    Recorded once per cycle from the RTL bus's old/new values; keeps
    rise and fall counts separately and a simultaneity weight
    (sum over cycles of t*(t-1) where t = bits toggling that cycle).
    """

    def __init__(self) -> None:
        self.rises = {spec.name: 0 for spec in EC_SIGNALS}
        self.falls = {spec.name: 0 for spec in EC_SIGNALS}
        self.simultaneity = {spec.name: 0 for spec in EC_SIGNALS}
        self.tristate = {spec.name: 0 for spec in EC_SIGNALS}
        self.cycles = 0

    def record_cycle(self, old: typing.Mapping[str, int],
                     new: typing.Mapping[str, int]) -> None:
        self.cycles += 1
        for name, new_value in new.items():
            toggled = old[name] ^ new_value
            if toggled:
                total = toggled.bit_count()
                rises = (toggled & new_value).bit_count()
                self.rises[name] += rises
                self.falls[name] += total - rises
                self.simultaneity[name] += total * (total - 1)

    def record_tristate(self, signal_name: str, count: int) -> None:
        """Book *count* transitions to/from high impedance."""
        if signal_name not in self.tristate:
            raise KeyError(f"unknown signal {signal_name!r}")
        self.tristate[signal_name] += count

    def transitions(self, signal_name: str) -> int:
        return (self.rises[signal_name] + self.falls[signal_name]
                + self.tristate[signal_name])

    def total_transitions(self) -> int:
        return sum(self.transitions(spec.name) for spec in EC_SIGNALS)


@dataclasses.dataclass
class DieselReport:
    """The estimator's output: energy per wire and per module."""

    wire_energy_pj: typing.Dict[str, float]
    wire_transitions: typing.Dict[str, int]
    module_energy_pj: typing.Dict[str, float]
    glitch_transitions: int
    cycles: int

    @property
    def total_energy_pj(self) -> float:
        return sum(self.module_energy_pj.values())

    def module_share(self, module: str) -> float:
        total = self.total_energy_pj
        return self.module_energy_pj[module] / total if total else 0.0

    def average_energy_per_transition(self, signal_name: str
                                      ) -> typing.Optional[float]:
        """The paper's abstraction: mean pJ per transition of a wire."""
        transitions = self.wire_transitions.get(signal_name, 0)
        if not transitions:
            return None
        return self.wire_energy_pj[signal_name] / transitions

    def format_summary(self) -> str:
        lines = [f"Diesel estimate over {self.cycles} cycles:"]
        for module, energy in sorted(self.module_energy_pj.items()):
            share = 100.0 * self.module_share(module)
            lines.append(f"  {module:<10} {energy:12.2f} pJ ({share:5.1f}%)")
        lines.append(f"  {'total':<10} {self.total_energy_pj:12.2f} pJ")
        lines.append(f"  glitch transitions: {self.glitch_transitions}")
        return "\n".join(lines)


class DieselEstimator:
    """Computes a :class:`DieselReport` from collected activity."""

    def __init__(self, wire_load: typing.Optional[WireLoadModel] = None
                 ) -> None:
        self.wire_load = wire_load or default_wire_load()

    def estimate(self, activity: InterfaceActivityLog,
                 netlists: typing.Sequence["Netlist"] = (),
                 control_register_toggles: int = 0,
                 control_flop_count: int = 0,
                 cycles: typing.Optional[int] = None) -> DieselReport:
        """Turn activity logs into per-wire and per-module energies."""
        load = self.wire_load
        vdd = load.vdd
        cycles = activity.cycles if cycles is None else cycles
        wire_energy: typing.Dict[str, float] = {}
        wire_transitions: typing.Dict[str, int] = {}
        interface_total = 0.0
        for spec in EC_SIGNALS:
            name = spec.name
            base = transition_energy_pj(load.bit_cap(name), vdd)
            energy = (activity.rises[name] * load.rise_factor
                      + activity.falls[name] * load.fall_factor
                      + activity.simultaneity[name]
                      * load.simultaneous_switching_alpha
                      + activity.tristate[name] * load.tristate_factor
                      ) * base
            wire_energy[name] = energy
            wire_transitions[name] = activity.transitions(name)
            interface_total += energy
        # decoder netlists: every internal net at its own capacitance,
        # glitches already included in the transition counts
        decoder_total = 0.0
        glitches = 0
        for netlist in netlists:
            for net in netlist.nets:
                if net.transitions:
                    decoder_total += net.transitions * transition_energy_pj(
                        net.cap_ff, vdd)
                glitches += net.glitches
        # controller datapath: mux/pipeline nets behind the data and
        # address buses switch with every bus-bit transition — visible
        # to the gate-level estimator, invisible to the TLM layers
        datapath_transitions = 0
        for name in ("EB_A", "EB_RData", "EB_WData", "EB_BE"):
            datapath_transitions += (activity.rises[name]
                                     + activity.falls[name])
        datapath_total = (datapath_transitions * load.datapath_depth
                          * transition_energy_pj(load.datapath_net_cap_ff,
                                                 vdd))
        # control registers of the bus controller
        control_total = control_register_toggles * transition_energy_pj(
            load.register_cap_ff, vdd)
        # clock tree: flop clock pins plus the clock route, twice/cycle
        flops = control_flop_count + sum(
            len(netlist.flops) for netlist in netlists)
        clock_cap = flops * load.clock_pin_cap_ff + load.clock_wire_cap_ff
        clock_total = 2 * cycles * transition_energy_pj(clock_cap, vdd)
        modules = {
            "interface": interface_total,
            "decoder": decoder_total,
            "datapath": datapath_total,
            "control": control_total,
            "clock": clock_total,
        }
        return DieselReport(wire_energy, wire_transitions, modules,
                            glitches, cycles)


def signal_width(signal_name: str) -> int:
    """Width of an EC signal bundle (helper for reporting)."""
    return SIGNALS_BY_NAME[signal_name].width
