"""Layer-1 energy model: the transaction-level to RTL adapter (§3.3).

"The power estimation unit is implemented as a dedicated module.  It
defines for each bus interface signal a member variable for the new and
old value.  The new values for all signals are set by the different bus
phases.  The bus process calls the energy calculation method after the
write phase ... Based on these new values and the old signal values bit
transitions can be recognized and energy consumption estimated."

The reconstruction rules below define, for every cycle, the value of
every EC interface wire implied by the bus phases.  The gate-level
model in :mod:`repro.rtl.bus_rtl` drives its real signals by the same
rules, which is what makes the characterisation coefficients
transferable and is verified by the layer-1-vs-RTL equivalence tests.

Reconstruction contract (per cycle):

* Address channel — during an address tenure ``EB_A``/``EB_Instr``/
  ``EB_Write``/``EB_Burst``/``EB_BE`` carry the transaction's values and
  ``EB_AValid`` is high; ``EB_BFirst`` marks the tenure's first cycle,
  ``EB_BLast`` its last; ``EB_ARdy`` is low during slave address wait
  states, high otherwise.  Idle: ``EB_AValid``/framing low, buses hold.
* Read channel — ``EB_RdVal`` pulses with each completing beat while
  ``EB_RData`` carries that beat; ``EB_RBErr`` pulses on error; buses
  hold when idle.
* Write channel — ``EB_WData`` is driven for every active write-beat
  cycle (wait states included); ``EB_WDRdy`` pulses per accepted beat;
  ``EB_WBErr`` pulses on error.
"""

from __future__ import annotations

import typing

from repro.ec import (BusState, EC_SIGNALS, SignalGroup, SlaveResponse,
                      Transaction)

from .interfaces import CycleAccuratePowerInterface, EnergyAccumulator
from .table import CharacterizationTable

_POPCOUNT = [bin(i).count("1") for i in range(1 << 16)]


def popcount(value: int) -> int:
    """Number of set bits (fast path for <= 48-bit signal XORs)."""
    if value < (1 << 16):
        return _POPCOUNT[value]
    count = 0
    while value:
        count += _POPCOUNT[value & 0xFFFF]
        value >>= 16
    return count


class SignalStateRecorder:
    """Optional per-cycle sink receiving the reconstructed signal values.

    Used by the layer-1-vs-RTL equivalence tests, the characterisation
    flow and the SPA/DPA power-trace tooling.
    """

    def __init__(self) -> None:
        self.cycles: typing.List[int] = []
        self.values: typing.List[typing.Dict[str, int]] = []
        self.energies: typing.List[float] = []

    def record(self, cycle: int, values: typing.Dict[str, int],
               energy_pj: float) -> None:
        self.cycles.append(cycle)
        self.values.append(dict(values))
        self.energies.append(energy_pj)

    def __len__(self) -> int:
        return len(self.cycles)


class Layer1PowerModel(CycleAccuratePowerInterface):
    """Cycle-accurate transition-counting energy model for layer 1."""

    #: index of each signal in the value arrays (hot-path layout)
    _INDEX = {spec.name: i for i, spec in enumerate(EC_SIGNALS)}

    def __init__(self, table: CharacterizationTable,
                 recorder: typing.Optional[SignalStateRecorder] = None
                 ) -> None:
        self.table = table
        self.recorder = recorder
        self._sinks: typing.List[typing.Callable[
            [int, typing.Dict[str, int], float], None]] = []
        if recorder is not None:
            self._sinks.append(recorder.record)
        self._acc = EnergyAccumulator()
        self._last_cycle_energy = 0.0
        self._names = [spec.name for spec in EC_SIGNALS]
        self._coeffs = [table.coefficient(spec.name)
                        for spec in EC_SIGNALS]
        self._groups = [spec.group for spec in EC_SIGNALS]
        self.group_energy_pj = {group: 0.0 for group in SignalGroup}
        self._counts = [0] * len(EC_SIGNALS)
        # old and new signal values; reset state: controls low, ARdy high
        self._old = [0] * len(EC_SIGNALS)
        self._new = [0] * len(EC_SIGNALS)
        self._old[self._INDEX["EB_ARdy"]] = 1
        self._new[self._INDEX["EB_ARdy"]] = 1
        self._current_tenure_id: typing.Optional[int] = None

    @property
    def transition_counts(self) -> typing.Dict[str, int]:
        """Per-signal bit-transition counts (reporting view)."""
        return dict(zip(self._names, self._counts))

    def add_signal_sink(self, sink: typing.Callable[
            [int, typing.Dict[str, int], float], None]) -> None:
        """Stream each cycle's committed wire values (and energy) to
        *sink* — the hook online monitors attach through."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    # ------------------------------------------------------------------
    # phase hooks invoked by EcBusLayer1 (exactly one address, one read
    # and one write hook per cycle)
    # ------------------------------------------------------------------

    # signal indices, resolved once for the hot path
    _A = _INDEX["EB_A"]; _AVALID = _INDEX["EB_AValid"]
    _INSTR = _INDEX["EB_Instr"]; _WRITE = _INDEX["EB_Write"]
    _BURST = _INDEX["EB_Burst"]; _BE = _INDEX["EB_BE"]
    _BFIRST = _INDEX["EB_BFirst"]; _BLAST = _INDEX["EB_BLast"]
    _ARDY = _INDEX["EB_ARdy"]
    _RDATA = _INDEX["EB_RData"]; _RDVAL = _INDEX["EB_RdVal"]
    _RBERR = _INDEX["EB_RBErr"]
    _WDATA = _INDEX["EB_WData"]; _WDRDY = _INDEX["EB_WDRdy"]
    _WBERR = _INDEX["EB_WBErr"]

    def address_phase_idle(self) -> None:
        new = self._new
        new[self._AVALID] = 0
        new[self._BFIRST] = 0
        new[self._BLAST] = 0
        new[self._ARDY] = 1
        self._current_tenure_id = None
        # EB_A / EB_Instr / EB_Write / EB_Burst / EB_BE hold their values

    def address_phase_active(self, transaction: Transaction,
                             completing: bool) -> None:
        new = self._new
        first_cycle = self._current_tenure_id != transaction.txn_id
        self._current_tenure_id = (None if completing
                                   else transaction.txn_id)
        new[self._A] = transaction.address
        new[self._AVALID] = 1
        new[self._INSTR] = int(transaction.kind.is_instruction)
        new[self._WRITE] = int(transaction.direction.value == "write")
        new[self._BURST] = int(transaction.is_burst)
        new[self._BE] = transaction.byte_enables(0)
        new[self._BFIRST] = int(first_cycle)
        new[self._BLAST] = int(completing)
        new[self._ARDY] = int(completing)

    def read_phase_idle(self) -> None:
        new = self._new
        new[self._RDVAL] = 0
        new[self._RBERR] = 0
        # EB_RData holds

    def read_phase_active(self, transaction: Transaction,
                          response: SlaveResponse) -> None:
        new = self._new
        if response.state is BusState.OK:
            new[self._RDATA] = response.data
            new[self._RDVAL] = 1
            new[self._RBERR] = 0
        elif response.state is BusState.ERROR:
            new[self._RDVAL] = 0
            new[self._RBERR] = 1
        else:  # WAIT
            new[self._RDVAL] = 0
            new[self._RBERR] = 0

    def write_phase_idle(self) -> None:
        new = self._new
        new[self._WDRDY] = 0
        new[self._WBERR] = 0
        # EB_WData holds

    def write_phase_active(self, transaction: Transaction, data: int,
                           response: SlaveResponse) -> None:
        new = self._new
        new[self._WDATA] = data
        new[self._WDRDY] = int(response.state is BusState.OK)
        new[self._WBERR] = int(response.state is BusState.ERROR)

    def end_of_cycle(self, cycle: int) -> None:
        """Count transitions old -> new and book the cycle's energy."""
        energy = self.table.clock_energy_per_cycle_pj
        self.group_energy_pj[SignalGroup.CLOCK] += energy
        old = self._old
        new = self._new
        if old != new:
            coeffs = self._coeffs
            counts = self._counts
            groups = self._groups
            group_energy = self.group_energy_pj
            pop = popcount
            for index, new_value in enumerate(new):
                toggled = old[index] ^ new_value
                if toggled:
                    transitions = pop(toggled)
                    counts[index] += transitions
                    signal_energy = transitions * coeffs[index]
                    energy += signal_energy
                    group_energy[groups[index]] += signal_energy
                    old[index] = new_value
        self._last_cycle_energy = energy
        self._acc.add(energy)
        if self._sinks:
            values = dict(zip(self._names, new))
            for sink in self._sinks:
                sink(cycle, values, energy)

    # ------------------------------------------------------------------
    # PowerInterface
    # ------------------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        return self._acc.total

    def energy_last_cycle_pj(self) -> float:
        return self._last_cycle_energy

    def energy_since_last_call_pj(self) -> float:
        return self._acc.since_last_call()

    def total_transitions(self) -> int:
        """All bit transitions counted so far, across all signals."""
        return sum(self._counts)
