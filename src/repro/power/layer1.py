"""Layer-1 energy model: the transaction-level to RTL adapter (§3.3).

"The power estimation unit is implemented as a dedicated module.  It
defines for each bus interface signal a member variable for the new and
old value.  The new values for all signals are set by the different bus
phases.  The bus process calls the energy calculation method after the
write phase ... Based on these new values and the old signal values bit
transitions can be recognized and energy consumption estimated."

The reconstruction rules below define, for every cycle, the value of
every EC interface wire implied by the bus phases.  The gate-level
model in :mod:`repro.rtl.bus_rtl` drives its real signals by the same
rules, which is what makes the characterisation coefficients
transferable and is verified by the layer-1-vs-RTL equivalence tests.

Reconstruction contract (per cycle):

* Address channel — during an address tenure ``EB_A``/``EB_Instr``/
  ``EB_Write``/``EB_Burst``/``EB_BE`` carry the transaction's values and
  ``EB_AValid`` is high; ``EB_BFirst`` marks the tenure's first cycle,
  ``EB_BLast`` its last; ``EB_ARdy`` is low during slave address wait
  states, high otherwise.  Idle: ``EB_AValid``/framing low, buses hold.
* Read channel — ``EB_RdVal`` pulses with each completing beat while
  ``EB_RData`` carries that beat; ``EB_RBErr`` pulses on error; buses
  hold when idle.
* Write channel — ``EB_WData`` is driven for every active write-beat
  cycle (wait states included); ``EB_WDRdy`` pulses per accepted beat;
  ``EB_WBErr`` pulses on error.

Since PR 10 the reconstructed wires live packed in one 128-bit python
int per cycle (one lane per signal, see :mod:`repro.power.engine`): the
phase hooks are pure mask arithmetic, and the per-cycle accounting is
delegated to a selectable :class:`~repro.power.engine.TransitionEngine`
backend.  With no per-cycle sinks attached the model defers whole
batches of cycle words and flushes them on the first energy read —
byte-identical results (the engines replay the historical float
operations in the historical order), a fraction of the per-cycle cost.
"""

from __future__ import annotations

import collections.abc
import typing

from repro.ec import (BusState, EC_SIGNALS, SignalGroup, SlaveResponse,
                      Transaction, TransactionKind)

from .engine import (GROUP_INDEX, GROUP_ORDER, LANES, RESET_WORD,
                     TransitionEngine, make_engine, unpack_word)
from .interfaces import CycleAccuratePowerInterface, EnergyAccumulator
from .table import CharacterizationTable

#: deferred-mode flush threshold: cycle words buffered between engine
#: flushes when no per-cycle sink forces eager accounting
FLUSH_CAP = 4096


class SignalValuesView(collections.abc.Mapping):
    """Read-only live mapping over a power model's committed wire values.

    One view is built per model and handed to every per-cycle sink, so
    streaming a cycle costs no dict copy.  The view always shows the
    *current* cycle, decoded lazily from the packed cycle word — sinks
    that keep history must snapshot (see :meth:`snapshot`, used by
    :class:`SignalStateRecorder`).
    """

    __slots__ = ("_model",)

    #: signal name -> (shift, value mask), resolved once
    _FIELDS = {name: (shift, mask >> shift)
               for name, shift, _width, mask in LANES}
    _NAMES = tuple(spec.name for spec in EC_SIGNALS)

    def __init__(self, model: "Layer1PowerModel") -> None:
        self._model = model

    def __getitem__(self, name: str) -> int:
        shift, mask = self._FIELDS[name]
        return (self._model._word >> shift) & mask

    def __iter__(self) -> typing.Iterator[str]:
        return iter(self._NAMES)

    def __len__(self) -> int:
        return len(self._NAMES)

    def snapshot(self) -> typing.Tuple[int, ...]:
        """The current values as an immutable tuple (EC_SIGNALS order)."""
        return unpack_word(self._model._word)


class SignalStateRecorder:
    """Optional per-cycle sink receiving the reconstructed signal values.

    Used by the layer-1-vs-RTL equivalence tests, the characterisation
    flow and the SPA/DPA power-trace tooling.  History is stored as
    value tuples sharing one name table; the dict-per-cycle shape older
    consumers index (``recorder.values[cycle]["EB_A"]``) is materialised
    lazily on first access to :attr:`values`.
    """

    def __init__(self) -> None:
        self.cycles: typing.List[int] = []
        self.energies: typing.List[float] = []
        self._names: typing.Optional[typing.Tuple[str, ...]] = None
        self._snapshots: typing.List[typing.Tuple[int, ...]] = []
        self._values_cache: typing.List[typing.Dict[str, int]] = []

    def record(self, cycle: int, values: typing.Mapping[str, int],
               energy_pj: float) -> None:
        self.cycles.append(cycle)
        if self._names is None:
            self._names = tuple(values)
        snapshot = getattr(values, "snapshot", None)
        if snapshot is not None:
            self._snapshots.append(snapshot())
        else:
            self._snapshots.append(
                tuple(values[name] for name in self._names))
        self.energies.append(energy_pj)

    @property
    def names(self) -> typing.Tuple[str, ...]:
        """Signal names, in recorded order (empty before first cycle)."""
        return self._names or ()

    @property
    def snapshots(self) -> typing.List[typing.Tuple[int, ...]]:
        """Raw per-cycle value tuples, ordered like :attr:`names`."""
        return self._snapshots

    @property
    def values(self) -> typing.List[typing.Dict[str, int]]:
        """Per-cycle ``{signal: value}`` dicts (lazily materialised)."""
        cache = self._values_cache
        snapshots = self._snapshots
        if len(cache) > len(snapshots):
            del cache[:]
        if len(cache) < len(snapshots):
            names = self._names or ()
            cache.extend(dict(zip(names, snapshot))
                         for snapshot in snapshots[len(cache):])
        return cache

    def __len__(self) -> int:
        return len(self.cycles)


# packed-lane constants for the phase hooks, resolved once
_A_MASK = LANES[0][3]
_AVALID = LANES[1][3]
_INSTR = LANES[2][3]
_WRITE = LANES[3][3]
_BURST = LANES[4][3]
_BFIRST = LANES[5][3]
_BLAST = LANES[6][3]
_BE_SHIFT = LANES[7][1]
_BE_MASK = LANES[7][3]
_ARDY = LANES[8][3]
_RDATA_SHIFT = LANES[9][1]
_RDATA_MASK = LANES[9][3]
_RDVAL = LANES[10][3]
_RBERR = LANES[11][3]
_WDATA_SHIFT = LANES[12][1]
_WDATA_MASK = LANES[12][3]
_WDRDY = LANES[13][3]
_WBERR = LANES[14][3]

# per-hook clear masks: the lanes a phase hook rewrites; everything
# else holds its value (the buses' "hold when idle" reconstruction)
_ADDR_IDLE_CLEAR = ~(_AVALID | _BFIRST | _BLAST | _ARDY)
_ADDR_ACTIVE_CLEAR = ~(_A_MASK | _AVALID | _INSTR | _WRITE | _BURST
                       | _BFIRST | _BLAST | _BE_MASK | _ARDY)
_READ_IDLE_CLEAR = ~(_RDVAL | _RBERR)
_READ_OK_CLEAR = ~(_RDATA_MASK | _RDVAL | _RBERR)
_WRITE_IDLE_CLEAR = ~(_WDRDY | _WBERR)
_WRITE_ACTIVE_CLEAR = ~(_WDATA_MASK | _WDRDY | _WBERR)

_INSTRUCTION_READ = TransactionKind.INSTRUCTION_READ
_DATA_WRITE = TransactionKind.DATA_WRITE


class Layer1PowerModel(CycleAccuratePowerInterface):
    """Cycle-accurate transition-counting energy model for layer 1.

    *backend* selects the transition engine (``packed`` default,
    ``reference`` oracle, ``numpy`` bit-slice); ``None`` defers to the
    ``REPRO_ENERGY_BACKEND`` environment variable.  All backends are
    byte-identical; they differ only in throughput.
    """

    #: index of each signal in value tuples (hot-path layout, kept for
    #: introspection compatibility)
    _INDEX = {spec.name: i for i, spec in enumerate(EC_SIGNALS)}

    def __init__(self, table: CharacterizationTable,
                 recorder: typing.Optional[SignalStateRecorder] = None,
                 backend: typing.Optional[str] = None,
                 eager: typing.Optional[bool] = None) -> None:
        self.table = table
        self.recorder = recorder
        self._engine: TransitionEngine = make_engine(backend, table)
        self.backend = self._engine.name
        self._sinks: typing.List[typing.Callable[
            [int, typing.Mapping[str, int], float], None]] = []
        self._acc = EnergyAccumulator()
        self._last_cycle_energy = 0.0
        self._names = [spec.name for spec in EC_SIGNALS]
        self._counts = [0] * len(EC_SIGNALS)
        #: per-group energy accumulators, GROUP_ORDER slots
        self._gvals = [0.0] * len(GROUP_ORDER)
        # packed signal state; reset: controls low, ARdy high
        self._word = RESET_WORD
        self._prev_word = RESET_WORD
        self._pending: typing.List[int] = []
        self._current_tenure_id: typing.Optional[int] = None
        self._view = SignalValuesView(self)
        if recorder is not None:
            self._sinks.append(recorder.record)
        # eager=True forces per-cycle accounting even without sinks
        # (the uncompiled baseline the benchmarks compare to); sinks
        # always imply eager — they observe every cycle as it commits
        self._eager = bool(self._sinks) or bool(eager)

    # ------------------------------------------------------------------
    # deferred accounting plumbing
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        """Account every deferred cycle word (byte-identical replay)."""
        pending = self._pending
        if pending:
            self._pending = []
            self._engine.flush(self, pending)

    @property
    def transition_counts(self) -> typing.Dict[str, int]:
        """Per-signal bit-transition counts (reporting view)."""
        self._flush()
        return dict(zip(self._names, self._counts))

    @property
    def group_energy_pj(self) -> typing.Dict[SignalGroup, float]:
        """Accumulated energy per signal group (reporting view)."""
        self._flush()
        return dict(zip(GROUP_ORDER, self._gvals))

    def add_signal_sink(self, sink: typing.Callable[
            [int, typing.Mapping[str, int], float], None]) -> None:
        """Stream each cycle's committed wire values (and energy) to
        *sink* — the hook online monitors attach through.  Attaching a
        sink switches the model to eager per-cycle accounting."""
        if sink not in self._sinks:
            self._flush()  # sinks must not observe a stale accumulator
            self._sinks.append(sink)
            self._eager = True

    # ------------------------------------------------------------------
    # phase hooks invoked by EcBusLayer1 (exactly one address, one read
    # and one write hook per cycle); pure packed-lane mask arithmetic
    # ------------------------------------------------------------------

    def address_phase_idle(self) -> None:
        # AValid/BFirst/BLast low, ARdy high;
        # EB_A / EB_Instr / EB_Write / EB_Burst / EB_BE hold
        self._word = (self._word & _ADDR_IDLE_CLEAR) | _ARDY
        self._current_tenure_id = None

    def address_phase_active(self, transaction: Transaction,
                             completing: bool) -> None:
        txn_id = transaction.txn_id
        first_cycle = self._current_tenure_id != txn_id
        self._current_tenure_id = None if completing else txn_id
        word = ((self._word & _ADDR_ACTIVE_CLEAR)
                | transaction.address          # lane shift 0
                | _AVALID
                | (transaction._enables << _BE_SHIFT))
        kind = transaction.kind
        if kind is _INSTRUCTION_READ:
            word |= _INSTR
        elif kind is _DATA_WRITE:
            word |= _WRITE
        if transaction.burst_length > 1:
            word |= _BURST
        if first_cycle:
            word |= _BFIRST
        if completing:
            word |= _BLAST | _ARDY
        self._word = word

    def read_phase_idle(self) -> None:
        self._word &= _READ_IDLE_CLEAR  # EB_RData holds

    def read_phase_active(self, transaction: Transaction,
                          response: SlaveResponse) -> None:
        state = response.state
        if state is BusState.OK:
            self._word = ((self._word & _READ_OK_CLEAR)
                          | (response.data << _RDATA_SHIFT) | _RDVAL)
        elif state is BusState.ERROR:
            self._word = (self._word & _READ_IDLE_CLEAR) | _RBERR
        else:  # WAIT
            self._word &= _READ_IDLE_CLEAR

    def write_phase_idle(self) -> None:
        self._word &= _WRITE_IDLE_CLEAR  # EB_WData holds

    def write_phase_active(self, transaction: Transaction, data: int,
                           response: SlaveResponse) -> None:
        word = ((self._word & _WRITE_ACTIVE_CLEAR)
                | (data << _WDATA_SHIFT))
        state = response.state
        if state is BusState.OK:
            word |= _WDRDY
        elif state is BusState.ERROR:
            word |= _WBERR
        self._word = word

    def end_of_cycle(self, cycle: int) -> None:
        """Commit this cycle's packed word to the transition engine.

        Eager mode (per-cycle sinks attached): the cycle is accounted
        immediately and streamed to every sink.  Deferred mode: the
        word is buffered; the engine replays the whole batch — the
        identical float operations in the identical order — on the
        next energy read or at :data:`FLUSH_CAP`.
        """
        if self._eager:
            self._engine.flush(self, (self._word,))
            energy = self._last_cycle_energy
            view = self._view
            for sink in self._sinks:
                sink(cycle, view, energy)
        else:
            pending = self._pending
            pending.append(self._word)
            if len(pending) >= FLUSH_CAP:
                self._flush()

    # ------------------------------------------------------------------
    # PowerInterface
    # ------------------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        self._flush()
        return self._acc.total

    def energy_last_cycle_pj(self) -> float:
        self._flush()
        return self._last_cycle_energy

    def energy_since_last_call_pj(self) -> float:
        self._flush()
        return self._acc.since_last_call()

    def total_transitions(self) -> int:
        """All bit transitions counted so far, across all signals."""
        self._flush()
        return sum(self._counts)
