"""Layer-1 energy model: the transaction-level to RTL adapter (§3.3).

"The power estimation unit is implemented as a dedicated module.  It
defines for each bus interface signal a member variable for the new and
old value.  The new values for all signals are set by the different bus
phases.  The bus process calls the energy calculation method after the
write phase ... Based on these new values and the old signal values bit
transitions can be recognized and energy consumption estimated."

The reconstruction rules below define, for every cycle, the value of
every EC interface wire implied by the bus phases.  The gate-level
model in :mod:`repro.rtl.bus_rtl` drives its real signals by the same
rules, which is what makes the characterisation coefficients
transferable and is verified by the layer-1-vs-RTL equivalence tests.

Reconstruction contract (per cycle):

* Address channel — during an address tenure ``EB_A``/``EB_Instr``/
  ``EB_Write``/``EB_Burst``/``EB_BE`` carry the transaction's values and
  ``EB_AValid`` is high; ``EB_BFirst`` marks the tenure's first cycle,
  ``EB_BLast`` its last; ``EB_ARdy`` is low during slave address wait
  states, high otherwise.  Idle: ``EB_AValid``/framing low, buses hold.
* Read channel — ``EB_RdVal`` pulses with each completing beat while
  ``EB_RData`` carries that beat; ``EB_RBErr`` pulses on error; buses
  hold when idle.
* Write channel — ``EB_WData`` is driven for every active write-beat
  cycle (wait states included); ``EB_WDRdy`` pulses per accepted beat;
  ``EB_WBErr`` pulses on error.
"""

from __future__ import annotations

import collections.abc
import typing

from repro.ec import (BusState, EC_SIGNALS, SignalGroup, SlaveResponse,
                      Transaction)

from .interfaces import CycleAccuratePowerInterface, EnergyAccumulator
from .table import CharacterizationTable


def popcount(value: int) -> int:
    """Number of set bits (``int.bit_count`` with the historic name)."""
    return value.bit_count()


class SignalValuesView(collections.abc.Mapping):
    """Read-only live mapping over a power model's committed wire values.

    One view is built per model and handed to every per-cycle sink, so
    streaming a cycle costs no dict copy.  The view always shows the
    *current* cycle — sinks that keep history must snapshot (see
    :meth:`snapshot`, used by :class:`SignalStateRecorder`).
    """

    __slots__ = ("_names", "_index", "_values")

    def __init__(self, names: typing.Tuple[str, ...],
                 index: typing.Dict[str, int],
                 values: typing.List[int]) -> None:
        self._names = names
        self._index = index
        self._values = values

    def __getitem__(self, name: str) -> int:
        return self._values[self._index[name]]

    def __iter__(self) -> typing.Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def snapshot(self) -> typing.Tuple[int, ...]:
        """The current values as an immutable tuple (EC_SIGNALS order)."""
        return tuple(self._values)


class SignalStateRecorder:
    """Optional per-cycle sink receiving the reconstructed signal values.

    Used by the layer-1-vs-RTL equivalence tests, the characterisation
    flow and the SPA/DPA power-trace tooling.  History is stored as
    value tuples sharing one name table; the dict-per-cycle shape older
    consumers index (``recorder.values[cycle]["EB_A"]``) is materialised
    lazily on first access to :attr:`values`.
    """

    def __init__(self) -> None:
        self.cycles: typing.List[int] = []
        self.energies: typing.List[float] = []
        self._names: typing.Optional[typing.Tuple[str, ...]] = None
        self._snapshots: typing.List[typing.Tuple[int, ...]] = []
        self._values_cache: typing.List[typing.Dict[str, int]] = []

    def record(self, cycle: int, values: typing.Mapping[str, int],
               energy_pj: float) -> None:
        self.cycles.append(cycle)
        if self._names is None:
            self._names = tuple(values)
        snapshot = getattr(values, "snapshot", None)
        if snapshot is not None:
            self._snapshots.append(snapshot())
        else:
            self._snapshots.append(
                tuple(values[name] for name in self._names))
        self.energies.append(energy_pj)

    @property
    def names(self) -> typing.Tuple[str, ...]:
        """Signal names, in recorded order (empty before first cycle)."""
        return self._names or ()

    @property
    def snapshots(self) -> typing.List[typing.Tuple[int, ...]]:
        """Raw per-cycle value tuples, ordered like :attr:`names`."""
        return self._snapshots

    @property
    def values(self) -> typing.List[typing.Dict[str, int]]:
        """Per-cycle ``{signal: value}`` dicts (lazily materialised)."""
        cache = self._values_cache
        snapshots = self._snapshots
        if len(cache) > len(snapshots):
            del cache[:]
        if len(cache) < len(snapshots):
            names = self._names or ()
            cache.extend(dict(zip(names, snapshot))
                         for snapshot in snapshots[len(cache):])
        return cache

    def __len__(self) -> int:
        return len(self.cycles)


class Layer1PowerModel(CycleAccuratePowerInterface):
    """Cycle-accurate transition-counting energy model for layer 1."""

    #: index of each signal in the value arrays (hot-path layout)
    _INDEX = {spec.name: i for i, spec in enumerate(EC_SIGNALS)}

    def __init__(self, table: CharacterizationTable,
                 recorder: typing.Optional[SignalStateRecorder] = None
                 ) -> None:
        self.table = table
        self.recorder = recorder
        self._sinks: typing.List[typing.Callable[
            [int, typing.Dict[str, int], float], None]] = []
        if recorder is not None:
            self._sinks.append(recorder.record)
        self._acc = EnergyAccumulator()
        self._last_cycle_energy = 0.0
        self._names = [spec.name for spec in EC_SIGNALS]
        self._coeffs = [table.coefficient(spec.name)
                        for spec in EC_SIGNALS]
        self._groups = [spec.group for spec in EC_SIGNALS]
        self.group_energy_pj = {group: 0.0 for group in SignalGroup}
        self._counts = [0] * len(EC_SIGNALS)
        # old and new signal values; reset state: controls low, ARdy high
        self._old = [0] * len(EC_SIGNALS)
        self._new = [0] * len(EC_SIGNALS)
        self._old[self._INDEX["EB_ARdy"]] = 1
        self._new[self._INDEX["EB_ARdy"]] = 1
        self._current_tenure_id: typing.Optional[int] = None
        # dirty-index tracking: each phase hook ORs in the bitmask of
        # the indices it wrote, so end_of_cycle only diffs those
        self._touched = 0
        self._view = SignalValuesView(tuple(self._names),
                                      dict(self._INDEX), self._new)

    @property
    def transition_counts(self) -> typing.Dict[str, int]:
        """Per-signal bit-transition counts (reporting view)."""
        return dict(zip(self._names, self._counts))

    def add_signal_sink(self, sink: typing.Callable[
            [int, typing.Dict[str, int], float], None]) -> None:
        """Stream each cycle's committed wire values (and energy) to
        *sink* — the hook online monitors attach through."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    # ------------------------------------------------------------------
    # phase hooks invoked by EcBusLayer1 (exactly one address, one read
    # and one write hook per cycle)
    # ------------------------------------------------------------------

    # signal indices, resolved once for the hot path
    _A = _INDEX["EB_A"]; _AVALID = _INDEX["EB_AValid"]
    _INSTR = _INDEX["EB_Instr"]; _WRITE = _INDEX["EB_Write"]
    _BURST = _INDEX["EB_Burst"]; _BE = _INDEX["EB_BE"]
    _BFIRST = _INDEX["EB_BFirst"]; _BLAST = _INDEX["EB_BLast"]
    _ARDY = _INDEX["EB_ARdy"]
    _RDATA = _INDEX["EB_RData"]; _RDVAL = _INDEX["EB_RdVal"]
    _RBERR = _INDEX["EB_RBErr"]
    _WDATA = _INDEX["EB_WData"]; _WDRDY = _INDEX["EB_WDRdy"]
    _WBERR = _INDEX["EB_WBErr"]

    # per-hook dirty masks (bit i set = value index i may have changed)
    _ADDR_IDLE_MASK = ((1 << _AVALID) | (1 << _BFIRST) | (1 << _BLAST)
                       | (1 << _ARDY))
    _ADDR_ACTIVE_MASK = (_ADDR_IDLE_MASK | (1 << _A) | (1 << _INSTR)
                         | (1 << _WRITE) | (1 << _BURST) | (1 << _BE))
    _READ_IDLE_MASK = (1 << _RDVAL) | (1 << _RBERR)
    _READ_ACTIVE_MASK = _READ_IDLE_MASK | (1 << _RDATA)
    _WRITE_IDLE_MASK = (1 << _WDRDY) | (1 << _WBERR)
    _WRITE_ACTIVE_MASK = _WRITE_IDLE_MASK | (1 << _WDATA)
    _ALL_MASK = (1 << len(EC_SIGNALS)) - 1

    #: mask -> ascending index tuple, shared across instances (at most
    #: eight phase-hook combinations occur in practice)
    _DIRTY_INDICES: typing.Dict[int, typing.Tuple[int, ...]] = {}

    def address_phase_idle(self) -> None:
        new = self._new
        new[self._AVALID] = 0
        new[self._BFIRST] = 0
        new[self._BLAST] = 0
        new[self._ARDY] = 1
        self._touched |= self._ADDR_IDLE_MASK
        self._current_tenure_id = None
        # EB_A / EB_Instr / EB_Write / EB_Burst / EB_BE hold their values

    def address_phase_active(self, transaction: Transaction,
                             completing: bool) -> None:
        new = self._new
        first_cycle = self._current_tenure_id != transaction.txn_id
        self._current_tenure_id = (None if completing
                                   else transaction.txn_id)
        new[self._A] = transaction.address
        new[self._AVALID] = 1
        new[self._INSTR] = int(transaction.kind.is_instruction)
        new[self._WRITE] = int(transaction.direction.value == "write")
        new[self._BURST] = int(transaction.is_burst)
        new[self._BE] = transaction.byte_enables(0)
        new[self._BFIRST] = int(first_cycle)
        new[self._BLAST] = int(completing)
        new[self._ARDY] = int(completing)
        self._touched |= self._ADDR_ACTIVE_MASK

    def read_phase_idle(self) -> None:
        new = self._new
        new[self._RDVAL] = 0
        new[self._RBERR] = 0
        self._touched |= self._READ_IDLE_MASK
        # EB_RData holds

    def read_phase_active(self, transaction: Transaction,
                          response: SlaveResponse) -> None:
        new = self._new
        if response.state is BusState.OK:
            new[self._RDATA] = response.data
            new[self._RDVAL] = 1
            new[self._RBERR] = 0
        elif response.state is BusState.ERROR:
            new[self._RDVAL] = 0
            new[self._RBERR] = 1
        else:  # WAIT
            new[self._RDVAL] = 0
            new[self._RBERR] = 0
        self._touched |= self._READ_ACTIVE_MASK

    def write_phase_idle(self) -> None:
        new = self._new
        new[self._WDRDY] = 0
        new[self._WBERR] = 0
        self._touched |= self._WRITE_IDLE_MASK
        # EB_WData holds

    def write_phase_active(self, transaction: Transaction, data: int,
                           response: SlaveResponse) -> None:
        new = self._new
        new[self._WDATA] = data
        new[self._WDRDY] = int(response.state is BusState.OK)
        new[self._WBERR] = int(response.state is BusState.ERROR)
        self._touched |= self._WRITE_ACTIVE_MASK

    def end_of_cycle(self, cycle: int) -> None:
        """Count transitions old -> new and book the cycle's energy.

        The diff only visits the indices the phase hooks marked dirty
        this cycle (anything untouched still equals its old value), the
        popcount is ``int.bit_count``, and the cycle's energy is
        accumulated locally and committed to the accumulator once.  The
        per-signal accounting below runs in ascending index order with
        one float addition per changed signal — the same operations in
        the same order as the reference scan, so ``transition_counts``
        and ``group_energy_pj`` stay bit-identical.
        """
        energy = self.table.clock_energy_per_cycle_pj
        self.group_energy_pj[SignalGroup.CLOCK] += energy
        old = self._old
        new = self._new
        touched = self._touched
        self._touched = 0
        if old != new:
            if touched == 0:
                # values were poked outside the phase hooks: diff all
                touched = self._ALL_MASK
            indices = self._DIRTY_INDICES.get(touched)
            if indices is None:
                indices = self._DIRTY_INDICES[touched] = tuple(
                    i for i in range(len(EC_SIGNALS))
                    if (touched >> i) & 1)
            coeffs = self._coeffs
            counts = self._counts
            groups = self._groups
            group_energy = self.group_energy_pj
            for index in indices:
                new_value = new[index]
                toggled = old[index] ^ new_value
                if toggled:
                    transitions = toggled.bit_count()
                    counts[index] += transitions
                    signal_energy = transitions * coeffs[index]
                    energy += signal_energy
                    group_energy[groups[index]] += signal_energy
                    old[index] = new_value
            if old != new:
                # a poke outside the phase hooks slipped past the dirty
                # mask: sweep the remaining indices (cold path)
                for index, new_value in enumerate(new):
                    toggled = old[index] ^ new_value
                    if toggled:
                        transitions = toggled.bit_count()
                        counts[index] += transitions
                        signal_energy = transitions * coeffs[index]
                        energy += signal_energy
                        group_energy[groups[index]] += signal_energy
                        old[index] = new_value
        self._last_cycle_energy = energy
        self._acc.add(energy)
        if self._sinks:
            view = self._view
            for sink in self._sinks:
                sink(cycle, view, energy)

    # ------------------------------------------------------------------
    # PowerInterface
    # ------------------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        return self._acc.total

    def energy_last_cycle_pj(self) -> float:
        return self._last_cycle_energy

    def energy_since_last_call_pj(self) -> float:
        return self._acc.since_last_call()

    def total_transitions(self) -> int:
        """All bit transitions counted so far, across all signals."""
        return sum(self._counts)
