"""VCD (Value Change Dump) export of recorded signal traces.

A :class:`~repro.power.SignalStateRecorder` holds the cycle-by-cycle
values of every EC interface wire — from the layer-1 reconstruction or
from the RTL bus.  This module writes them as IEEE-1364 VCD so any
waveform viewer (GTKWave & co.) can display the bus protocol and
cross-check it against the paper's figures.

The energy trace is emitted as an additional ``real`` variable, so the
power profile appears as an analog waveform next to the wires.
"""

from __future__ import annotations

import typing

from repro.ec import EC_SIGNALS

from .layer1 import SignalStateRecorder

#: printable VCD identifier characters
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short unique VCD identifier code for variable *index*."""
    code = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        code = _ID_ALPHABET[digit] + code
    return code


def _binary(value: int, width: int) -> str:
    return format(value & ((1 << width) - 1), f"0{width}b")


def dump_vcd(recorder: SignalStateRecorder,
             clock_period_ps: int = 100_000,
             module_name: str = "ec_bus",
             include_energy: bool = True) -> str:
    """Render the recorded trace as VCD text.

    *clock_period_ps* spaces the samples on the VCD timeline (one
    sample per bus cycle, stamped at the cycle's falling edge).
    """
    lines = [
        "$date repro bus trace $end",
        "$version repro (DATE 2004 reproduction) $end",
        "$timescale 1ps $end",
        f"$scope module {module_name} $end",
    ]
    identifiers: typing.Dict[str, str] = {}
    for index, spec in enumerate(EC_SIGNALS):
        identifiers[spec.name] = _identifier(index)
        lines.append(f"$var wire {spec.width} {identifiers[spec.name]} "
                     f"{spec.name} $end")
    energy_id = _identifier(len(EC_SIGNALS))
    if include_energy:
        lines.append(f"$var real 64 {energy_id} cycle_energy_pj $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    previous: typing.Dict[str, typing.Optional[int]] = {
        spec.name: None for spec in EC_SIGNALS}
    previous_energy: typing.Optional[float] = None
    for sample, (cycle, values) in enumerate(
            zip(recorder.cycles, recorder.values)):
        timestamp = cycle * clock_period_ps
        changes = []
        for spec in EC_SIGNALS:
            value = values[spec.name]
            if value == previous[spec.name]:
                continue
            previous[spec.name] = value
            code = identifiers[spec.name]
            if spec.width == 1:
                changes.append(f"{value & 1}{code}")
            else:
                changes.append(f"b{_binary(value, spec.width)} {code}")
        if include_energy and sample < len(recorder.energies):
            energy = recorder.energies[sample]
            if energy != previous_energy:
                previous_energy = energy
                changes.append(f"r{energy!r} {energy_id}")
        if changes:
            lines.append(f"#{timestamp}")
            lines.extend(changes)
    if recorder.cycles:
        lines.append(f"#{(recorder.cycles[-1] + 1) * clock_period_ps}")
    return "\n".join(lines) + "\n"


def save_vcd(recorder: SignalStateRecorder, path,
             clock_period_ps: int = 100_000,
             module_name: str = "ec_bus",
             include_energy: bool = True) -> None:
    """Write the VCD rendering of *recorder* to *path*."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(dump_vcd(recorder, clock_period_ps, module_name,
                              include_energy))
