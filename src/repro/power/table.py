"""The power characterisation table.

The paper's flow (§3.3, "Power Characterization"): run stimulus through
the gate-level model, let the Diesel estimator report energy per wire,
then "abstract all different transitions and use the average energy per
transition for each signal".  The resulting table — signal name to
average pJ per bit transition, plus a per-cycle clock/sequential
baseline and the layer-2 inter-transaction averages — is the only
information the transaction-level energy models receive.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.ec import SIGNALS_BY_NAME


@dataclasses.dataclass
class CharacterizationTable:
    """Average-energy-per-transition coefficients for the TLM models.

    Attributes
    ----------
    energy_per_transition_pj:
        Signal name -> average energy (pJ) of one bit transition on one
        wire of that signal.
    clock_energy_per_cycle_pj:
        Energy charged every cycle for the clock tree and sequential
        elements of the bus subsystem (toggles regardless of traffic).
    inter_txn_address_hamming:
        Layer-2 estimate of address-bus bits toggling between two
        consecutive address phases (layer 2 cannot see the previous
        transaction, §3.3 "Layer 2 Energy Model").
    inter_txn_data_hamming:
        Layer-2 estimate of data-bus bits toggling between the last
        beat of one data phase and the first of the next.
    source:
        Free-form provenance string (characterisation workload name).
    """

    energy_per_transition_pj: typing.Dict[str, float]
    clock_energy_per_cycle_pj: float = 0.0
    inter_txn_address_hamming: float = 0.0
    inter_txn_data_hamming: float = 0.0
    #: layer-2 control model: average transitions per *address phase*
    #: for each address-group control signal.  Layer 2 considers each
    #: phase in isolation, so it can only apply such per-phase
    #: averages; on workloads whose phases are more back-to-back than
    #: the characterisation stimulus these averages over-count.
    address_phase_toggles: typing.Dict[str, float] = dataclasses.field(
        default_factory=dict)
    #: layer-2 control model: average transitions per *data beat* for
    #: the data-valid strobes.
    data_beat_toggles: typing.Dict[str, float] = dataclasses.field(
        default_factory=dict)
    source: str = "unspecified"

    #: structural worst case used when a signal was not characterised:
    #: one assert/deassert pair per phase or beat
    DEFAULT_PHASE_TOGGLES = 2.0

    def __post_init__(self) -> None:
        for name, value in self.energy_per_transition_pj.items():
            if name not in SIGNALS_BY_NAME:
                raise KeyError(f"unknown EC signal in table: {name!r}")
            if value < 0:
                raise ValueError(f"negative coefficient for {name!r}")
        if self.clock_energy_per_cycle_pj < 0:
            raise ValueError("negative clock energy")
        # LUT memo state lives outside the dataclass fields so asdict /
        # to_json round-trips and equality stay coefficient-only
        self._lut_cache: typing.Optional[tuple] = None
        self.lut_version = 0

    # -- transition-energy LUTs ----------------------------------------------

    def transition_luts(self) -> tuple:
        """Per-signal transition-energy LUTs, EC_SIGNALS index order.

        ``luts[i][t]`` is ``t * coefficient(signal_i)`` — the identical
        float product the per-cycle accounting historically computed,
        precomputed once per signal for every possible transition count
        (0 .. signal width).  Memoized; consumers must key their caches
        on :attr:`lut_version` and re-fetch after
        :meth:`invalidate_luts`.
        """
        cache = self._lut_cache
        if cache is None:
            from repro.ec import EC_SIGNALS
            cache = tuple(
                tuple(t * self.coefficient(spec.name)
                      for t in range(spec.width + 1))
                for spec in EC_SIGNALS)
            self._lut_cache = cache
        return cache

    def invalidate_luts(self) -> None:
        """Drop the memoized LUTs after an in-place recalibration.

        Bumps :attr:`lut_version` so every engine holding derived
        tables rebuilds them on its next accounting flush — a stale
        LUT after recalibration is thereby impossible.
        """
        self._lut_cache = None
        self.lut_version += 1

    def coefficient(self, signal_name: str) -> float:
        """pJ per bit transition of *signal_name* (0.0 if not listed)."""
        return self.energy_per_transition_pj.get(signal_name, 0.0)

    def phase_toggles(self, signal_name: str) -> float:
        """Average transitions of a control signal per address phase."""
        return self.address_phase_toggles.get(
            signal_name, self.DEFAULT_PHASE_TOGGLES)

    def beat_toggles(self, signal_name: str) -> float:
        """Average transitions of a strobe signal per data beat."""
        return self.data_beat_toggles.get(
            signal_name, self.DEFAULT_PHASE_TOGGLES)

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CharacterizationTable":
        payload = json.loads(text)
        return cls(**payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "CharacterizationTable":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- composition ----------------------------------------------------------

    def scaled(self, factor: float) -> "CharacterizationTable":
        """A copy with all energies scaled (voltage/process scaling)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CharacterizationTable(
            {k: v * factor for k, v in self.energy_per_transition_pj.items()},
            clock_energy_per_cycle_pj=self.clock_energy_per_cycle_pj * factor,
            inter_txn_address_hamming=self.inter_txn_address_hamming,
            inter_txn_data_hamming=self.inter_txn_data_hamming,
            address_phase_toggles=dict(self.address_phase_toggles),
            data_beat_toggles=dict(self.data_beat_toggles),
            source=f"{self.source} (scaled x{factor})",
        )


def default_table() -> CharacterizationTable:
    """A hand-written fallback table with plausible magnitudes.

    Used by examples and tests that do not run the full gate-level
    characterisation flow.  Long top-level bus wires (address, data)
    cost more per transition than short control wires — the relation
    the real layout database showed the paper's authors.
    """
    coefficients = {
        # address & control group
        "EB_A": 0.55, "EB_AValid": 0.30, "EB_Instr": 0.25,
        "EB_Write": 0.25, "EB_Burst": 0.25, "EB_BFirst": 0.22,
        "EB_BLast": 0.22, "EB_BE": 0.28, "EB_ARdy": 0.30,
        # read group
        "EB_RData": 0.60, "EB_RdVal": 0.30, "EB_RBErr": 0.20,
        # write group
        "EB_WData": 0.60, "EB_WDRdy": 0.30, "EB_WBErr": 0.20,
    }
    return CharacterizationTable(
        coefficients,
        clock_energy_per_cycle_pj=1.1,
        inter_txn_address_hamming=5.0,
        inter_txn_data_hamming=10.0,
        source="default (hand-written fallback)",
    )
