"""Energy/power unit helpers.

All energies in this package are picojoules (pJ), all capacitances
femtofarads (fF), all voltages volts.  A full-swing transition of a net
with capacitance C dissipates E = 1/2 * C * V^2 in the driver — the
standard CMOS dynamic-energy model Diesel-style estimators are built
on.  With C in fF and V in volts this conveniently yields pJ * 1e-3,
so :func:`transition_energy_pj` does the bookkeeping once.
"""

from __future__ import annotations

#: Core supply voltage of the modelled smart card process (V).  The
#: paper's platform is a 0.18 um-class secure MCU; 1.8 V core supply.
DEFAULT_VDD = 1.8


def transition_energy_pj(capacitance_ff: float,
                         vdd: float = DEFAULT_VDD) -> float:
    """Energy (pJ) of one full-swing transition of a *capacitance_ff* net.

    >>> round(transition_energy_pj(1000.0), 3)  # 1 pF at 1.8 V
    1.62
    """
    if capacitance_ff < 0:
        raise ValueError(f"negative capacitance: {capacitance_ff}")
    joules = 0.5 * capacitance_ff * 1e-15 * vdd * vdd
    return joules * 1e12


def pj_to_nj(energy_pj: float) -> float:
    """Convert picojoules to nanojoules."""
    return energy_pj / 1e3


def pj_to_uj(energy_pj: float) -> float:
    """Convert picojoules to microjoules."""
    return energy_pj / 1e6


def average_power_mw(energy_pj: float, duration_ps: int) -> float:
    """Average power in milliwatts over *duration_ps*.

    Useful for checking the smart card supply-current budget the paper
    cites (GSM: 10 mA at 5 V).
    """
    if duration_ps <= 0:
        raise ValueError("duration must be positive")
    watts = (energy_pj * 1e-12) / (duration_ps * 1e-12)
    return watts * 1e3


def supply_current_ma(energy_pj: float, duration_ps: int,
                      vdd: float = DEFAULT_VDD) -> float:
    """Average supply current (mA) implied by an energy over a duration."""
    milliwatts = average_power_mw(energy_pj, duration_ps)
    return milliwatts / vdd
