"""Power characterisation: gate level → TLM coefficients (§3.3).

"We do characterization for embedded system design based on this smart
card architecture. ... We abstracted all different transitions and use
the average energy per transition for each signal."

The flow here is the paper's, with our substrate standing in for the
prototype + Diesel:

1. drive a characterisation workload through the signal-level RTL bus,
2. let the Diesel estimator produce per-wire energies and transition
   counts (slopes, simultaneous switching, parasitics included),
3. divide: one *average energy per transition* per interface signal,
4. additionally extract what the layer-2 model needs: the average
   inter-transaction Hamming distances of the address and data buses
   (layer 2 charges these constants because it cannot see the previous
   transaction), and the per-cycle clock baseline.

Everything the characterisation cannot attribute to interface wires —
decoder-internal activity, glitches, control registers — is *absent*
from the table; that is precisely why the layer-1 estimate
under-reports the gate-level reference (Table 2's −x%).
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.ec import EC_SIGNALS, MemoryMap, SIGNALS_BY_NAME
from repro.kernel import Clock, Simulator
from repro.rtl import RtlBus
from repro.tlm import PipelinedMaster, run_script

from .diesel import (DieselEstimator, DieselReport, InterfaceActivityLog,
                     WireLoadModel, default_wire_load)
from .layer1 import SignalStateRecorder
from .table import CharacterizationTable
from .units import transition_energy_pj


@dataclasses.dataclass
class CharacterizationResult:
    """The produced table plus everything used to derive it."""

    table: CharacterizationTable
    report: DieselReport
    activity: InterfaceActivityLog
    cycles: int


def extract_inter_transaction_hamming(
        recorder: SignalStateRecorder,
        completed: typing.Sequence = ()) -> typing.Tuple[float, float]:
    """Mean address/data-bus Hamming distances across transactions.

    Address: between the tenure-start (``EB_BFirst``) values of
    consecutive address phases, read off the wire trace.  Data: between
    the last data word of one transaction and the first data word of
    the next transaction in the same direction — exactly the distance
    the layer-2 model cannot compute because it considers each phase
    in isolation.
    """
    tenure_addresses = [values["EB_A"] for values in recorder.values
                        if values["EB_BFirst"]]
    if len(tenure_addresses) >= 2:
        distances = [(a ^ b).bit_count() for a, b in
                     zip(tenure_addresses, tenure_addresses[1:])]
        address_hamming = sum(distances) / len(distances)
    else:
        address_hamming = 0.0
    from repro.ec import Direction
    data_distances: typing.List[int] = []
    last_word = {Direction.READ: None, Direction.WRITE: None}
    ordered = sorted((t for t in completed if t.data_done_cycle is not None),
                     key=lambda t: (t.data_done_cycle, t.txn_id))
    for txn in ordered:
        if txn.error or not txn.data:
            continue
        previous = last_word[txn.direction]
        if previous is not None:
            data_distances.append((previous ^ txn.data[0]).bit_count())
        last_word[txn.direction] = txn.data[-1]
    data_hamming = (sum(data_distances) / len(data_distances)
                    if data_distances else 0.0)
    return address_hamming, data_hamming


def extract_phase_toggle_averages(
        activity: InterfaceActivityLog,
        recorder: SignalStateRecorder
) -> typing.Tuple[typing.Dict[str, float], typing.Dict[str, float]]:
    """Average control-signal transitions per address phase / data beat.

    These feed the layer-2 control model: per-phase averages are all a
    phase-in-isolation model can apply (§3.3 "does not allow an
    accurate count of transitions for control signals").
    """
    phases = sum(values["EB_BFirst"] for values in recorder.values)
    beats = {"EB_RdVal": sum(v["EB_RdVal"] for v in recorder.values),
             "EB_WDRdy": sum(v["EB_WDRdy"] for v in recorder.values)}
    address_phase_toggles = {}
    if phases:
        for name in ("EB_AValid", "EB_BFirst", "EB_BLast", "EB_ARdy",
                     "EB_Instr", "EB_Write", "EB_Burst", "EB_BE"):
            address_phase_toggles[name] = \
                activity.transitions(name) / phases
    data_beat_toggles = {}
    for name, count in beats.items():
        if count:
            data_beat_toggles[name] = activity.transitions(name) / count
    return address_phase_toggles, data_beat_toggles


def build_table(report: DieselReport, activity: InterfaceActivityLog,
                recorder: SignalStateRecorder,
                wire_load: WireLoadModel,
                source: str,
                completed: typing.Sequence = ()) -> CharacterizationTable:
    """Collapse a Diesel report into the TLM characterisation table."""
    coefficients: typing.Dict[str, float] = {}
    for spec in EC_SIGNALS:
        average = report.average_energy_per_transition(spec.name)
        if average is None:
            # the workload never toggled this wire: fall back to the
            # wire-load base energy (slope factor 1)
            average = transition_energy_pj(wire_load.bit_cap(spec.name),
                                           wire_load.vdd)
        coefficients[spec.name] = average
    clock_per_cycle = (report.module_energy_pj["clock"] / report.cycles
                       if report.cycles else 0.0)
    address_hamming, data_hamming = \
        extract_inter_transaction_hamming(recorder, completed)
    phase_toggles, beat_toggles = \
        extract_phase_toggle_averages(activity, recorder)
    return CharacterizationTable(
        coefficients,
        clock_energy_per_cycle_pj=clock_per_cycle,
        inter_txn_address_hamming=address_hamming,
        inter_txn_data_hamming=data_hamming,
        address_phase_toggles=phase_toggles,
        data_beat_toggles=beat_toggles,
        source=source,
    )


def characterize(memory_map_factory: typing.Callable[[], MemoryMap],
                 script_factory: typing.Callable[[], list],
                 wire_load: typing.Optional[WireLoadModel] = None,
                 source: str = "characterisation run",
                 max_cycles: int = 200_000) -> CharacterizationResult:
    """Run the full characterisation flow.

    *memory_map_factory* builds a fresh memory map (slaves carry
    state); *script_factory* builds the stimulus script.
    """
    wire_load = wire_load or default_wire_load()
    simulator = Simulator("characterisation")
    clock = Clock(simulator, "clk", period=100)
    memory_map = memory_map_factory()
    activity = InterfaceActivityLog()
    recorder = SignalStateRecorder()
    bus = RtlBus(simulator, clock, memory_map, activity_log=activity,
                 recorder=recorder)
    for region in memory_map.regions:
        # dynamic slaves (EEPROM busy windows) must follow THIS bus
        if hasattr(region.slave, "bind_cycle_source"):
            region.slave.bind_cycle_source(lambda: bus.cycle)
    master = PipelinedMaster(simulator, clock, bus, script_factory())
    run_script(simulator, master, max_cycles, clock)
    estimator = DieselEstimator(wire_load)
    report = estimator.estimate(
        activity, netlists=[bus.decoder.netlist],
        control_register_toggles=bus.control_register_toggles,
        control_flop_count=bus.control_flop_count,
        cycles=bus.cycle)
    table = build_table(report, activity, recorder, wire_load, source,
                        completed=master.completed)
    return CharacterizationResult(table, report, activity, bus.cycle)


def default_characterization(seed: int = 2004,
                             transactions: int = 400
                             ) -> CharacterizationResult:
    """Characterise on the Figure-1 platform with a mixed workload.

    The stimulus is the EC-spec verification suite followed by a
    random mix — deliberately *not* the evaluation workloads, so the
    accuracy experiments measure genuine cross-workload transfer.
    """
    from repro.soc.smartcard import SmartCardPlatform
    from repro.workloads import full_suite, generate_script, Window
    from repro.workloads.generator import PROGRAM_MIX
    from repro.soc.smartcard import EEPROM_BASE, RAM_BASE, ROM_BASE

    def memory_map_factory() -> MemoryMap:
        platform = SmartCardPlatform(bus_layer=1)
        return platform.memory_map

    def script_factory() -> list:
        rng = random.Random(seed)
        windows = [Window(RAM_BASE, 0x1000),
                   Window(EEPROM_BASE, 0x1000),
                   Window(ROM_BASE, 0x1000, executable=True,
                          writable=False)]
        return full_suite() + generate_script(
            rng, transactions, windows, PROGRAM_MIX,
            gap_probability=0.2, sequential_fraction=0.6)

    return characterize(memory_map_factory, script_factory,
                        source=f"ecspec+random(seed={seed})")


def coefficient_report(table: CharacterizationTable) -> str:
    """Human-readable dump of a characterisation table."""
    lines = [f"characterisation table ({table.source}):"]
    for name, value in sorted(table.energy_per_transition_pj.items()):
        width = SIGNALS_BY_NAME[name].width
        lines.append(f"  {name:<10} {value:8.4f} pJ/transition "
                     f"({width} bit)")
    lines.append(f"  clock      {table.clock_energy_per_cycle_pj:8.4f} "
                 f"pJ/cycle")
    lines.append(f"  inter-txn address Hamming: "
                 f"{table.inter_txn_address_hamming:.2f} bits")
    lines.append(f"  inter-txn data Hamming:    "
                 f"{table.inter_txn_data_hamming:.2f} bits")
    return "\n".join(lines)
