"""Self-shrinking of failing chaos scenarios.

A campaign finding is only actionable once it is *small*: one fault,
the shortest workload that still reaches it, every irrelevant knob
switched off.  :func:`shrink_scenario` takes a failing scenario and
greedily applies simplifying transformations — drop a fault, halve the
command count, strip the DMA engine / power management / retry policy,
shrink a fault's stall window or crossing index, zero the topology
knobs — re-running the oracle after each step and keeping a candidate
only when it still fails with the *same signature* (the sorted set of
divergence kinds).  The loop runs to a fixpoint or until the run
budget is exhausted; the survivor is replayed once more to confirm the
repro is deterministic.

Everything is bounded and deterministic: the transformation order is
fixed, each candidate either reproduces the signature or is discarded,
and the result carries the full run count so campaign budgets are
auditable.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.faults.fabric import FabricFaultSpec

from .oracle import ScenarioResult, run_scenario
from .scenario import ChaosScenario

#: default oracle-run budget of one shrink (baseline + replay included)
DEFAULT_MAX_RUNS = 48


@dataclasses.dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal deterministic repro."""

    original: ChaosScenario
    minimal: ChaosScenario
    signature: str
    runs: int                 # oracle runs spent (incl. baseline+replay)
    steps: int                # accepted simplifications
    replayed: bool            # minimal re-ran to the same signature
    minimal_result: ScenarioResult

    @property
    def is_minimal_smaller(self) -> bool:
        return self.minimal.size() <= self.original.size()

    def to_dict(self) -> dict:
        return {
            "original": self.original.to_dict(),
            "minimal": self.minimal.to_dict(),
            "signature": self.signature,
            "runs": self.runs,
            "steps": self.steps,
            "replayed": self.replayed,
            "divergences": self.minimal_result.divergences,
        }


def _replace(scenario: ChaosScenario, **changes: typing.Any
             ) -> ChaosScenario:
    return dataclasses.replace(scenario, **changes)


def _candidates(scenario: ChaosScenario
                ) -> typing.Iterator[ChaosScenario]:
    """Simplified variants of *scenario*, most aggressive first."""
    faults = scenario.faults
    # drop whole faults (largest win first: drop all but one)
    if len(faults) > 1:
        for keep in range(len(faults)):
            yield _replace(scenario, faults=(faults[keep],))
    for drop in range(len(faults)):
        yield _replace(scenario,
                       faults=faults[:drop] + faults[drop + 1:])
    # shorter workload
    if scenario.commands > 1:
        yield _replace(scenario, commands=max(1, scenario.commands // 2))
        yield _replace(scenario, commands=scenario.commands - 1)
    # strip orthogonal machinery
    if scenario.with_dma:
        yield _replace(scenario, with_dma=False)
    if scenario.dpm:
        yield _replace(scenario, dpm=False)
    if scenario.retry:
        yield _replace(scenario, retry=False)
    if scenario.workload == "mixed":
        yield _replace(scenario, workload="apdu")
    # smaller fault parameters / earlier crossings
    for position, spec in enumerate(faults):
        if spec.kind == "read_stall" and spec.param > 1:
            for param in {max(1, spec.param // 2), spec.param - 1}:
                smaller = FabricFaultSpec(spec.kind, spec.index, param)
                yield _replace(
                    scenario, faults=faults[:position] + (smaller,)
                    + faults[position + 1:])
        if spec.index > 0:
            earlier = FabricFaultSpec(spec.kind, spec.index // 2,
                                      spec.param)
            yield _replace(
                scenario, faults=faults[:position] + (earlier,)
                + faults[position + 1:])
    # simpler topology knobs
    if scenario.crossing_cycles > 0:
        yield _replace(scenario, crossing_cycles=0)
    if scenario.posted_depth > 1:
        yield _replace(scenario, posted_depth=1)


def shrink_scenario(scenario: ChaosScenario,
                    max_runs: int = DEFAULT_MAX_RUNS,
                    baseline: typing.Optional[ScenarioResult] = None
                    ) -> typing.Optional[ShrinkResult]:
    """Minimise a failing *scenario*; None when it does not fail.

    *baseline* optionally reuses an oracle result the caller already
    has (the campaign's own run), saving one run of the budget.
    """
    runs = 0
    if baseline is None:
        baseline = run_scenario(scenario)
        runs += 1
    if baseline.passed:
        return None
    signature = baseline.failure_signature
    current = scenario
    current_result = baseline
    steps = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        seen: typing.Set[typing.Tuple] = set()
        for candidate in _candidates(current):
            if runs >= max_runs:
                break
            key = (candidate.to_dict().__repr__(),)
            if key in seen or candidate == current:
                continue
            seen.add(key)
            result = run_scenario(candidate)
            runs += 1
            if (not result.passed
                    and result.failure_signature == signature
                    and candidate.size() < current.size()):
                current = candidate
                current_result = result
                steps += 1
                improved = True
                break  # restart candidate generation from the smaller
    # determinism: the minimal scenario must replay to the same failure
    replay = run_scenario(current)
    runs += 1
    replayed = (not replay.passed
                and replay.failure_signature == signature)
    return ShrinkResult(
        original=scenario, minimal=current, signature=signature,
        runs=runs, steps=steps, replayed=replayed,
        minimal_result=replay)
