"""Chaos-hardening of the multi-bus fabric.

Three pieces, layered exactly like a property-based testing harness
for the whole platform:

* :mod:`repro.chaos.scenario` — a :class:`ChaosScenario` is one fully
  seeded experiment (topology knobs x workload x fabric-fault schedule
  x power management), serialisable to JSON and back bit-identically,
* :mod:`repro.chaos.oracle` — :func:`run_scenario` executes one
  scenario on bus layers 1, 2 and 3 and differentially checks the
  cross-layer invariants (same outcomes, same memory, balanced books,
  accounted faults, no hangs),
* :mod:`repro.chaos.shrink` — :func:`shrink_scenario` bisects a
  failing scenario to a minimal deterministic repro that still fails
  with the same signature.

The ``repro chaos`` campaign (:mod:`repro.experiments.chaos_campaign`)
drives all three under the journaled supervisor.
"""

from .scenario import (CHAOS_WORKLOADS, ChaosScenario, generate_scenario,
                       scenario_script)
from .oracle import (LayerRun, ScenarioResult, run_scenario)
from .shrink import ShrinkResult, shrink_scenario

__all__ = [
    "CHAOS_WORKLOADS",
    "ChaosScenario",
    "LayerRun",
    "ScenarioResult",
    "ShrinkResult",
    "generate_scenario",
    "run_scenario",
    "scenario_script",
    "shrink_scenario",
]
