"""Seeded chaos scenarios: topology x workload x faults x power.

A :class:`ChaosScenario` is the unit the chaos campaign runs, shrinks
and replays.  It is *pure data*: every knob that influences the run is
an explicit field, the workload is derived from the scenario's seed
string alone, and :meth:`ChaosScenario.to_dict` /
:meth:`ChaosScenario.from_dict` round-trip through JSON bit-exactly —
that is what makes a shrunken repro cell replayable on another machine
(or in CI) with byte-identical behaviour.

:func:`generate_scenario` is the campaign's scenario source: a pure
function of ``(seed, index)`` composing topology knobs (bridge
crossing latency, posted-queue depth, arbitration policy), a workload
(APDU session / generated memory traffic / both), a fabric fault
schedule (:class:`~repro.faults.fabric.FabricFaultSpec`), an optional
DMA burst and optional dynamic power management into one scenario.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.ec import data_read, data_write
from repro.faults.fabric import FabricFaultSpec
from repro.soc import EEPROM_BASE, RAM_BASE, UART_BASE
from repro.workloads.apdu import apdu_session
from repro.workloads.generator import Mix, Window, generate_script

#: workload families the generator composes
CHAOS_WORKLOADS = ("apdu", "mem", "mixed")

#: generated memory traffic stays inside the digest span (and inside
#: the root segment — crossings come from the peripheral traffic)
_MEM_WINDOWS = (Window(RAM_BASE, 0x400),
                Window(EEPROM_BASE + 0x400, 0x400))
#: data-only mix: instruction bursts would trip execute-rights decode
#: errors that have nothing to do with the fabric under test
_DATA_MIX = Mix(1.0, 1.0, 1.0, 1.0, 0.0)


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One fully seeded chaos experiment (pure data, JSON-stable)."""

    name: str
    seed: str
    workload: str = "apdu"
    commands: int = 4
    with_dma: bool = True
    dpm: bool = False
    crossing_cycles: int = 1
    posted_depth: int = 2
    arbiter: str = "priority_rr"
    faults: typing.Tuple[FabricFaultSpec, ...] = ()
    retry: bool = True
    max_cycles: int = 300_000
    stall_cycles: int = 2_000

    def __post_init__(self) -> None:
        if self.workload not in CHAOS_WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}; "
                             f"expected one of {CHAOS_WORKLOADS}")
        if self.commands < 1:
            raise ValueError("commands must be >= 1")
        if self.crossing_cycles < 0 or self.posted_depth < 1:
            raise ValueError("bad topology knobs")
        if self.max_cycles < 1 or self.stall_cycles < 1:
            raise ValueError("cycle budgets must be >= 1")

    # -- serialisation (the replayable repro cell format) ----------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "workload": self.workload,
            "commands": self.commands,
            "with_dma": self.with_dma,
            "dpm": self.dpm,
            "crossing_cycles": self.crossing_cycles,
            "posted_depth": self.posted_depth,
            "arbiter": self.arbiter,
            "faults": [list(spec.to_tuple()) for spec in self.faults],
            "retry": self.retry,
            "max_cycles": self.max_cycles,
            "stall_cycles": self.stall_cycles,
        }

    @classmethod
    def from_dict(cls, value: typing.Mapping) -> "ChaosScenario":
        fields = dict(value)
        faults = tuple(FabricFaultSpec.from_tuple(item)
                       for item in fields.pop("faults", ()))
        return cls(faults=faults, **fields)

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    def size(self) -> typing.Tuple[int, int, int, int]:
        """Shrink-ordering key: smaller tuples are simpler scenarios."""
        return (len(self.faults), self.commands,
                int(self.dpm) + int(self.with_dma) + int(self.retry)
                + self.crossing_cycles + (self.posted_depth - 1),
                sum(spec.index + spec.param for spec in self.faults))

    def __repr__(self) -> str:
        return (f"ChaosScenario({self.name!r}, {self.workload}, "
                f"commands={self.commands}, faults={len(self.faults)}, "
                f"dpm={self.dpm}, dma={self.with_dma})")


def _periph_probe() -> typing.List:
    """Deterministic cross-bridge traffic appended to every workload:
    a scenario whose seeded session never touches a peripheral would
    exercise no crossings and prove nothing about the fabric."""
    return [data_write(UART_BASE, [0x55AA_55AA]),
            data_read(UART_BASE + 4),
            data_read(UART_BASE)]


def scenario_script(scenario: ChaosScenario) -> typing.List:
    """The scenario's common bus script, rebuilt fresh per model run.

    Script items carry live :class:`~repro.ec.Transaction` objects, so
    every layer of a differential run must regenerate the script —
    sharing one list across runs would replay already-finished
    transactions.  Purely a function of the scenario fields.
    """
    script: typing.List = []
    if scenario.workload in ("apdu", "mixed"):
        script += apdu_session(random.Random(f"{scenario.seed}/apdu"),
                               scenario.commands).script
    if scenario.workload in ("mem", "mixed"):
        script += generate_script(
            random.Random(f"{scenario.seed}/mem"),
            scenario.commands * 4, _MEM_WINDOWS, _DATA_MIX,
            gap_probability=0.25, max_gap=3)
    return script + _periph_probe()


def _generate_faults(rng: random.Random) -> typing.Tuple[
        FabricFaultSpec, ...]:
    """A small seeded fault schedule with unique per-class indices."""
    count = rng.choice((0, 1, 1, 2, 2, 3, 4))
    specs: typing.List[FabricFaultSpec] = []
    used: typing.Dict[str, typing.Set[int]] = {
        "read": set(), "write": set(), "arb": set()}
    for _ in range(count):
        kind = rng.choice(("read_stall", "route_error", "drop_write",
                           "dup_write", "arb_glitch"))
        klass = ("read" if kind in ("read_stall", "route_error")
                 else "write" if kind in ("drop_write", "dup_write")
                 else "arb")
        # index ranges match typical crossing counts per class so most
        # scheduled faults actually land: a handful of posted writes, a
        # few more forwarded reads, dozens of arbitration rounds
        index = rng.randrange(0, {"read": 6, "write": 3,
                                  "arb": 40}[klass])
        if index in used[klass]:
            continue  # one verdict per crossing: skip the collision
        used[klass].add(index)
        if kind == "read_stall":
            param = rng.randrange(2, 25)
        elif kind == "route_error":
            param = rng.randrange(0, 2)
        else:
            param = 0
        specs.append(FabricFaultSpec(kind, index, param))
    return tuple(specs)


def generate_scenario(seed: typing.Union[int, str],
                      index: int) -> ChaosScenario:
    """Scenario *index* of the campaign seeded by *seed* (pure)."""
    scenario_seed = f"{seed}/scenario/{index}"
    rng = random.Random(scenario_seed)
    return ChaosScenario(
        name=f"s{seed}-{index:04d}",
        seed=scenario_seed,
        workload=rng.choice(CHAOS_WORKLOADS),
        commands=rng.randrange(2, 7),
        with_dma=rng.random() < 0.5,
        dpm=rng.random() < 0.35,
        crossing_cycles=rng.randrange(0, 4),
        posted_depth=rng.randrange(1, 5),
        arbiter=rng.choice(("priority", "round_robin", "priority_rr")),
        faults=_generate_faults(rng),
        retry=rng.random() < 0.85)
