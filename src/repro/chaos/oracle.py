"""Cross-layer differential oracle for chaos scenarios.

One scenario runs three times — on the cycle-accurate layer-1 bus, the
timed layer-2 bus and the untimed layer-3 bus — over identical seeded
traffic, an identical fabric topology and an *identical* fabric fault
schedule (pure per-crossing decisions, see :mod:`repro.faults.fabric`).
The layers disagree about time by design; they must agree about
everything else.  The oracle checks:

* **no hangs** — each timed run sits under a
  :class:`~repro.kernel.ProgressWatchdog`; a trip is a finding, never
  a silent timeout,
* **outcome equality** — per script item, every layer reports the same
  ok / error-cause verdict (the CPU is a blocking master, so program
  order — and therefore the crossing index each fault lands on — is
  identical across layers),
* **memory equality** — the digest over the architecturally-visible
  memory span (scratchpad RAM + EEPROM) matches across layers,
* **fault accounting** — each fault process's ``fired`` counts match
  the bridge/arbiter counters on its own layer *and* match across
  layers; every master-visible error carries a definite cause; posted
  queues drain to empty and nothing is journaled as lost,
* **balanced books** — each layer's per-link energy buckets telescope
  bitwise into its composite probe total, faults included,
* **energy envelope** — the layer-2 probe total stays within the
  accuracy-study envelope of the layer-1 reference.

Divergences are classified (``hang``, ``outcome``, ``memory``,
``fault_accounting``, ``energy_leak``, ``energy_envelope``) and folded
into a stable ``failure_signature`` the shrinker preserves while
minimising.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import typing

from repro.ec import RetryPolicy, data_write
from repro.faults.fabric import build_fault_processes
from repro.fabric import Topology, build_fabric
from repro.kernel import StallError
from repro.power import (DpmController, DpmGovernor, FixedTimeoutPolicy,
                         Layer1PowerModel, Layer2PowerModel, PowerDomain,
                         PowerSupply)
from repro.soc import DMA_BASE, RAM_BASE, SmartCardPlatform
from repro.soc.dma import CTRL, CTRL_BURST, CTRL_START, DST, LEN, SRC
from repro.tlm.master import BlockingMaster, normalise_script, run_script

from .scenario import ChaosScenario, scenario_script

CHAOS_LAYERS = ("layer1", "layer2", "layer3")

#: L2/L1 probe-total ratio bounds — generous on purpose: the envelope
#: flags abstraction *breakage* (an order-of-magnitude leak), not the
#: few-percent modeling error the accuracy study quantifies
ENERGY_ENVELOPE = (0.3, 3.0)

#: architecturally-visible digest span: the RAM/EEPROM bytes the
#: workloads write (DMA staging sits above RAM+0x400 and is excluded —
#: the untimed layer runs no DMA engine)
_DIGEST_RAM_BYTES = 0x400
_DIGEST_EEPROM_BYTES = 0x1000

_DMA_SRC = RAM_BASE + 0x600
_DMA_DST = RAM_BASE + 0x700
_DMA_WORDS = 8

#: recovery policy of scenarios with ``retry=True``; no per-attempt
#: watchdog — injected stall windows must trip the *progress* watchdog
#: (a finding) instead of being silently cancelled mid-flight
_RETRY_POLICY = RetryPolicy(max_attempts=3, backoff_cycles=2,
                            timeout_cycles=None)


@dataclasses.dataclass
class LayerRun:
    """What one layer observed for one scenario (JSON-stable)."""

    layer: str
    hang: bool
    hang_diagnostic: typing.Optional[str]
    outcomes: typing.List[typing.List]  # [kind, address, verdict]
    digest: str
    cycles: int
    transactions: int
    errors: int
    retries: int
    uncaused_errors: int
    fault_reports: int
    recovered: int
    crossings_read: int
    crossings_write: int
    fired: typing.Dict[str, int]
    glitches_fired: int
    bridge_counters: typing.Dict[str, int]
    posted_pending: int
    posted_lost: int
    dma_words: int
    probe_total_pj: float
    balanced: bool
    imbalance_pj: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ScenarioResult:
    """The oracle's verdict over the three layer runs."""

    scenario: ChaosScenario
    layers: typing.List[LayerRun]
    divergences: typing.List[typing.Dict[str, str]]

    @property
    def passed(self) -> bool:
        return not self.divergences

    @property
    def failure_signature(self) -> str:
        """Stable classification of *how* the scenario failed: the
        sorted set of divergence kinds.  Details (cycle counts,
        picojoules) deliberately excluded — a shrunken scenario fails
        "the same way" when its kinds match."""
        kinds = sorted({item["kind"] for item in self.divergences})
        return "+".join(kinds) if kinds else "pass"

    @property
    def faults_fired(self) -> int:
        if not self.layers:
            return 0
        first = self.layers[0]
        return sum(first.fired.values()) + first.glitches_fired

    def to_dict(self) -> dict:
        return {"scenario": self.scenario.to_dict(),
                "layers": [run.to_dict() for run in self.layers],
                "divergences": self.divergences,
                "signature": self.failure_signature}


def _dma_descriptor(seed: str) -> typing.List:
    """Root-segment DMA program: RAM-to-RAM burst move (never crosses
    the bridge, so it perturbs arbitration without consuming fault
    crossing indices)."""
    rng = random.Random(f"{seed}/dma")
    payload = [rng.getrandbits(32) for _ in range(_DMA_WORDS)]
    script = [data_write(_DMA_SRC, payload[:4]),
              data_write(_DMA_SRC + 16, payload[4:])]
    for offset, value in ((SRC, _DMA_SRC), (DST, _DMA_DST),
                          (LEN, _DMA_WORDS),
                          (CTRL, CTRL_START | CTRL_BURST)):
        script.append(data_write(DMA_BASE + 4 * offset, [value]))
    return script


def _topology(scenario: ChaosScenario, layer: str) -> Topology:
    arbiter = None if layer == "layer3" else scenario.arbiter
    return Topology.two_segment(
        crossing_cycles=scenario.crossing_cycles,
        posted_depth=scenario.posted_depth,
        arbiter=arbiter)


def _memory_digest(platform: SmartCardPlatform) -> str:
    """SHA-256 over the digest span of RAM + EEPROM.  Read through
    the functional block interface in small chunks *after* the energy
    report is captured (the reads themselves book events)."""
    hasher = hashlib.sha256()
    for slave, span in ((platform.ram, _DIGEST_RAM_BYTES),
                        (platform.eeprom, _DIGEST_EEPROM_BYTES)):
        words = min(span, slave.size) // 4
        offset = 0
        while offset < words:
            chunk = min(64, words - offset)
            data, error = slave.read_block(offset * 4, chunk, 0b1111)
            if error:
                raise RuntimeError(
                    f"digest read failed at {offset * 4:#x}")
            for word in data:
                hasher.update(word.to_bytes(4, "little"))
            offset += chunk
    return hasher.hexdigest()


def _item_outcomes(script: typing.List,
                   completed: typing.List) -> typing.List[typing.List]:
    """Final per-item verdicts in script order.  The blocking master
    finishes items strictly in order, so ``completed`` (retries
    collapsed by the recovery machinery) aligns with the script."""
    outcomes = []
    for transaction in completed:
        verdict = ("ok" if not transaction.error
                   else (transaction.error_cause.value
                         if transaction.error_cause else "uncaused"))
        outcomes.append([transaction.kind.value, transaction.address,
                         verdict])
    del script  # alignment is by order; the script fixes the length
    return outcomes


def _bridge_counter_dict(bridge) -> typing.Dict[str, int]:
    return {
        "route_faults": bridge.route_faults,
        "posted_dropped": bridge.posted_dropped,
        "posted_duplicated": bridge.posted_duplicated,
        "fault_stall_cycles": bridge.fault_stall_cycles,
        "posted_errors": bridge.posted_errors,
        "posted_flushed_on_power_off": bridge.posted_flushed_on_power_off,
        "posted_lost_on_power_off": bridge.posted_lost_on_power_off,
    }


def _drain(platform: SmartCardPlatform, limit: int = 20_000) -> bool:
    """Run the timed platform until DMA, buses and posted queues are
    quiet; False when the fabric refuses to settle (a hang finding)."""
    for _ in range(limit):
        quiet = ((platform.dma is None or not platform.dma.busy)
                 and platform.fabric.posted_writes_pending == 0
                 and all(not segment.bus.busy
                         for segment in
                         platform.fabric.segments.values()))
        if quiet:
            return True
        platform.run_cycles(1)
    return False


def _run_timed_layer(scenario: ChaosScenario, layer: str) -> LayerRun:
    table = _characterization_table()
    model_cls = Layer1PowerModel if layer == "layer1" else Layer2PowerModel
    platform = SmartCardPlatform(
        bus_layer=1 if layer == "layer1" else 2,
        power_model=model_cls(table),
        topology=_topology(scenario, layer),
        power_model_factory=lambda segment: model_cls(table),
        with_dma=scenario.with_dma)
    fault_process, glitch_process = build_fault_processes(scenario.faults)
    bridge = platform.fabric.bridge("bridge")
    bridge.fault_process = fault_process
    arbiter = platform.fabric.root.arbiter
    if arbiter is not None:
        arbiter.glitch_process = glitch_process

    psm_ledgers: typing.List = []
    if scenario.dpm:
        composite = platform.fabric.composite(platform.energy_ledgers())
        supply = PowerSupply(composite)  # well-fed: chaos, not brownout
        PowerDomain(platform.simulator, platform.clock, platform.bus,
                    supply, halt_on_power_loss=False)
        governor = DpmGovernor(supply, table,
                               policy=FixedTimeoutPolicy())
        psms = platform.attach_dpm(governor)
        for psm in psms.values():
            composite.add_ledger(psm)
        DpmController(platform.simulator, platform.clock, governor)
        psm_ledgers = list(psms.values())

    script = scenario_script(scenario)
    dma_items = 0
    if scenario.with_dma:
        dma_script = _dma_descriptor(scenario.seed)
        dma_items = len(dma_script)
        script = dma_script + script
    master = BlockingMaster(
        platform.simulator, platform.clock, platform.cpu_interface,
        script, name="cpu",
        retry_policy=_RETRY_POLICY if scenario.retry else None)

    hang = False
    diagnostic = None
    cycles = 0
    try:
        cycles = run_script(platform.simulator, master,
                            scenario.max_cycles, platform.clock,
                            stall_cycles=scenario.stall_cycles)
        if not _drain(platform):
            hang = True
            diagnostic = "fabric did not drain after script completion"
    except StallError as exc:
        hang = True
        diagnostic = str(exc).splitlines()[0]

    report = platform.fabric.energy_report(
        platform.energy_ledgers() + psm_ledgers)
    digest = _memory_digest(platform)
    uncaused = sum(1 for txn in master.errors
                   if txn.error_cause is None)
    return LayerRun(
        layer=layer, hang=hang, hang_diagnostic=diagnostic,
        outcomes=_item_outcomes(script, master.completed)[dma_items:],
        digest=digest, cycles=cycles,
        transactions=len(master.completed) - dma_items,
        errors=len(master.errors), retries=master.retries,
        uncaused_errors=uncaused,
        fault_reports=len(master.fault_reports),
        recovered=sum(1 for rep in master.fault_reports
                      if rep.recovered),
        crossings_read=bridge._read_crossings,
        crossings_write=bridge._write_crossings,
        fired=dict(fault_process.fired),
        glitches_fired=glitch_process.fired,
        bridge_counters=_bridge_counter_dict(bridge),
        posted_pending=platform.fabric.posted_writes_pending,
        posted_lost=bridge.posted_lost_on_power_off,
        dma_words=(platform.dma.words_moved
                   if platform.dma is not None else 0),
        probe_total_pj=report.probe_total_pj,
        balanced=report.balanced,
        imbalance_pj=report.imbalance_pj)


def _run_layer3(scenario: ChaosScenario) -> LayerRun:
    """The untimed arm: synchronous routing, emulated retry loop (the
    same attempts/cause decisions the blocking master makes)."""
    platform = SmartCardPlatform(bus_layer=1)  # slave farm only
    named = {"rom": platform.rom, "flash": platform.flash,
             "eeprom": platform.eeprom, "ram": platform.ram,
             "uart": platform.uart, "timers": platform.timers,
             "trng": platform.rng, "intc": platform.intc}
    fabric = build_fabric(_topology(scenario, "layer3"), named,
                          bus_layer=3)
    fault_process, glitch_process = build_fault_processes(scenario.faults)
    bridge = fabric.bridge("bridge")
    bridge.fault_process = fault_process

    policy = _RETRY_POLICY if scenario.retry else None
    outcomes: typing.List[typing.List] = []
    errors = retries = uncaused = reports = recovered = 0
    for _, transaction in normalise_script(scenario_script(scenario)):
        current = transaction
        attempts = 0
        while True:
            state = fabric.root_bus.issue(current)
            if not state.finished:
                raise RuntimeError(
                    "layer-3 transaction did not complete "
                    f"synchronously: {current}")
            if not current.error:
                break
            attempts += 1
            if policy is None or not policy.should_retry(
                    current.error_cause, attempts):
                break
            retries += 1
            current = current.clone()
        if current.error:
            errors += 1
            if current.error_cause is None:
                uncaused += 1
            verdict = (current.error_cause.value
                       if current.error_cause else "uncaused")
        else:
            verdict = "ok"
        if attempts > 0:
            reports += 1
            if not current.error:
                recovered += 1
        outcomes.append([current.kind.value, current.address, verdict])

    report = fabric.energy_report(platform.energy_ledgers())
    digest = _memory_digest(platform)
    return LayerRun(
        layer="layer3", hang=False, hang_diagnostic=None,
        outcomes=outcomes, digest=digest, cycles=0,
        transactions=len(outcomes), errors=errors, retries=retries,
        uncaused_errors=uncaused, fault_reports=reports,
        recovered=recovered,
        crossings_read=bridge._read_crossings,
        crossings_write=bridge._write_crossings,
        fired=dict(fault_process.fired),
        glitches_fired=glitch_process.fired,
        bridge_counters=_bridge_counter_dict(bridge),
        posted_pending=fabric.posted_writes_pending,
        posted_lost=bridge.posted_lost_on_power_off,
        dma_words=0,
        probe_total_pj=report.probe_total_pj,
        balanced=report.balanced,
        imbalance_pj=report.imbalance_pj)


_TABLE_CACHE: typing.List = []


def _characterization_table():
    if not _TABLE_CACHE:
        from repro.experiments.common import characterization
        _TABLE_CACHE.append(characterization().table)
    return _TABLE_CACHE[0]


def _classify(scenario: ChaosScenario,
              runs: typing.List[LayerRun]
              ) -> typing.List[typing.Dict[str, str]]:
    divergences: typing.List[typing.Dict[str, str]] = []

    def finding(kind: str, detail: str) -> None:
        divergences.append({"kind": kind, "detail": detail})

    for run in runs:
        if run.hang:
            finding("hang", f"{run.layer}: {run.hang_diagnostic}")
    if any(run.hang for run in runs):
        # a hung layer's books/outcomes are meaningless — report the
        # hang alone so the signature stays stable under shrinking
        return divergences

    reference = runs[0]
    for run in runs[1:]:
        if run.outcomes != reference.outcomes:
            detail = f"{reference.layer} vs {run.layer}"
            for i, (a, b) in enumerate(zip(reference.outcomes,
                                           run.outcomes)):
                if a != b:
                    detail += f" first at item {i}: {a} != {b}"
                    break
            else:
                detail += (f" lengths {len(reference.outcomes)} != "
                           f"{len(run.outcomes)}")
            finding("outcome", detail)
        if run.digest != reference.digest:
            finding("memory",
                    f"{reference.layer} vs {run.layer} digest mismatch")

    for run in runs:
        counters = run.bridge_counters
        expected = {
            "route_faults": run.fired.get("route_error", 0),
            "posted_dropped": run.fired.get("drop_write", 0),
            "posted_duplicated": run.fired.get("dup_write", 0),
        }
        for key, want in expected.items():
            if counters.get(key, 0) != want:
                finding("fault_accounting",
                        f"{run.layer}: bridge {key}={counters.get(key)} "
                        f"but process fired {want}")
        if run.uncaused_errors:
            finding("fault_accounting",
                    f"{run.layer}: {run.uncaused_errors} errors "
                    f"without a cause")
        if run.posted_pending:
            finding("fault_accounting",
                    f"{run.layer}: {run.posted_pending} posted writes "
                    f"still queued after drain")
        if run.posted_lost:
            finding("fault_accounting",
                    f"{run.layer}: {run.posted_lost} posted writes "
                    f"lost at power-off")
        if scenario.retry and run.errors > run.fault_reports:
            finding("fault_accounting",
                    f"{run.layer}: {run.errors} errors but only "
                    f"{run.fault_reports} fault reports")
    for run in runs[1:]:
        for key in ("crossings_read", "crossings_write"):
            if getattr(run, key) != getattr(reference, key):
                finding("fault_accounting",
                        f"{key}: {reference.layer}="
                        f"{getattr(reference, key)} vs {run.layer}="
                        f"{getattr(run, key)}")
        if run.fired != reference.fired:
            finding("fault_accounting",
                    f"fired counts diverge: {reference.layer}="
                    f"{reference.fired} vs {run.layer}={run.fired}")

    for run in runs:
        if not run.balanced:
            finding("energy_leak",
                    f"{run.layer}: probe != bucket sum "
                    f"(imbalance {run.imbalance_pj:+.6f} pJ)")
    by_layer = {run.layer: run for run in runs}
    l1, l2 = by_layer.get("layer1"), by_layer.get("layer2")
    if l1 is not None and l2 is not None and l1.probe_total_pj > 0:
        ratio = l2.probe_total_pj / l1.probe_total_pj
        if not (ENERGY_ENVELOPE[0] <= ratio <= ENERGY_ENVELOPE[1]):
            finding("energy_envelope",
                    f"L2/L1 probe ratio {ratio:.3f} outside "
                    f"{ENERGY_ENVELOPE}")
    return divergences


def run_scenario(scenario: ChaosScenario,
                 layers: typing.Sequence[str] = CHAOS_LAYERS
                 ) -> ScenarioResult:
    """Run *scenario* on every requested layer and classify the
    cross-layer divergences (empty list = the scenario passed)."""
    runs: typing.List[LayerRun] = []
    for layer in layers:
        if layer == "layer3":
            runs.append(_run_layer3(scenario))
        else:
            runs.append(_run_timed_layer(scenario, layer))
    return ScenarioResult(scenario=scenario, layers=runs,
                          divergences=_classify(scenario, runs))
