"""EC-style bus protocol: the shared vocabulary of every model layer.

Reconstructs the externally documented features of the MIPS EC
interface the paper builds on: 36-bit address and 32-bit data buses,
separate unidirectional read/write paths, slave wait states, pipelined
address/data phases, merge patterns and the 4/4/4 outstanding budgets.
"""

from .checker import (ProtocolChecker, ProtocolViolationError, Violation,
                      check_recorder)
from .decoder import (MAX_ROUTE_DEPTH, DecodeError, MapConflictError,
                      MemoryMap, Region, Route)
from .monitor import BusMonitor, Observation
from .interfaces import (BusMasterInterface, Slave, SlaveControlInterface,
                         SlaveDataInterface, SlaveResponse, WaitStates)
from .limits import OutstandingBudget
from .recovery import ErrorCause, FaultReport, RetryPolicy
from .signals import (EC_SIGNALS, SIGNALS_BY_GROUP, SIGNALS_BY_NAME,
                      SignalGroup, SignalSpec, hamming_distance,
                      total_interface_bits)
from .transaction import (Transaction, data_read, data_write,
                          instruction_fetch)
from .types import (ADDRESS_BITS, ADDRESS_MASK, BYTES_PER_WORD, DATA_BITS,
                    DATA_MASK, LEGAL_BURST_LENGTHS,
                    MAX_OUTSTANDING_PER_KIND, AccessRights, BusState,
                    Direction, MergePattern, MisalignedAccessError,
                    ProtocolError, TransactionKind)

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "AccessRights",
    "BusMasterInterface",
    "BusMonitor",
    "BusState",
    "BYTES_PER_WORD",
    "DATA_BITS",
    "DATA_MASK",
    "DecodeError",
    "Direction",
    "EC_SIGNALS",
    "ErrorCause",
    "FaultReport",
    "LEGAL_BURST_LENGTHS",
    "MapConflictError",
    "MAX_OUTSTANDING_PER_KIND",
    "MAX_ROUTE_DEPTH",
    "MemoryMap",
    "MergePattern",
    "MisalignedAccessError",
    "Observation",
    "OutstandingBudget",
    "ProtocolChecker",
    "ProtocolError",
    "ProtocolViolationError",
    "Region",
    "RetryPolicy",
    "Route",
    "SIGNALS_BY_GROUP",
    "SIGNALS_BY_NAME",
    "SignalGroup",
    "SignalSpec",
    "Slave",
    "SlaveControlInterface",
    "SlaveDataInterface",
    "SlaveResponse",
    "Transaction",
    "Violation",
    "TransactionKind",
    "WaitStates",
    "check_recorder",
    "data_read",
    "data_write",
    "hamming_distance",
    "instruction_fetch",
    "total_interface_bits",
]
