"""Core vocabulary of the EC-style bus interface.

The paper's bus interface (MIPS "EC interface") supports a 36-bit
address bus, separate unidirectional 32-bit read and write data buses,
slave-inserted wait states, pipelined address/data phases and 8/16/32
bit transfers via merge patterns (§1, §3.1).  The enums here are shared
by every abstraction layer so that gate-level, layer-1 and layer-2
models speak about the same protocol.
"""

from __future__ import annotations

import enum

ADDRESS_BITS = 36
DATA_BITS = 32
BYTES_PER_WORD = DATA_BITS // 8
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
DATA_MASK = (1 << DATA_BITS) - 1

#: Hard limits from the MIPS 4KSc core: at most four outstanding burst
#: instruction reads, four burst data reads and four burst writes (§1).
MAX_OUTSTANDING_PER_KIND = 4

#: Burst lengths the interface supports.  The 4KSc fills 4-word cache
#: lines; sub-bursts of 2 and single transfers are also legal.
LEGAL_BURST_LENGTHS = (1, 2, 4)


class BusState(enum.Enum):
    """Return state of every non-blocking bus interface call (§3.1).

    * ``REQUEST`` — the bus request has been accepted this cycle,
    * ``WAIT``    — the request is in progress,
    * ``OK``      — the request finished successfully,
    * ``ERROR``   — a bus error terminated the request.
    """

    REQUEST = "request"
    WAIT = "wait"
    OK = "ok"
    ERROR = "error"

    #: True when the master must stop re-invoking the interface;
    #: precomputed per member below (this attribute is read on every
    #: bus call of every cycle, so it must not be a property)
    finished: bool


for _state in BusState:
    _state.finished = _state in (BusState.OK, BusState.ERROR)
del _state


class Direction(enum.Enum):
    """Transfer direction, as seen from the master."""

    READ = "read"
    WRITE = "write"


class TransactionKind(enum.Enum):
    """The three outstanding-transaction categories of the core."""

    INSTRUCTION_READ = "instruction_read"
    DATA_READ = "data_read"
    DATA_WRITE = "data_write"

    @property
    def direction(self) -> Direction:
        if self is TransactionKind.DATA_WRITE:
            return Direction.WRITE
        return Direction.READ

    @property
    def is_instruction(self) -> bool:
        return self is TransactionKind.INSTRUCTION_READ


class MergePattern(enum.Enum):
    """Transfer widths supported by the data/write interfaces (§3.1).

    The value is the transfer width in bits; :meth:`byte_enables`
    derives the EC byte-enable pattern for a given address.
    """

    BYTE = 8
    HALFWORD = 16
    WORD = 32

    @property
    def num_bytes(self) -> int:
        return self.value // 8

    def alignment_ok(self, address: int) -> bool:
        """EC transfers must be naturally aligned to their width."""
        return address % self.num_bytes == 0

    def byte_enables(self, address: int) -> int:
        """4-bit byte-enable mask (bit *i* = byte lane *i* active).

        Little-endian lane numbering: byte lane = ``address % 4``.
        """
        if not self.alignment_ok(address):
            raise MisalignedAccessError(address, self)
        lane = address % BYTES_PER_WORD
        base_mask = (1 << self.num_bytes) - 1
        return base_mask << lane

    def data_mask(self, address: int) -> int:
        """Bit mask of the active data-bus lanes for *address*."""
        enables = self.byte_enables(address)
        mask = 0
        for lane in range(BYTES_PER_WORD):
            if enables & (1 << lane):
                mask |= 0xFF << (8 * lane)
        return mask


class AccessRights(enum.Flag):
    """Per-slave access right bits (read / write / execute, §3.1)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()
    ALL = READ | WRITE | EXECUTE

    def permits(self, kind: TransactionKind) -> bool:
        """True if a transaction of *kind* is allowed by these rights."""
        if kind is TransactionKind.INSTRUCTION_READ:
            return bool(self & AccessRights.EXECUTE)
        if kind is TransactionKind.DATA_READ:
            return bool(self & AccessRights.READ)
        return bool(self & AccessRights.WRITE)


class ProtocolError(ValueError):
    """A request violated the EC interface rules."""


class MisalignedAccessError(ProtocolError):
    """Raised for accesses not aligned to their merge pattern."""

    def __init__(self, address: int, pattern: MergePattern) -> None:
        super().__init__(
            f"address {address:#x} is not aligned for {pattern.name} access")
        self.address = address
        self.pattern = pattern
