"""Canonical EC interface signal set.

The layer-1 energy model works "like a transaction level to RTL
adapter" (§3.3): every cycle it reconstructs the value of each bus
interface signal and counts bit transitions.  This module is the single
definition of those signals — name, width and group — shared by the
gate-level model (which drives real :class:`~repro.kernel.Signal`
objects), the TL1 power model (which reconstructs values) and the
power characterisation flow (which keys its table by these names).

Signal names follow the public MIPS EC interface convention.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from .types import ADDRESS_BITS, DATA_BITS


class SignalGroup(enum.Enum):
    """Grouping used in the paper's Figure 5 power-model data flow."""

    ADDRESS = "address"        # address & control signals
    READ = "read"              # read data path signals
    WRITE = "write"            # write data path signals
    CLOCK = "clock"            # system clock distribution


@dataclasses.dataclass(frozen=True)
class SignalSpec:
    """Static description of one interface wire (or wire bundle)."""

    name: str
    width: int
    group: SignalGroup
    driver: str  # "master" or "slave"

    def mask(self) -> int:
        return (1 << self.width) - 1


#: The EC interface signal set reconstructed from the paper and the
#: public MIPS 4K documentation: unidirectional address, read and write
#: buses, per-direction error indication, slave-inserted wait states.
EC_SIGNALS: typing.Tuple[SignalSpec, ...] = (
    # address & control group (driven by master unless noted)
    SignalSpec("EB_A", ADDRESS_BITS, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_AValid", 1, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_Instr", 1, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_Write", 1, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_Burst", 1, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_BFirst", 1, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_BLast", 1, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_BE", 4, SignalGroup.ADDRESS, "master"),
    SignalSpec("EB_ARdy", 1, SignalGroup.ADDRESS, "slave"),
    # read group (slave drives data and valid)
    SignalSpec("EB_RData", DATA_BITS, SignalGroup.READ, "slave"),
    SignalSpec("EB_RdVal", 1, SignalGroup.READ, "slave"),
    SignalSpec("EB_RBErr", 1, SignalGroup.READ, "slave"),
    # write group (master drives data; slave acknowledges)
    SignalSpec("EB_WData", DATA_BITS, SignalGroup.WRITE, "master"),
    SignalSpec("EB_WDRdy", 1, SignalGroup.WRITE, "slave"),
    SignalSpec("EB_WBErr", 1, SignalGroup.WRITE, "slave"),
)

SIGNALS_BY_NAME: typing.Dict[str, SignalSpec] = {
    spec.name: spec for spec in EC_SIGNALS
}

SIGNALS_BY_GROUP: typing.Dict[SignalGroup, typing.Tuple[SignalSpec, ...]] = {
    group: tuple(s for s in EC_SIGNALS if s.group is group)
    for group in SignalGroup
}


def total_interface_bits() -> int:
    """Total number of interface wires (sanity metric for tests)."""
    return sum(spec.width for spec in EC_SIGNALS)


def hamming_distance(old: int, new: int, width: int) -> int:
    """Bit transitions between two values of a *width*-bit signal."""
    mask = (1 << width) - 1
    return ((old ^ new) & mask).bit_count()
