"""Bus transaction descriptors.

A :class:`Transaction` is the unit of work that travels through the
paper's queues (request → read/write → finish).  At layer 1 it is
processed beat-by-beat; at layer 2 the whole burst is a single
transaction whose payload is passed by reference ("pointer passing",
§3.2).  Both layers and the gate-level reference use this one class, so
traces recorded at one layer replay at every other.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from .types import (ADDRESS_MASK, BYTES_PER_WORD, DATA_MASK,
                    LEGAL_BURST_LENGTHS, BusState, Direction, MergePattern,
                    ProtocolError, TransactionKind)

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from .recovery import ErrorCause

_ids = itertools.count(1)


@dataclasses.dataclass
class Transaction:
    """One EC bus request: a single transfer or a burst.

    Parameters
    ----------
    kind:
        Instruction read, data read or data write — also selects which
        outstanding-transaction budget it consumes.
    address:
        36-bit start address; bursts increment by the word size.
    burst_length:
        Number of beats (1, 2 or 4).  Bursts are word-wide.
    pattern:
        Merge pattern of a single transfer; bursts must use ``WORD``.
    data:
        For writes: the payload, one word per beat.  For reads: filled
        in by the slave as beats complete.
    critical:
        Marks work that load-shedding must not defer: a DPM issue gate
        in degradation stage 1/2 passes critical transactions even for
        non-critical clients (stage 3 — emergency checkpoint pending —
        still stops everything).  Ignored by the bus models themselves.
    """

    kind: TransactionKind
    address: int
    burst_length: int = 1
    pattern: MergePattern = MergePattern.WORD
    data: typing.Optional[list] = None
    critical: bool = False
    txn_id: int = dataclasses.field(default_factory=lambda: next(_ids))

    # progress bookkeeping (owned by the bus models)
    state: BusState = BusState.REQUEST
    beats_done: int = 0
    error: bool = False
    error_cause: typing.Optional["ErrorCause"] = None
    issue_cycle: typing.Optional[int] = None
    address_done_cycle: typing.Optional[int] = None
    data_done_cycle: typing.Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.address <= ADDRESS_MASK:
            raise ProtocolError(
                f"address {self.address:#x} exceeds 36 bits")
        if self.burst_length not in LEGAL_BURST_LENGTHS:
            raise ProtocolError(
                f"illegal burst length {self.burst_length}; "
                f"legal: {LEGAL_BURST_LENGTHS}")
        if self.burst_length > 1:
            if self.pattern is not MergePattern.WORD:
                raise ProtocolError("bursts must use WORD merge pattern")
            if self.address % BYTES_PER_WORD:
                raise ProtocolError(
                    f"burst start address {self.address:#x} not word aligned")
        elif not self.pattern.alignment_ok(self.address):
            raise ProtocolError(
                f"address {self.address:#x} misaligned for "
                f"{self.pattern.name}")
        if self.kind is TransactionKind.DATA_WRITE:
            if self.data is None or len(self.data) != self.burst_length:
                raise ProtocolError(
                    "write transaction needs one data word per beat")
            for word in self.data:
                if not 0 <= word <= DATA_MASK:
                    raise ProtocolError(f"data word {word:#x} exceeds 32 bits")
        elif self.data is None:
            self.data = [0] * self.burst_length
        # beat enables are the same for every beat (bursts are whole
        # words); cache them — the bus models read this per cycle
        self._enables = (0b1111 if self.burst_length > 1
                         else self.pattern.byte_enables(self.address))

    # -- derived properties ----------------------------------------------

    @property
    def direction(self) -> Direction:
        return self.kind.direction

    @property
    def is_burst(self) -> bool:
        return self.burst_length > 1

    @property
    def finished(self) -> bool:
        return self.state.finished

    @property
    def num_bytes(self) -> int:
        """Total bytes moved by this transaction."""
        if self.is_burst:
            return self.burst_length * BYTES_PER_WORD
        return self.pattern.num_bytes

    def beat_address(self, beat: int) -> int:
        """Address of the *beat*-th transfer of the burst."""
        if not 0 <= beat < self.burst_length:
            raise IndexError(f"beat {beat} out of range")
        return (self.address + beat * BYTES_PER_WORD) & ADDRESS_MASK

    def byte_enables(self, beat: int = 0) -> int:
        """Byte-enable pattern driven during *beat*."""
        return self._enables

    # -- progress helpers (used by the bus models) -------------------------

    def complete_beat(self, cycle: int, value: typing.Optional[int] = None
                      ) -> None:
        """Record one finished data beat (reads store *value*)."""
        if self.beats_done >= self.burst_length:
            raise ProtocolError(
                f"transaction {self.txn_id} already completed all beats")
        if value is not None:
            self.data[self.beats_done] = value & DATA_MASK
        self.beats_done += 1
        if self.beats_done == self.burst_length:
            self.data_done_cycle = cycle
            self.state = BusState.OK

    def fail(self, cycle: int,
             cause: typing.Optional["ErrorCause"] = None) -> None:
        """Terminate the transaction with a bus error."""
        self.error = True
        self.error_cause = cause
        self.state = BusState.ERROR
        self.data_done_cycle = cycle

    @property
    def latency_cycles(self) -> typing.Optional[int]:
        """Cycles from issue to completion, if both were recorded."""
        if self.issue_cycle is None or self.data_done_cycle is None:
            return None
        return self.data_done_cycle - self.issue_cycle

    def clone(self) -> "Transaction":
        """A fresh, un-started copy (new id, reset progress)."""
        return Transaction(
            kind=self.kind,
            address=self.address,
            burst_length=self.burst_length,
            pattern=self.pattern,
            data=(list(self.data)
                  if self.kind is TransactionKind.DATA_WRITE else None),
            critical=self.critical,
        )

    def __repr__(self) -> str:
        return (f"Transaction(#{self.txn_id} {self.kind.value} "
                f"@{self.address:#010x} x{self.burst_length} "
                f"{self.pattern.name} {self.state.value})")


def instruction_fetch(address: int, burst_length: int = 1) -> Transaction:
    """Convenience constructor for an instruction read."""
    return Transaction(TransactionKind.INSTRUCTION_READ, address,
                       burst_length=burst_length)


def data_read(address: int, pattern: MergePattern = MergePattern.WORD,
              burst_length: int = 1) -> Transaction:
    """Convenience constructor for a data read."""
    return Transaction(TransactionKind.DATA_READ, address,
                       burst_length=burst_length, pattern=pattern)


def data_write(address: int, data: typing.Sequence[int],
               pattern: MergePattern = MergePattern.WORD) -> Transaction:
    """Convenience constructor for a (possibly burst) data write."""
    words = list(data)
    return Transaction(TransactionKind.DATA_WRITE, address,
                       burst_length=len(words) if len(words) > 1 else 1,
                       pattern=pattern, data=words)
