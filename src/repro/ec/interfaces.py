"""Abstract master/slave interfaces of the bus models.

The paper's bus talks to the master over two dedicated interfaces (one
for instruction fetch, one for data read/write) and to each slave over
a data interface plus a *slave control interface* exposing the address
range, the per-phase wait states and the access-right bits (§3.1).
All interface methods are non-blocking.
"""

from __future__ import annotations

import abc
import dataclasses
import typing

from .types import AccessRights, BusState, TransactionKind
from .transaction import Transaction

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from .recovery import ErrorCause


@dataclasses.dataclass(frozen=True)
class WaitStates:
    """Slave-inserted wait states per protocol phase (§3.1)."""

    address: int = 0
    read: int = 0
    write: int = 0

    def __post_init__(self) -> None:
        for field in ("address", "read", "write"):
            value = getattr(self, field)
            if value < 0:
                raise ValueError(f"{field} wait states must be >= 0")

    def for_kind(self, kind: TransactionKind) -> int:
        """Data-phase wait states for a transaction of *kind*."""
        if kind is TransactionKind.DATA_WRITE:
            return self.write
        return self.read


class SlaveControlInterface(abc.ABC):
    """Properties the bus reads from every slave (``getSlaveState()``)."""

    @property
    @abc.abstractmethod
    def base_address(self) -> int:
        """First address the slave responds to."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of addressable bytes."""

    @property
    @abc.abstractmethod
    def wait_states(self) -> WaitStates:
        """Current wait states for address, read and write phases."""

    @property
    @abc.abstractmethod
    def access_rights(self) -> AccessRights:
        """Read/write/execute permission bits."""


class SlaveDataInterface(abc.ABC):
    """Non-blocking per-beat data interface invoked by the bus process.

    The bus calls :meth:`read_beat` / :meth:`write_beat` every cycle of
    the corresponding data phase "until it responses error or ok"
    (§3.1).  *offset* is the byte offset within the slave.
    """

    @abc.abstractmethod
    def read_beat(self, offset: int, byte_enables: int) -> "SlaveResponse":
        """One read access; returns state + data when state is OK."""

    @abc.abstractmethod
    def write_beat(self, offset: int, byte_enables: int,
                   data: int) -> "SlaveResponse":
        """One write access; returns the completion state."""


@dataclasses.dataclass(frozen=True)
class SlaveResponse:
    """Result of a slave data-interface invocation.

    ``cause`` optionally refines an ``ERROR`` state: a slave that
    *knows* why it failed (a bridge relaying a downstream decode
    fault, say) reports the original :class:`~repro.ec.ErrorCause`
    so master-side recovery and fault reports see the same cause they
    would on a flat bus.  Plain slaves leave it ``None`` and the bus
    attributes the error to ``SLAVE_ERROR`` as before.
    """

    state: BusState
    data: int = 0
    cause: typing.Optional["ErrorCause"] = None

    @classmethod
    def ok(cls, data: int = 0) -> "SlaveResponse":
        return cls(BusState.OK, data)

    @classmethod
    def wait(cls) -> "SlaveResponse":
        # frozen and field-free per wait state: share one instance (a
        # slave paced by wait states returns one of these per cycle)
        return _WAIT_RESPONSE

    @classmethod
    def error(cls, cause: typing.Optional["ErrorCause"] = None
              ) -> "SlaveResponse":
        return cls(BusState.ERROR, cause=cause)


_WAIT_RESPONSE = SlaveResponse(BusState.WAIT)


class Slave(SlaveControlInterface, SlaveDataInterface):
    """A complete bus slave: control properties plus data access."""

    def contains(self, address: int) -> bool:
        """True if *address* falls inside this slave's window."""
        return self.base_address <= address < self.base_address + self.size

    def offset_of(self, address: int) -> int:
        """Byte offset of *address* within the slave's window."""
        if not self.contains(address):
            raise ValueError(
                f"address {address:#x} outside slave window "
                f"[{self.base_address:#x}, "
                f"{self.base_address + self.size:#x})")
        return address - self.base_address


class BusMasterInterface(abc.ABC):
    """What a bus offers its master: instruction + data interfaces.

    Each method is non-blocking and must be re-invoked every clock
    cycle with the same transaction until the return state is ``OK`` or
    ``ERROR`` (§3.1).  Several requests may be started in one cycle.
    """

    @abc.abstractmethod
    def instruction_fetch(self, transaction: Transaction) -> BusState:
        """Advance an instruction-read transaction by one master call."""

    @abc.abstractmethod
    def data_read(self, transaction: Transaction) -> BusState:
        """Advance a data-read transaction by one master call."""

    @abc.abstractmethod
    def data_write(self, transaction: Transaction) -> BusState:
        """Advance a data-write transaction by one master call."""

    def issue(self, transaction: Transaction) -> BusState:
        """Dispatch on the transaction kind (convenience for masters)."""
        if transaction.kind is TransactionKind.INSTRUCTION_READ:
            return self.instruction_fetch(transaction)
        if transaction.kind is TransactionKind.DATA_READ:
            return self.data_read(transaction)
        return self.data_write(transaction)

    def cancel(self, transaction: Transaction) -> bool:
        """Withdraw an unfinished transaction from the bus.

        Used by master-side watchdogs to abort stuck transfers.  Returns
        True when the transaction was evicted (its outstanding-budget
        slot is released); False when the bus no longer holds it — it
        finished, or the model does not support cancellation — in which
        case the master must keep re-invoking :meth:`issue`.
        """
        return False
