"""Error-cause and recovery vocabulary of the EC bus models.

The protocol's ``ERROR`` state (§3.1) says nothing about *why* a
transaction failed, yet a power-aware smart card in the field must
distinguish a decode mistake (software bug, never retry) from a
transient slave error or a tearing EEPROM write (retry after backoff)
from a hung slave (abort via watchdog, then retry).  This module
defines that vocabulary once, at the bottom layer, so the bus models,
the masters and the fault-injection subsystem all speak about failure
and recovery in the same terms.
"""

from __future__ import annotations

import dataclasses
import enum
import typing


class ErrorCause(enum.Enum):
    """Why a transaction terminated with ``ERROR``."""

    #: unmapped address, rights violation or window-crossing burst
    DECODE = "decode"
    #: the slave's data interface answered ``ERROR``
    SLAVE_ERROR = "slave_error"
    #: the master's per-transaction watchdog aborted a stuck transfer
    TIMEOUT = "timeout"


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Master-side recovery policy for failed transactions.

    Parameters
    ----------
    max_attempts:
        Total issue attempts per script item, the first included.
    backoff_cycles:
        Idle cycles the master inserts before re-issuing a failed
        transaction (models firmware error-handler latency).
    timeout_cycles:
        Per-transaction watchdog: an attempt still unfinished this many
        cycles after it was first issued is cancelled on the bus and
        treated as an error with cause :attr:`ErrorCause.TIMEOUT`.
        ``None`` disables the watchdog.
    retry_on:
        Error causes the policy retries; decode errors are permanent
        by default — re-issuing an unmapped address cannot succeed.
    """

    max_attempts: int = 3
    backoff_cycles: int = 2
    timeout_cycles: typing.Optional[int] = None
    retry_on: typing.FrozenSet[ErrorCause] = frozenset(
        {ErrorCause.SLAVE_ERROR, ErrorCause.TIMEOUT})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_cycles < 0:
            raise ValueError("backoff_cycles must be >= 0")
        if self.timeout_cycles is not None and self.timeout_cycles < 1:
            raise ValueError("timeout_cycles must be >= 1 (or None)")

    def should_retry(self, cause: typing.Optional["ErrorCause"],
                     attempts: int) -> bool:
        """True if a failure of *cause* after *attempts* gets a retry."""
        if attempts >= self.max_attempts:
            return False
        if cause is None:
            return False
        return cause in self.retry_on


@dataclasses.dataclass
class FaultReport:
    """Structured record of one recovery episode on a master.

    One report per script item that ever failed; ``recovered`` tells
    whether a retry eventually completed it.  ``cycles_lost`` is the
    recovery overhead: the span from the first issue to the final
    completion minus the latency the successful attempt would have had
    on its own.  ``retry_energy_pj`` is the energy the platform spent
    between the first failure and the resolution, if the master was
    given an energy probe (``None`` otherwise).
    """

    address: int
    kind: str
    cause: typing.Optional[ErrorCause]
    attempts: int
    recovered: bool
    first_issue_cycle: typing.Optional[int]
    resolved_cycle: typing.Optional[int]
    cycles_lost: typing.Optional[int]
    retry_energy_pj: typing.Optional[float] = None

    def __repr__(self) -> str:
        cause = self.cause.value if self.cause else "?"
        outcome = "recovered" if self.recovered else "gave up"
        return (f"FaultReport(@{self.address:#010x} {self.kind} "
                f"{cause} attempts={self.attempts} {outcome})")
