"""Outstanding-transaction accounting.

The 4KSc core "limits the number of possible outstanding transactions
to four burst instruction reads, four burst data reads, and four burst
writes" (§1).  The bus models enforce the same budgets: a request that
would exceed its category's budget is not accepted (the interface call
returns ``WAIT`` and the master retries next cycle).
"""

from __future__ import annotations

import typing

from .types import MAX_OUTSTANDING_PER_KIND, TransactionKind
from .transaction import Transaction


class OutstandingBudget:
    """Tracks in-flight transactions per :class:`TransactionKind`."""

    def __init__(self,
                 limit: int = MAX_OUTSTANDING_PER_KIND) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit
        self._in_flight: typing.Dict[TransactionKind, set] = {
            kind: set() for kind in TransactionKind
        }
        self.peak: typing.Dict[TransactionKind, int] = {
            kind: 0 for kind in TransactionKind
        }
        self.rejected: int = 0

    def try_acquire(self, transaction: Transaction) -> bool:
        """Admit *transaction* if its category has budget left."""
        bucket = self._in_flight[transaction.kind]
        if transaction.txn_id in bucket:
            return True  # already admitted; re-invocation is free
        if len(bucket) >= self.limit:
            self.rejected += 1
            return False
        bucket.add(transaction.txn_id)
        self.peak[transaction.kind] = max(
            self.peak[transaction.kind], len(bucket))
        return True

    def release(self, transaction: Transaction) -> None:
        """Return the budget slot of a finished transaction."""
        bucket = self._in_flight[transaction.kind]
        bucket.discard(transaction.txn_id)

    def in_flight(self, kind: TransactionKind) -> int:
        """Number of admitted, unfinished transactions of *kind*."""
        return len(self._in_flight[kind])

    def total_in_flight(self) -> int:
        return sum(len(bucket) for bucket in self._in_flight.values())

    def __repr__(self) -> str:
        counts = {kind.value: len(bucket)
                  for kind, bucket in self._in_flight.items()}
        return f"OutstandingBudget(limit={self.limit}, in_flight={counts})"
