"""Bus protocol checker (assertion-based verification IP).

Audits a recorded cycle-by-cycle trace of the EC interface wires —
from the layer-1 reconstruction or the RTL bus — against the signal
rules of ``docs/PROTOCOL.md``.  This is the passive monitor every bus
verification environment carries: it does not influence the models, it
only reports violations, so any new bus implementation (or a refactor
of an existing one) can be checked against the written contract.

Checked rules:

* ``BFIRST_SCOPE``   — EB_BFirst only asserted while EB_AValid is high,
* ``BLAST_SCOPE``    — EB_BLast only asserted while EB_AValid is high,
* ``TENURE_FRAMING`` — every address tenure starts with EB_BFirst and
  ends with EB_BLast (tenure boundaries inferred from EB_AValid and
  EB_BLast/EB_BFirst edges),
* ``ARDY_IDLE``      — EB_ARdy is high whenever the address channel is
  idle (the slave is ready by default),
* ``QUALIFIER_STABLE`` — EB_A/EB_Instr/EB_Write/EB_Burst/EB_BE hold
  their values for the whole tenure,
* ``RDVAL_RBERR_EXCLUSIVE`` / ``WDRDY_WBERR_EXCLUSIVE`` — a data beat
  cannot complete and error in the same cycle,
* ``BUS_HOLD``       — data/address buses only change in cycles where
  their channel is active (buses hold when idle).
"""

from __future__ import annotations

import dataclasses
import logging
import typing

from .types import ProtocolError

_log = logging.getLogger(__name__)

#: Valid reporting policies for :class:`ProtocolChecker`.
POLICIES = ("collect", "log", "abort")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One protocol rule broken at one cycle.

    ``state`` is the live simulator/bus context captured at report time
    when the checker runs online (empty for post-hoc audits).
    """

    rule: str
    cycle: int
    message: str
    state: typing.Mapping[str, typing.Any] = dataclasses.field(
        default_factory=dict, compare=False)

    def __str__(self) -> str:
        text = f"[{self.rule}] cycle {self.cycle}: {self.message}"
        if self.state:
            context = ", ".join(f"{key}={value}" for key, value
                                in self.state.items())
            text += f" [{context}]"
        return text


class ProtocolViolationError(ProtocolError):
    """Raised by an ``abort``-policy checker; carries the violation."""

    def __init__(self, violation: Violation) -> None:
        self.violation = violation
        self.state = violation.state
        super().__init__(str(violation))


class ProtocolChecker:
    """Feeds on per-cycle value dicts; accumulates violations.

    Parameters
    ----------
    policy:
        ``"collect"`` (default) only accumulates violations,
        ``"log"`` additionally logs each one as a warning, and
        ``"abort"`` raises :class:`ProtocolViolationError` on the first
        violation — the error carries the live state snapshot.
    state_probe:
        Optional callable returning a dict of live context (simulator
        time, bus cycle, …) attached to every violation; this is what
        turns the post-hoc auditor into an online monitor.
    """

    QUALIFIERS = ("EB_A", "EB_Instr", "EB_Write", "EB_Burst", "EB_BE")

    def __init__(self, policy: str = "collect",
                 state_probe: typing.Optional[typing.Callable[
                     [], typing.Mapping[str, typing.Any]]] = None) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown checker policy {policy!r}; choose from "
                f"{POLICIES}")
        self.policy = policy
        self.state_probe = state_probe
        self.violations: typing.List[Violation] = []
        self.cycles_checked = 0
        self._previous: typing.Optional[typing.Dict[str, int]] = None
        self._tenure_open = False
        self._tenure_start: typing.Dict[str, int] = {}

    # ------------------------------------------------------------------

    def check_cycle(self, cycle: int,
                    values: typing.Mapping[str, int]) -> None:
        """Audit one cycle's committed wire values."""
        self.cycles_checked += 1
        avalid = values["EB_AValid"]
        bfirst = values["EB_BFirst"]
        blast = values["EB_BLast"]

        if bfirst and not avalid:
            self._report("BFIRST_SCOPE", cycle,
                         "EB_BFirst asserted outside a tenure")
        if blast and not avalid:
            self._report("BLAST_SCOPE", cycle,
                         "EB_BLast asserted outside a tenure")
        if not avalid and not values["EB_ARdy"]:
            self._report("ARDY_IDLE", cycle,
                         "EB_ARdy low while the address channel is idle")
        if values["EB_RdVal"] and values["EB_RBErr"]:
            self._report("RDVAL_RBERR_EXCLUSIVE", cycle,
                         "read beat both valid and in error")
        if values["EB_WDRdy"] and values["EB_WBErr"]:
            self._report("WDRDY_WBERR_EXCLUSIVE", cycle,
                         "write beat both accepted and in error")

        self._check_tenure(cycle, values, avalid, bfirst, blast)
        self._check_holds(cycle, values, avalid)
        self._previous = dict(values)

    def _check_tenure(self, cycle, values, avalid, bfirst, blast):
        if avalid and not self._tenure_open:
            # a tenure begins this cycle: it must carry EB_BFirst
            if not bfirst:
                self._report("TENURE_FRAMING", cycle,
                             "tenure started without EB_BFirst")
            self._tenure_open = True
            self._tenure_start = {name: values[name]
                                  for name in self.QUALIFIERS}
        elif avalid and self._tenure_open and bfirst:
            # back-to-back tenures: previous one must have closed with
            # EB_BLast in the preceding cycle
            previous = self._previous or {}
            if not previous.get("EB_BLast", 0):
                self._report("TENURE_FRAMING", cycle,
                             "new tenure while the previous one never "
                             "asserted EB_BLast")
            self._tenure_start = {name: values[name]
                                  for name in self.QUALIFIERS}
        elif avalid and self._tenure_open:
            # mid-tenure: qualifiers must not move
            for name in self.QUALIFIERS:
                if values[name] != self._tenure_start[name]:
                    self._report(
                        "QUALIFIER_STABLE", cycle,
                        f"{name} changed mid-tenure "
                        f"({self._tenure_start[name]:#x} -> "
                        f"{values[name]:#x})")
        if not avalid and self._tenure_open:
            previous = self._previous or {}
            if not previous.get("EB_BLast", 0):
                self._report("TENURE_FRAMING", cycle,
                             "tenure ended without EB_BLast")
            self._tenure_open = False
        if avalid and blast:
            # the tenure closes this cycle; a new one may follow
            self._tenure_open = False

    def _check_holds(self, cycle, values, avalid):
        if self._previous is None:
            return
        if not avalid and values["EB_A"] != self._previous["EB_A"]:
            self._report("BUS_HOLD", cycle,
                         "EB_A changed while the address channel idle")
        read_active = values["EB_RdVal"] or self._previous["EB_RdVal"]
        if not read_active and values["EB_RData"] != \
                self._previous["EB_RData"]:
            self._report("BUS_HOLD", cycle,
                         "EB_RData changed without EB_RdVal activity")

    def _report(self, rule: str, cycle: int, message: str) -> None:
        state = dict(self.state_probe()) if self.state_probe else {}
        violation = Violation(rule, cycle, message, state)
        self.violations.append(violation)
        if self.policy == "log":
            _log.warning("protocol violation: %s", violation)
        elif self.policy == "abort":
            raise ProtocolViolationError(violation)

    # ------------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def record(self, cycle: int, values: typing.Mapping[str, int],
               energy_pj: float = 0.0) -> None:
        """Recorder-compatible sink: lets a checker sit directly in a
        bus model's signal-sink list alongside a
        :class:`~repro.power.SignalStateRecorder`."""
        self.check_cycle(cycle, values)

    def check_trace(self, cycles: typing.Sequence[int],
                    values: typing.Sequence[typing.Mapping[str, int]]
                    ) -> "ProtocolChecker":
        """Audit a whole recorded trace; returns self for chaining."""
        for cycle, cycle_values in zip(cycles, values):
            self.check_cycle(cycle, cycle_values)
        return self

    def summary(self) -> str:
        if self.clean:
            return (f"protocol check: {self.cycles_checked} cycles, "
                    f"no violations")
        lines = [f"protocol check: {len(self.violations)} violation(s) "
                 f"in {self.cycles_checked} cycles:"]
        lines.extend(f"  {violation}" for violation in
                     self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


def check_recorder(recorder) -> ProtocolChecker:
    """Convenience: audit a :class:`SignalStateRecorder`."""
    checker = ProtocolChecker()
    return checker.check_trace(recorder.cycles, recorder.values)
