"""Address decoding and the system memory map.

The bus controller the paper models "contains the address decoder and
bus control logic" (§3).  :class:`MemoryMap` is the behavioural address
decoder shared by the TLM layers; the gate-level model synthesises the
equivalent comparator network in :mod:`repro.rtl.bus_rtl`.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from .interfaces import Slave
from .types import ADDRESS_MASK, AccessRights, TransactionKind


class DecodeError(LookupError):
    """No slave claims the address (decoded as a bus error)."""


class MapConflictError(ValueError):
    """Two slaves claim overlapping address ranges."""


@dataclasses.dataclass(frozen=True)
class Region:
    """One decoded window of the memory map."""

    base: int
    size: int
    slave: Slave
    name: str

    @property
    def end(self) -> int:
        """One past the last address of the window."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class MemoryMap:
    """The address decoder: sorted, non-overlapping slave windows."""

    def __init__(self) -> None:
        self._regions: typing.List[Region] = []
        self._bases: typing.List[int] = []

    def add_slave(self, slave: Slave,
                  name: typing.Optional[str] = None) -> Region:
        """Register *slave* at its own base address/size window."""
        base = slave.base_address
        size = slave.size
        if size <= 0:
            raise MapConflictError(f"slave {name!r} has non-positive size")
        if base < 0 or base + size - 1 > ADDRESS_MASK:
            raise MapConflictError(
                f"slave window [{base:#x}, {base + size:#x}) exceeds "
                f"the 36-bit address space")
        region = Region(base, size, slave, name or type(slave).__name__)
        index = bisect.bisect_left(self._bases, base)
        if index > 0 and self._regions[index - 1].end > base:
            raise MapConflictError(
                f"{region.name} overlaps {self._regions[index - 1].name}")
        if index < len(self._regions) and region.end > self._bases[index]:
            raise MapConflictError(
                f"{region.name} overlaps {self._regions[index].name}")
        self._regions.insert(index, region)
        self._bases.insert(index, base)
        return region

    def decode(self, address: int) -> Region:
        """Return the region containing *address*.

        Raises :class:`DecodeError` when no slave claims it — the bus
        turns this into a bus-error response.
        """
        index = bisect.bisect_right(self._bases, address) - 1
        if index >= 0 and self._regions[index].contains(address):
            return self._regions[index]
        raise DecodeError(f"no slave at address {address:#x}")

    def decode_checked(self, address: int, kind: TransactionKind,
                       num_bytes: int) -> Region:
        """Decode and enforce rights + window containment for a burst.

        Raises :class:`DecodeError` when the address misses, the burst
        crosses out of the window, or the slave's access rights forbid
        the transaction kind.
        """
        region = self.decode(address)
        if address + num_bytes > region.end:
            raise DecodeError(
                f"access [{address:#x}, {address + num_bytes:#x}) "
                f"crosses out of {region.name}")
        if not region.slave.access_rights.permits(kind):
            raise DecodeError(
                f"{kind.value} not permitted on {region.name} "
                f"(rights: {region.slave.access_rights})")
        return region

    @property
    def regions(self) -> typing.Tuple[Region, ...]:
        """All windows in ascending base-address order."""
        return tuple(self._regions)

    def rights_of(self, address: int) -> AccessRights:
        """Access rights at *address* (``NONE`` if unmapped)."""
        try:
            return self.decode(address).slave.access_rights
        except DecodeError:
            return AccessRights.NONE

    def __len__(self) -> int:
        return len(self._regions)

    def __repr__(self) -> str:
        windows = ", ".join(
            f"{r.name}@[{r.base:#x},{r.end:#x})" for r in self._regions)
        return f"MemoryMap({windows})"
