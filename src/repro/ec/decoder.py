"""Address decoding and the system memory map.

The bus controller the paper models "contains the address decoder and
bus control logic" (§3).  :class:`MemoryMap` is the behavioural address
decoder shared by the TLM layers; the gate-level model synthesises the
equivalent comparator network in :mod:`repro.rtl.bus_rtl`.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from .interfaces import Slave
from .types import ADDRESS_MASK, AccessRights, TransactionKind


class DecodeError(LookupError):
    """No slave claims the address (decoded as a bus error)."""


class MapConflictError(ValueError):
    """Two slaves claim overlapping address ranges."""


#: Longest bridge chain :meth:`MemoryMap.resolve` will follow.  Real
#: fabrics are two or three segments deep; anything longer is almost
#: certainly a bridge cycle, which would otherwise loop forever.
MAX_ROUTE_DEPTH = 8


@dataclasses.dataclass(frozen=True)
class Region:
    """One decoded window of the memory map."""

    base: int
    size: int
    slave: Slave
    name: str

    @property
    def end(self) -> int:
        """One past the last address of the window."""
        return self.base + self.size

    @property
    def is_bridge(self) -> bool:
        """True when this region leads to another bus segment.

        A bridge slave exposes the downstream segment's decoder as a
        ``downstream_map`` attribute (see
        :class:`~repro.fabric.BusBridge`); duck-typing keeps the core
        decoder free of a dependency on the fabric package.
        """
        return getattr(self.slave, "downstream_map", None) is not None

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclasses.dataclass(frozen=True)
class Route:
    """The decoded path from one bus to the terminal slave.

    ``regions[0]`` is the window on the originating bus (a local slave
    or the first bridge); every following entry is one bus segment
    further downstream; ``regions[-1]`` is the terminal slave that
    actually services the data.  A flat (single-bus) decode is a route
    of length one.
    """

    regions: typing.Tuple[Region, ...]

    @property
    def terminal(self) -> Region:
        """The region of the slave that finally services the access."""
        return self.regions[-1]

    @property
    def bridges(self) -> typing.Tuple[Region, ...]:
        """The bridge hops crossed on the way (may be empty)."""
        return self.regions[:-1]

    @property
    def hops(self) -> int:
        """Number of bridges crossed (0 on a flat map)."""
        return len(self.regions) - 1


class MemoryMap:
    """The address decoder: sorted, non-overlapping slave windows."""

    def __init__(self) -> None:
        self._regions: typing.List[Region] = []
        self._bases: typing.List[int] = []

    def add_slave(self, slave: Slave,
                  name: typing.Optional[str] = None) -> Region:
        """Register *slave* at its own base address/size window."""
        base = slave.base_address
        size = slave.size
        if size <= 0:
            raise MapConflictError(f"slave {name!r} has non-positive size")
        if base < 0 or base + size - 1 > ADDRESS_MASK:
            raise MapConflictError(
                f"slave window [{base:#x}, {base + size:#x}) exceeds "
                f"the 36-bit address space")
        region = Region(base, size, slave, name or type(slave).__name__)
        index = bisect.bisect_left(self._bases, base)
        if index > 0 and self._regions[index - 1].end > base:
            raise MapConflictError(self._conflict_message(
                region, self._regions[index - 1]))
        if index < len(self._regions) and region.end > self._bases[index]:
            raise MapConflictError(self._conflict_message(
                region, self._regions[index]))
        self._regions.insert(index, region)
        self._bases.insert(index, base)
        return region

    @staticmethod
    def _conflict_message(new: Region, existing: Region) -> str:
        """Name *both* windows: which mapping failed, and what it hit."""
        return (f"cannot map {new.name!r} "
                f"[{new.base:#x}, {new.end:#x}): overlaps "
                f"{existing.name!r} "
                f"[{existing.base:#x}, {existing.end:#x})")

    def decode(self, address: int) -> Region:
        """Return the region containing *address*.

        Raises :class:`DecodeError` when no slave claims it — the bus
        turns this into a bus-error response.
        """
        index = bisect.bisect_right(self._bases, address) - 1
        if index >= 0 and self._regions[index].contains(address):
            return self._regions[index]
        raise DecodeError(f"no slave at address {address:#x}")

    def decode_checked(self, address: int, kind: TransactionKind,
                       num_bytes: int) -> Region:
        """Decode and enforce rights + window containment for a burst.

        Raises :class:`DecodeError` when the address misses, the burst
        crosses out of the window, or the slave's access rights forbid
        the transaction kind.
        """
        region = self.decode(address)
        if address + num_bytes > region.end:
            raise DecodeError(
                f"access [{address:#x}, {address + num_bytes:#x}) "
                f"crosses out of {region.name}")
        if not region.slave.access_rights.permits(kind):
            raise DecodeError(
                f"{kind.value} not permitted on {region.name} "
                f"(rights: {region.slave.access_rights})")
        return region

    # -- hierarchical routing ----------------------------------------------

    def resolve(self, address: int) -> Route:
        """Decode *address*, following bridges to the terminal slave.

        On a flat map this is :meth:`decode` wrapped in a one-hop
        :class:`Route`.  When the decoded region is a bridge, decoding
        continues on the bridge's downstream map — the address space is
        global, so no translation happens at the hop.  Raises
        :class:`DecodeError` on a miss at any hop, or when the chain
        exceeds :data:`MAX_ROUTE_DEPTH` (a bridge cycle).
        """
        return self._resolve(address, lambda m: m.decode(address))

    def resolve_checked(self, address: int, kind: TransactionKind,
                        num_bytes: int) -> Route:
        """Like :meth:`resolve`, but enforce rights + containment at
        every hop with :meth:`decode_checked` — a burst must fit the
        bridge window upstream *and* the terminal window downstream,
        and every hop's access rights must permit the kind."""
        return self._resolve(
            address,
            lambda m: m.decode_checked(address, kind, num_bytes))

    def _resolve(self, address: int, decode_one) -> Route:
        regions: typing.List[Region] = []
        memory_map: "MemoryMap" = self
        for _ in range(MAX_ROUTE_DEPTH + 1):
            region = decode_one(memory_map)
            regions.append(region)
            downstream = getattr(region.slave, "downstream_map", None)
            if downstream is None:
                return Route(tuple(regions))
            memory_map = downstream
        raise DecodeError(
            f"route to {address:#x} exceeds {MAX_ROUTE_DEPTH} bridge "
            f"hops — bridge cycle? ({' -> '.join(r.name for r in regions)})")

    @property
    def regions(self) -> typing.Tuple[Region, ...]:
        """All windows in ascending base-address order."""
        return tuple(self._regions)

    def rights_of(self, address: int) -> AccessRights:
        """Access rights at *address* (``NONE`` if unmapped)."""
        try:
            return self.decode(address).slave.access_rights
        except DecodeError:
            return AccessRights.NONE

    def __len__(self) -> int:
        return len(self._regions)

    def __repr__(self) -> str:
        windows = ", ".join(
            f"{r.name}@[{r.base:#x},{r.end:#x})" for r in self._regions)
        return f"MemoryMap({windows})"
