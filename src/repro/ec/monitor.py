"""Online bus monitor: the :class:`ProtocolChecker` attached live.

``check_recorder`` audits a finished run post-hoc; this module attaches
the same rule set *while the simulation runs*, on any model layer:

* **layer 1 / RTL** — both reconstruct the EC wires every cycle, so the
  monitor subscribes as a signal sink and audits each committed cycle
  exactly as the post-hoc checker would;
* **layer 2** — has no per-cycle wires (it books whole transactions on
  wait-state snapshots), so the monitor falls back to transaction-level
  invariants only.

Transaction-level invariants (checked on every layer):

* ``TXN_BEATS``       — an OK transaction completed all its beats,
* ``TXN_ERROR_CAUSE`` — an errored transaction carries an
  :class:`~repro.ec.ErrorCause`,
* ``TXN_ORDER``       — issue ≤ address-done ≤ data-done cycles,
* ``TXN_DATA``        — a read returned exactly ``burst_length`` words.

Injected faults (slave errors, bit flips surfacing as ``EB_RBErr``…)
are *legal* protocol, so they are not violations: the monitor records
them as *flagged observations* (``TXN_ERROR`` / ``BEAT_ERROR``) so a
campaign can assert that its seeded faults were actually seen on the
wire without polluting the violation list.
"""

from __future__ import annotations

import dataclasses
import typing

from .checker import ProtocolChecker, Violation

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from .transaction import Transaction


@dataclasses.dataclass(frozen=True)
class Observation:
    """A protocol-legal but noteworthy occurrence (e.g. a bus error)."""

    kind: str
    cycle: int
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] cycle {self.cycle}: {self.message}"


class BusMonitor:
    """Attachable online protocol monitor for all three bus models.

    Parameters
    ----------
    policy:
        Forwarded to the embedded :class:`ProtocolChecker`:
        ``"collect"`` / ``"log"`` / ``"abort"``.
    name:
        Used in diagnostics when several monitors coexist.
    """

    def __init__(self, policy: str = "collect",
                 name: str = "bus_monitor") -> None:
        self.name = name
        self.policy = policy
        self.checker = ProtocolChecker(policy=policy,
                                       state_probe=self._probe)
        self.flagged: typing.List[Observation] = []
        self.transactions_seen = 0
        self.bus: typing.Optional[typing.Any] = None
        self.wire_level = False

    # -- attachment ------------------------------------------------------

    def attach(self, bus) -> "BusMonitor":
        """Hook onto *bus* (layer 1, layer 2 or RTL); returns self.

        Transaction completion is observed on every layer through
        ``bus.attach_monitor``.  Wire-level auditing additionally
        engages where per-cycle values exist: the layer-1 power model's
        signal sinks, or the RTL bus's own sinks.
        """
        self.bus = bus
        bus.attach_monitor(self)
        power_model = getattr(bus, "power_model", None)
        if power_model is not None and hasattr(power_model,
                                               "add_signal_sink"):
            power_model.add_signal_sink(self._on_cycle)
            self.wire_level = True
        elif hasattr(bus, "add_signal_sink"):
            bus.add_signal_sink(self._on_cycle)
            self.wire_level = True
        return self

    def _probe(self) -> typing.Dict[str, typing.Any]:
        """Live context attached to every violation (online mode)."""
        bus = self.bus
        if bus is None:
            return {"monitor": self.name}
        return {"monitor": self.name, "model": bus.name,
                "cycle": bus.cycle, "now": bus.simulator.now,
                "busy": bus.busy}

    # -- wire-level path (layer 1 / RTL) ---------------------------------

    def _on_cycle(self, cycle: int, values: typing.Mapping[str, int],
                  energy_pj: float) -> None:
        self.checker.check_cycle(cycle, values)
        if values.get("EB_RBErr"):
            self.flagged.append(Observation(
                "BEAT_ERROR", cycle, "EB_RBErr asserted (read beat "
                "errored on the wire)"))
        if values.get("EB_WBErr"):
            self.flagged.append(Observation(
                "BEAT_ERROR", cycle, "EB_WBErr asserted (write beat "
                "errored on the wire)"))

    # -- transaction-level path (all layers) -----------------------------

    def on_transaction_complete(self, bus,
                                transaction: "Transaction") -> None:
        self.transactions_seen += 1
        cycle = bus.cycle
        if transaction.error:
            self.flagged.append(Observation(
                "TXN_ERROR", cycle,
                f"transaction #{transaction.txn_id} "
                f"{transaction.kind.value}@{transaction.address:#x} "
                f"errored (cause: {transaction.error_cause})"))
            if transaction.error_cause is None:
                self.checker._report(
                    "TXN_ERROR_CAUSE", cycle,
                    f"transaction #{transaction.txn_id} errored "
                    f"without an ErrorCause")
        else:
            if transaction.beats_done != transaction.burst_length:
                self.checker._report(
                    "TXN_BEATS", cycle,
                    f"transaction #{transaction.txn_id} reported OK "
                    f"with {transaction.beats_done}/"
                    f"{transaction.burst_length} beats")
            if (transaction.data is None
                    or len(transaction.data) != transaction.burst_length):
                self.checker._report(
                    "TXN_DATA", cycle,
                    f"transaction #{transaction.txn_id} completed with "
                    f"a malformed data payload")
        issue = transaction.issue_cycle
        addr = transaction.address_done_cycle
        data = transaction.data_done_cycle
        stamps = [stamp for stamp in (issue, addr, data)
                  if stamp is not None]
        if stamps != sorted(stamps):
            self.checker._report(
                "TXN_ORDER", cycle,
                f"transaction #{transaction.txn_id} cycle stamps out of "
                f"order: issue={issue} addr={addr} data={data}")

    # -- reporting -------------------------------------------------------

    @property
    def violations(self) -> typing.List[Violation]:
        return self.checker.violations

    @property
    def clean(self) -> bool:
        return self.checker.clean

    def summary(self) -> str:
        lines = [f"monitor {self.name!r}: "
                 f"{self.transactions_seen} transaction(s), "
                 f"{self.checker.cycles_checked} cycle(s) audited "
                 f"({'wire' if self.wire_level else 'transaction'} "
                 f"level), {len(self.flagged)} flagged, "
                 f"{len(self.violations)} violation(s)"]
        lines.extend(f"  {violation}" for violation in
                     self.violations[:20])
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"BusMonitor({self.name!r}, policy={self.policy!r}, "
                f"violations={len(self.violations)}, "
                f"flagged={len(self.flagged)})")
