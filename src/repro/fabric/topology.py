"""Declarative multi-bus topologies.

A :class:`Topology` is a pure description — segment names, the slaves
each segment hosts, which bridges join them, and each segment's
arbitration policy.  :func:`repro.fabric.build_fabric` turns one into
live buses, maps and bridges;
:class:`~repro.soc.SmartCardPlatform` accepts one (or a preset name)
and builds the Figure-1 card around it.

The topology must be a tree rooted at :attr:`Topology.root`: every
non-root segment is fed by exactly one bridge.  That is what real
bridged fabrics are (AHB → APB), and it is what keeps routing loop-free
without address translation.
"""

from __future__ import annotations

import dataclasses
import typing

#: slave order of the flat Figure-1 platform — the canonical legacy map
FLAT_SLAVES = ("rom", "flash", "eeprom", "ram",
               "uart", "timers", "trng", "intc")

#: the two-segment preset: memories stay on the CPU bus, the
#: memory-mapped peripherals move behind the bridge
CPU_SLAVES = ("rom", "flash", "eeprom", "ram")
PERIPHERAL_SLAVES = ("uart", "timers", "trng", "intc")

ARBITER_POLICIES = ("priority", "round_robin", "priority_rr")


@dataclasses.dataclass(frozen=True)
class SegmentSpec:
    """One bus segment: a name, its slaves, optional arbitration."""

    name: str
    slaves: typing.Tuple[str, ...]
    #: arbitration policy when the segment has several masters
    #: (see :class:`~repro.tlm.BusArbiter`); None = single master
    arbiter: typing.Optional[str] = None

    def __post_init__(self) -> None:
        if self.arbiter is not None and self.arbiter not in ARBITER_POLICIES:
            raise ValueError(
                f"segment {self.name!r}: unknown arbitration policy "
                f"{self.arbiter!r}; expected one of {ARBITER_POLICIES}")


@dataclasses.dataclass(frozen=True)
class BridgeSpec:
    """One bridge: upstream segment → downstream segment."""

    name: str
    upstream: str
    downstream: str
    #: address-phase wait states every crossing transaction pays
    crossing_cycles: int = 1
    #: bounded posted-write queue depth (full queue back-pressures)
    posted_depth: int = 2

    def __post_init__(self) -> None:
        if self.crossing_cycles < 0:
            raise ValueError(
                f"bridge {self.name!r}: crossing_cycles must be >= 0")
        if self.posted_depth < 1:
            raise ValueError(
                f"bridge {self.name!r}: posted_depth must be >= 1")


class Topology:
    """A validated tree of bus segments joined by bridges."""

    def __init__(self, segments: typing.Sequence[SegmentSpec],
                 bridges: typing.Sequence[BridgeSpec] = (),
                 root: typing.Optional[str] = None) -> None:
        if not segments:
            raise ValueError("a topology needs at least one segment")
        self.segments: typing.Tuple[SegmentSpec, ...] = tuple(segments)
        self.bridges: typing.Tuple[BridgeSpec, ...] = tuple(bridges)
        self.root = root if root is not None else self.segments[0].name
        self._validate()

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        names = [segment.name for segment in self.segments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate segment names in {names}")
        if self.root not in names:
            raise ValueError(f"root segment {self.root!r} is not one "
                             f"of {names}")
        slave_names = [slave for segment in self.segments
                       for slave in segment.slaves]
        if len(set(slave_names)) != len(slave_names):
            raise ValueError(
                f"a slave may live on only one segment; duplicates in "
                f"{sorted(slave_names)}")
        bridge_names = [bridge.name for bridge in self.bridges]
        if len(set(bridge_names)) != len(bridge_names):
            raise ValueError(f"duplicate bridge names in {bridge_names}")
        clash = set(bridge_names) & set(slave_names)
        if clash:
            raise ValueError(f"bridge names clash with slave names: "
                             f"{sorted(clash)}")
        fed_by: typing.Dict[str, str] = {}
        for bridge in self.bridges:
            for end, label in ((bridge.upstream, "upstream"),
                               (bridge.downstream, "downstream")):
                if end not in names:
                    raise ValueError(
                        f"bridge {bridge.name!r}: {label} segment "
                        f"{end!r} is not one of {names}")
            if bridge.downstream == self.root:
                raise ValueError(
                    f"bridge {bridge.name!r} feeds the root segment "
                    f"{self.root!r}; the root has no upstream")
            if bridge.downstream in fed_by:
                raise ValueError(
                    f"segment {bridge.downstream!r} is fed by two "
                    f"bridges ({fed_by[bridge.downstream]!r} and "
                    f"{bridge.name!r}); the topology must be a tree")
            fed_by[bridge.downstream] = bridge.name
        # every non-root segment must be reachable from the root —
        # this also rules out bridge cycles detached from the tree
        reachable = {self.root}
        frontier = [self.root]
        while frontier:
            segment = frontier.pop()
            for bridge in self.bridges:
                if (bridge.upstream == segment
                        and bridge.downstream not in reachable):
                    reachable.add(bridge.downstream)
                    frontier.append(bridge.downstream)
        unreachable = set(names) - reachable
        if unreachable:
            raise ValueError(
                f"segments unreachable from root {self.root!r}: "
                f"{sorted(unreachable)} — every non-root segment needs "
                f"a bridge chain from the root")

    # -- queries ------------------------------------------------------------

    @property
    def is_flat(self) -> bool:
        """True for a single-segment (bridge-free) topology."""
        return len(self.segments) == 1

    def segment(self, name: str) -> SegmentSpec:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")

    def bridges_from(self, segment: str) -> typing.Tuple[BridgeSpec, ...]:
        """Bridges whose upstream side is *segment*, in spec order."""
        return tuple(bridge for bridge in self.bridges
                     if bridge.upstream == segment)

    def slave_names(self) -> typing.Tuple[str, ...]:
        return tuple(slave for segment in self.segments
                     for slave in segment.slaves)

    def with_slave(self, segment_name: str, slave: str) -> "Topology":
        """A new topology with *slave* appended to *segment_name*
        (no-op when the slave is already placed somewhere)."""
        if slave in self.slave_names():
            return self
        segments = tuple(
            dataclasses.replace(spec, slaves=spec.slaves + (slave,))
            if spec.name == segment_name else spec
            for spec in self.segments)
        return Topology(segments, self.bridges, self.root)

    def with_arbiter(self, segment_name: str,
                     policy: str) -> "Topology":
        """A new topology with *segment_name* arbitrated by *policy*."""
        self.segment(segment_name)  # raises on unknown name
        segments = tuple(
            dataclasses.replace(spec, arbiter=policy)
            if spec.name == segment_name else spec
            for spec in self.segments)
        return Topology(segments, self.bridges, self.root)

    # -- presets ------------------------------------------------------------

    @classmethod
    def flat(cls, arbiter: typing.Optional[str] = None) -> "Topology":
        """The legacy single-bus Figure-1 topology."""
        return cls((SegmentSpec("bus", FLAT_SLAVES, arbiter=arbiter),))

    @classmethod
    def two_segment(cls, crossing_cycles: int = 1, posted_depth: int = 2,
                    arbiter: typing.Optional[str] = None) -> "Topology":
        """CPU bus (memories) + peripheral bus behind one bridge.

        *arbiter* arbitrates the CPU (root) segment, where a DMA
        engine contends with the CPU for the bridge.
        """
        return cls(
            (SegmentSpec("cpu", CPU_SLAVES, arbiter=arbiter),
             SegmentSpec("periph", PERIPHERAL_SLAVES)),
            (BridgeSpec("bridge", "cpu", "periph",
                        crossing_cycles=crossing_cycles,
                        posted_depth=posted_depth),))

    @classmethod
    def coerce(cls, value: typing.Union["Topology", str, None]
               ) -> "Topology":
        """None / preset name / instance → a :class:`Topology`."""
        if value is None or value == "flat":
            return cls.flat()
        if value == "two_segment":
            return cls.two_segment()
        if isinstance(value, cls):
            return value
        raise ValueError(
            f"unknown topology {value!r}; expected a Topology, "
            f"'flat' or 'two_segment'")

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{segment.name}({', '.join(segment.slaves)})"
            for segment in self.segments)
        return f"Topology({parts}; bridges={len(self.bridges)})"
