"""Build a live bus fabric from a declarative :class:`Topology`.

One :func:`build_fabric` call turns segment/bridge specs into memory
maps, bus models (any of the three TLM layers), bridges and arbiters,
wired bottom-up so every bridge is a slave on its upstream map and a
master on its downstream bus.  The resulting :class:`BusFabric` owns
the per-link energy buckets — one per segment bus model, bridge and
arbiter — and can telescope them into a single probe total
(:meth:`BusFabric.energy_report`), the invariant the fabric campaign
enforces.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import MemoryMap
from repro.power.psm import CardPowerModel

from .bridge import BusBridge
from .topology import Topology

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel import Clock, Simulator


class _ModelLedger:
    """Adapter: a segment bus power model as an ``energy_pj`` ledger."""

    def __init__(self, name: str, model: typing.Any) -> None:
        self.name = name
        self.model = model

    @property
    def energy_pj(self) -> float:
        return self.model.total_energy_pj

    def __repr__(self) -> str:
        return f"_ModelLedger({self.name!r})"


@dataclasses.dataclass
class FabricSegment:
    """One built segment: its decoder, bus, power model, arbiter."""

    name: str
    memory_map: MemoryMap
    bus: typing.Any
    power_model: typing.Any = None
    arbiter: typing.Any = None

    @property
    def master_interface(self) -> typing.Any:
        """Where a master of this segment plugs in: the arbiter (make
        a port) when one exists, the bus itself otherwise."""
        return self.arbiter if self.arbiter is not None else self.bus


@dataclasses.dataclass(frozen=True)
class FabricEnergyReport:
    """Per-link buckets and their telescoped probe total."""

    buckets: typing.Dict[str, float]
    probe_total_pj: float

    @property
    def bucket_sum_pj(self) -> float:
        # same left-to-right addition order as the composite probe, so
        # a balanced fabric matches to the last bit
        total = 0.0
        for value in self.buckets.values():
            total += value
        return total

    @property
    def imbalance_pj(self) -> float:
        return self.probe_total_pj - self.bucket_sum_pj

    @property
    def balanced(self) -> bool:
        """Exact (bitwise) telescoping of buckets into the probe."""
        return self.probe_total_pj == self.bucket_sum_pj


class BusFabric:
    """A built topology: segments, bridges and their energy buckets."""

    def __init__(self, topology: Topology,
                 segments: typing.Dict[str, FabricSegment],
                 bridges: typing.Dict[str, BusBridge]) -> None:
        self.topology = topology
        self.segments = segments
        self.bridges = bridges

    # -- shorthands ---------------------------------------------------------

    @property
    def root(self) -> FabricSegment:
        return self.segments[self.topology.root]

    @property
    def root_bus(self) -> typing.Any:
        return self.root.bus

    @property
    def root_map(self) -> MemoryMap:
        return self.root.memory_map

    def segment(self, name: str) -> FabricSegment:
        return self.segments[name]

    def bridge(self, name: str) -> BusBridge:
        return self.bridges[name]

    def master_port(self, segment_name: str, name: str,
                    priority: int = 0) -> typing.Any:
        """A new arbiter port on *segment_name* for an extra master."""
        segment = self.segments[segment_name]
        if segment.arbiter is None:
            raise ValueError(
                f"segment {segment_name!r} has no arbiter; declare one "
                f"in the topology to attach multiple masters")
        return segment.arbiter.port(name, priority=priority)

    # -- energy attribution -------------------------------------------------

    def sync_accounts(self) -> None:
        """Bring lazily-accrued accounts (layer 2's per-cycle clock
        baseline) up to each segment's current cycle."""
        for segment in self.segments.values():
            account = getattr(segment.power_model, "account_cycles", None)
            if account is not None:
                account(segment.bus.cycle)

    def _link_ledgers(self) -> typing.List[typing.Any]:
        """Non-root per-link ledgers in canonical (telescoping) order:
        non-root segment models, then bridges, then arbiters."""
        ledgers: typing.List[typing.Any] = []
        for spec in self.topology.segments:
            segment = self.segments[spec.name]
            if (spec.name != self.topology.root
                    and segment.power_model is not None):
                ledgers.append(_ModelLedger(f"bus:{spec.name}",
                                            segment.power_model))
        for spec in self.topology.bridges:
            ledgers.append(self.bridges[spec.name])
        for spec in self.topology.segments:
            segment = self.segments[spec.name]
            if segment.arbiter is not None:
                ledgers.append(segment.arbiter)
        return ledgers

    def composite(self, extra_ledgers: typing.Sequence[typing.Any] = ()
                  ) -> CardPowerModel:
        """One :class:`~repro.power.CardPowerModel` over every link:
        the root bus model plus every per-link ledger (plus any
        *extra_ledgers* — peripherals, DMA, PSMs)."""
        return CardPowerModel(
            self.root.power_model,
            ledgers=self._link_ledgers() + list(extra_ledgers))

    def link_energy_pj(self, extra_ledgers: typing.Sequence[typing.Any]
                       = ()) -> typing.Dict[str, float]:
        """Per-link buckets, in the composite's addition order."""
        self.sync_accounts()
        buckets: typing.Dict[str, float] = {}
        root_model = self.root.power_model
        buckets[f"bus:{self.topology.root}"] = (
            root_model.total_energy_pj if root_model is not None else 0.0)
        for ledger in self._link_ledgers():
            name = getattr(ledger, "name", None) or repr(ledger)
            if isinstance(ledger, BusBridge):
                name = f"bridge:{ledger.name}"
            elif not isinstance(ledger, _ModelLedger):
                name = f"arbiter:{name}"
            buckets[name] = ledger.energy_pj
        for index, ledger in enumerate(extra_ledgers):
            name = getattr(ledger, "name", f"ledger{index}")
            key = f"ledger:{name}"
            # disambiguate duplicate names (a peripheral and its power
            # state machine both answer to "uart"): a silently collapsed
            # bucket would break the telescoping invariant
            while key in buckets:
                key = f"{key}+"
            buckets[key] = ledger.energy_pj
        return buckets

    def energy_report(self, extra_ledgers: typing.Sequence[typing.Any]
                      = ()) -> FabricEnergyReport:
        """Buckets + probe total; ``balanced`` is the telescoping
        invariant: the composite probe equals the bucket sum exactly
        (same ledgers, same addition order — any ledger registered
        twice, dropped, or double-booked breaks the equality)."""
        buckets = self.link_energy_pj(extra_ledgers)
        probe = self.composite(extra_ledgers).total_energy_pj
        return FabricEnergyReport(buckets=buckets, probe_total_pj=probe)

    # -- diagnostics --------------------------------------------------------

    @property
    def posted_writes_pending(self) -> int:
        return sum(bridge.posted_occupancy
                   for bridge in self.bridges.values())

    def transactions_completed(self) -> typing.Dict[str, int]:
        return {name: segment.bus.transactions_completed
                for name, segment in self.segments.items()}

    def __repr__(self) -> str:
        return (f"BusFabric(root={self.topology.root!r}, "
                f"segments={list(self.segments)}, "
                f"bridges={list(self.bridges)})")


def build_fabric(topology: Topology,
                 slaves: typing.Mapping[str, typing.Any],
                 bus_layer: typing.Union[int, str] = 1,
                 simulator: typing.Optional["Simulator"] = None,
                 clock: typing.Optional["Clock"] = None,
                 bus_factory: typing.Optional[typing.Callable] = None,
                 power_models: typing.Union[
                     typing.Mapping[str, typing.Any],
                     typing.Callable[[str], typing.Any], None] = None,
                 ) -> BusFabric:
    """Instantiate *topology* over the named *slaves*.

    * ``bus_layer`` 1/2 build clocked :class:`~repro.tlm.EcBusLayer1` /
      :class:`~repro.tlm.EcBusLayer2` segments (*simulator* and
      *clock* required); ``3`` builds untimed
      :class:`~repro.tlm.EcBusLayer3` segments whose routing is
      synchronous.
    * ``power_models`` maps segment names to per-segment bus power
      models (or is a callable invoked per segment name); segments it
      does not cover run without estimation.
    * Each bridge becomes a slave window on its upstream map (spanning
      the downstream map) and a master on the downstream segment — via
      a priority-0 arbiter port when the downstream segment declares
      an arbiter, directly on the bus otherwise.
    """
    from repro.tlm import EcBusLayer1, EcBusLayer2, EcBusLayer3
    from repro.tlm.arbiter import BusArbiter

    layer3 = bus_layer in (3, "l3")
    if not layer3 and (simulator is None or clock is None):
        raise ValueError("bus layers 1 and 2 need a simulator and clock")
    if bus_factory is None and not layer3:
        bus_factory = {1: EcBusLayer1, 2: EcBusLayer2,
                       "l1": EcBusLayer1, "l2": EcBusLayer2}[bus_layer]
    if callable(power_models):
        models = {spec.name: power_models(spec.name)
                  for spec in topology.segments}
    else:
        models = dict(power_models or {})

    missing = [name for name in topology.slave_names()
               if name not in slaves]
    if missing:
        raise ValueError(f"topology names slaves the platform does not "
                         f"provide: {missing}")

    segments: typing.Dict[str, FabricSegment] = {}
    bridges: typing.Dict[str, BusBridge] = {}

    def build_segment(spec_name: str) -> FabricSegment:
        spec = topology.segment(spec_name)
        memory_map = MemoryMap()
        for slave_name in spec.slaves:
            memory_map.add_slave(slaves[slave_name], slave_name)
        pending = []
        for bridge_spec in topology.bridges_from(spec_name):
            child = build_segment(bridge_spec.downstream)
            bridge = BusBridge(
                bridge_spec.name, child.memory_map,
                crossing_cycles=bridge_spec.crossing_cycles,
                posted_depth=bridge_spec.posted_depth)
            memory_map.add_slave(bridge, bridge_spec.name)
            bridges[bridge_spec.name] = bridge
            pending.append((bridge, child))
        model = models.get(spec_name)
        if layer3:
            if spec.arbiter is not None:
                raise ValueError(
                    f"segment {spec_name!r}: arbitration is a timed "
                    f"concept; layer 3 is untimed")
            bus = EcBusLayer3(memory_map, name=f"ec_bus_{spec_name}")
            arbiter = None
        else:
            bus = bus_factory(simulator, clock, memory_map,
                              name=f"ec_bus_{spec_name}",
                              power_model=model)
            arbiter = (BusArbiter(simulator, clock, bus,
                                  policy=spec.arbiter,
                                  name=f"{spec_name}_arbiter")
                       if spec.arbiter is not None else None)
        segment = FabricSegment(spec_name, memory_map, bus,
                                power_model=model, arbiter=arbiter)
        for bridge, child in pending:
            downstream = (child.arbiter.port(bridge.name, priority=0)
                          if child.arbiter is not None else child.bus)
            if layer3:
                bridge.connect(downstream)
            else:
                bridge.connect(downstream, simulator, clock)
        segments[spec_name] = segment
        return segment

    build_segment(topology.root)
    return BusFabric(topology, segments, bridges)
