"""The bus bridge: a slave upstream, a master downstream.

Real power-aware smart-card SoCs split their traffic across a fast CPU
bus and a slower peripheral bus; the component joining them is a
bridge.  On the upstream bus a :class:`BusBridge` is an ordinary slave
whose window spans every downstream slave (the address space is
global — no translation at the hop); on the downstream bus it is an
ordinary master issuing cloned transactions.  The decoder recognises
it purely by its ``downstream_map`` attribute (see
:meth:`repro.ec.MemoryMap.resolve`), so the core protocol package
never imports this one.

Semantics, mirrored from AHB/APB-style bridges:

* **crossing latency** — surfaced as address-phase wait states on the
  upstream bus, so both timed layers price it with their existing
  machinery,
* **posted writes** — a write completes upstream as soon as the whole
  burst is latched in the bridge's bounded queue; the bridge drains
  the queue downstream on its own clock process.  A full queue
  back-pressures the upstream write phase (WAIT).  A downstream error
  on a posted write cannot be reported upstream any more — it is
  recorded in :attr:`posted_errors`, exactly the hazard posted
  bridges have in silicon,
* **read flush** — a read must not overtake posted writes to the same
  segment: reads WAIT until the posted queue is empty, then forward a
  cloned burst and stream the data upstream one beat per cycle,
* **energy ledger** — every crossing, forwarded beat, posted write and
  stall is booked to the bridge's own ``energy_pj`` ledger, the
  per-link bucket the fabric report telescopes into the probe total.
"""

from __future__ import annotations

import collections
import typing

from repro.ec import (AccessRights, BusState, DecodeError, Direction,
                      ErrorCause, MemoryMap, SlaveResponse, Transaction,
                      WaitStates)
from repro.ec.interfaces import BusMasterInterface, Slave
from repro.kernel import Clock, Module, Simulator


class _ReadForward:
    """Per-transaction state of an in-flight forwarded read."""

    __slots__ = ("txn_id", "clone")

    def __init__(self, txn_id: int, clone: Transaction) -> None:
        self.txn_id = txn_id
        self.clone = clone


class _BridgeDrain(Module):
    """Clock process emptying the posted-write queue downstream."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bridge: "BusBridge") -> None:
        super().__init__(simulator, f"{bridge.name}_drain")
        self.method(bridge._drain_posted, name="drain",
                    sensitive=[clock.posedge_event], dont_initialize=True)


class BusBridge(Slave):
    """Routable window joining an upstream bus to a downstream segment."""

    #: per-event energy costs of the bridge logic itself (pJ); the
    #: wire energy of each segment is priced by that segment's own bus
    #: power model — the bridge ledger is the *link* bucket between them
    ENERGY_COSTS_PJ: typing.Dict[str, float] = {
        "crossing": 1.2,        # one transaction handed across
        "beat_forwarded": 0.3,  # one data beat through the bridge
        "posted_write": 0.6,    # one burst latched into the queue
        "queue_stall": 0.05,    # one upstream WAIT from a full queue
        # -- power-loss handling ------------------------------------------
        "power_off_drain": 0.8,   # one queued write flushed at power-off
        "posted_lost": 0.2,       # one queued write journaled as lost
        # -- injected fabric faults (repro.faults.fabric) ------------------
        "route_fault": 0.4,       # one corrupted route resolution
        "posted_dropped": 0.2,    # one posted write dropped at drain
        "posted_duplicated": 0.6, # one posted write drained twice
        "fault_stall": 0.05,      # one injected crossing-stall cycle
    }

    def __init__(self, name: str, downstream_map: MemoryMap,
                 crossing_cycles: int = 1, posted_depth: int = 2,
                 base_address: typing.Optional[int] = None,
                 size: typing.Optional[int] = None) -> None:
        if crossing_cycles < 0:
            raise ValueError("crossing_cycles must be >= 0")
        if posted_depth < 1:
            raise ValueError("posted_depth must be >= 1")
        regions = downstream_map.regions
        if not regions and (base_address is None or size is None):
            raise ValueError(
                f"bridge {name!r}: downstream map is empty and no "
                f"explicit window was given")
        self.name = name
        #: marks this slave as a bridge for the decoder's resolve()
        self.downstream_map = downstream_map
        self.crossing_cycles = crossing_cycles
        self.posted_depth = posted_depth
        self._base = (base_address if base_address is not None
                      else regions[0].base)
        self._size = (size if size is not None
                      else regions[-1].end - self._base)
        for region in regions:
            if region.base < self._base or region.end > self.end:
                raise ValueError(
                    f"bridge {name!r} window [{self._base:#x}, "
                    f"{self.end:#x}) does not cover downstream region "
                    f"{region.name!r} [{region.base:#x}, {region.end:#x})")
        rights = AccessRights.NONE
        for region in regions:
            rights |= region.slave.access_rights
        self._rights = rights
        self._downstream: typing.Optional[BusMasterInterface] = None
        self._posted: typing.Deque[Transaction] = collections.deque()
        self._read_forward: typing.Optional[_ReadForward] = None
        #: clones issued downstream whose final state has not yet been
        #: retrieved from the downstream finish pool — each needs
        #: exactly one more issue() after finishing, or it parks in the
        #: downstream pool forever and keeps that segment busy
        self._uncollected: typing.Set[int] = set()
        # -- counters + energy ledger (the Peripheral idiom) --------------
        self.energy_pj = 0.0
        self.event_counts: typing.Dict[str, int] = {}
        self.forwarded_reads = 0
        self.forwarded_writes = 0
        self.messages_forwarded = 0
        self.posted_errors = 0
        # -- power-off posted-queue accounting ----------------------------
        #: acknowledged writes flushed downstream at power-off
        self.posted_flushed_on_power_off = 0
        #: acknowledged writes that could not be flushed — journaled
        self.posted_lost_on_power_off = 0
        #: journal of the lost writes: (address, data words)
        self.lost_writes: typing.List[
            typing.Tuple[int, typing.List[int]]] = []
        # -- seeded fabric fault injection (opt-in) -----------------------
        #: a :class:`repro.faults.fabric.BridgeFaultProcess` (or any
        #: object with its pure read_crossing/write_crossing API);
        #: ``None`` keeps the bridge fault-free and byte-identical
        self.fault_process: typing.Optional[typing.Any] = None
        self._read_crossings = 0
        self._write_crossings = 0
        self.route_faults = 0
        self.posted_dropped = 0
        self.posted_duplicated = 0
        self.fault_stall_cycles = 0
        #: per-clone injected stall budget (read crossings)
        self._fault_stalls: typing.Dict[int, int] = {}
        #: per-posted-clone drain action ("drop" | "dup")
        self._drain_actions: typing.Dict[int, str] = {}

    # -- wiring ------------------------------------------------------------

    def connect(self, downstream: BusMasterInterface,
                simulator: typing.Optional[Simulator] = None,
                clock: typing.Optional[Clock] = None) -> "BusBridge":
        """Attach the downstream master interface (the segment's bus or
        an arbiter port).  With *simulator*/*clock* the bridge also
        registers its posted-write drain process; without them the
        bridge is usable only for synchronous (layer-3) routing."""
        self._downstream = downstream
        if simulator is not None and clock is not None:
            _BridgeDrain(simulator, clock, self)
            # a tear must not silently lose writes already acknowledged
            # upstream: flush (or journal) the posted queue at power-off
            simulator.add_power_off_hook(self._on_power_off)
        return self

    @property
    def downstream(self) -> BusMasterInterface:
        if self._downstream is None:
            raise RuntimeError(
                f"bridge {self.name!r} has no downstream master "
                f"interface — call connect() first")
        return self._downstream

    # -- slave control interface -------------------------------------------

    @property
    def base_address(self) -> int:
        return self._base

    @property
    def size(self) -> int:
        return self._size

    @property
    def end(self) -> int:
        return self._base + self._size

    @property
    def wait_states(self) -> WaitStates:
        # the crossing is paid once per transaction, in the address
        # phase; data-phase pacing comes from the downstream slave via
        # the forwarded clone
        return WaitStates(address=self.crossing_cycles)

    @property
    def access_rights(self) -> AccessRights:
        # the union of the downstream slaves' rights: an end-to-end
        # rights check happens per hop in MemoryMap.resolve_checked
        return self._rights

    # -- energy ledger ------------------------------------------------------

    def book(self, event: str, count: int = 1) -> None:
        """Accrue *count* occurrences of *event* on the bridge ledger."""
        cost = self.ENERGY_COSTS_PJ.get(event)
        if cost is None:
            raise KeyError(f"bridge {self.name!r}: unknown energy "
                           f"event {event!r}")
        self.energy_pj += cost * count
        self.event_counts[event] = self.event_counts.get(event, 0) + count

    @property
    def posted_occupancy(self) -> int:
        """Writes currently held in the posted queue."""
        return len(self._posted)

    # -- layer-1 forwarding (per-beat, transaction-aware) -------------------

    def forward_read_beat(self, transaction: Transaction) -> SlaveResponse:
        """One upstream read-phase cycle of *transaction*.

        Ordering: WAIT until every posted write has drained, then issue
        a cloned burst downstream, WAIT until it finishes, and stream
        the data upstream one beat per cycle.  A downstream error
        surfaces after the beats that did complete, matching the
        upstream bus's partial-burst error bookkeeping.
        """
        forward = self._read_forward
        if forward is None or forward.txn_id != transaction.txn_id:
            if self._posted:
                return SlaveResponse.wait()  # read-after-write ordering
            forward = _ReadForward(transaction.txn_id,
                                   self.start_read(transaction))
            self._read_forward = forward
        clone = forward.clone
        state = self._advance_clone(clone)
        if not state.finished:
            return SlaveResponse.wait()
        beat = transaction.beats_done
        if beat < clone.beats_done:
            self.book("beat_forwarded")
            if beat + 1 == transaction.burst_length:
                self._read_forward = None
            return SlaveResponse.ok(clone.data[beat])
        # the downstream burst errored before producing this beat;
        # relay its cause so upstream recovery matches the flat bus
        self._read_forward = None
        return SlaveResponse.error(clone.error_cause)

    def forward_write_beat(self, transaction: Transaction,
                           data: int) -> SlaveResponse:
        """One upstream write-phase cycle of *transaction*.

        Beats are latched in the bridge's write buffer (the upstream
        transaction already carries the full payload); the final beat
        posts the whole burst — or WAITs while the queue is full.
        """
        beat = transaction.beats_done
        if beat < transaction.burst_length - 1:
            self.book("beat_forwarded")
            return SlaveResponse.ok()
        if len(self._posted) >= self.posted_depth:
            self.book("queue_stall")
            return SlaveResponse.wait()
        self.post_write(transaction.clone())
        self.book("beat_forwarded")
        return SlaveResponse.ok()

    def abandon(self, transaction: Transaction) -> None:
        """Upstream evicted *transaction* (watchdog abort): withdraw
        the forwarded read clone from the downstream bus.  Posted
        writes are already committed and drain regardless."""
        forward = self._read_forward
        if forward is not None and forward.txn_id == transaction.txn_id:
            self._read_forward = None
            self._uncollected.discard(forward.clone.txn_id)
            self._fault_stalls.pop(forward.clone.txn_id, None)
            if not forward.clone.finished and self._downstream is not None:
                self._downstream.cancel(forward.clone)

    # -- layer-2 forwarding (timed, block-at-once) --------------------------

    def start_read(self, transaction: Transaction) -> Transaction:
        """Clone *transaction* for the downstream bus and book the
        crossing.  The caller polls the clone with
        :meth:`timed_read_poll` (layer 2) or via
        :meth:`forward_read_beat` (layer 1)."""
        self.book("crossing")
        self.forwarded_reads += 1
        clone = transaction.clone()
        if self.fault_process is not None:
            index = self._read_crossings
            self._read_crossings += 1
            stall, cause = self.fault_process.read_crossing(index)
            if cause is not None:
                # corrupted route resolution: the clone never reaches
                # the downstream bus, it fails right at the hop
                self.book("route_fault")
                self.route_faults += 1
                clone.issue_cycle = 0
                clone.fail(0, cause)
            elif stall > 0:
                self._fault_stalls[clone.txn_id] = stall
        return clone

    def timed_read_poll(self, clone: Transaction) -> BusState:
        """Advance a forwarded read *clone* by one downstream call;
        posted writes drain first (read-after-write ordering)."""
        if clone.issue_cycle is None and self._posted:
            return BusState.WAIT
        return self._advance_clone(clone)

    def _advance_clone(self, clone: Transaction) -> BusState:
        """One non-blocking downstream step of *clone*: issue it, poll
        it, and — crucially — keep calling until the finished clone has
        been *collected* from the downstream finish pool (the final
        state arrives one call after the last beat completes)."""
        txn_id = clone.txn_id
        stall = self._fault_stalls.get(txn_id, 0)
        if stall > 0:
            # injected crossing-stall window: hold the hop before the
            # clone ever reaches the downstream bus
            self._fault_stalls[txn_id] = stall - 1
            if stall == 1:
                del self._fault_stalls[txn_id]
            self.book("fault_stall")
            self.fault_stall_cycles += 1
            return BusState.WAIT
        if clone.issue_cycle is None or txn_id in self._uncollected:
            self._uncollected.add(txn_id)
            state = self.downstream.issue(clone)
            if state.finished:
                self._uncollected.discard(txn_id)
            return state
        return clone.state  # finished and already collected

    def try_post_write(self, clone: Transaction) -> bool:
        """Queue a cloned write burst; False (and a booked stall) when
        the posted queue is full — the caller must retry next cycle."""
        if len(self._posted) >= self.posted_depth:
            self.book("queue_stall")
            return False
        self.post_write(clone)
        return True

    def post_write(self, clone: Transaction) -> None:
        self._posted.append(clone)
        self.book("crossing")
        self.book("posted_write")
        self.forwarded_writes += 1
        if self.fault_process is not None:
            index = self._write_crossings
            self._write_crossings += 1
            action = self.fault_process.write_crossing(index)
            if action is not None:
                self._drain_actions[clone.txn_id] = action

    def _drain_posted(self) -> None:
        """Clock process: push the oldest posted write downstream."""
        if not self._posted:
            return
        head = self._posted[0]
        action = self._drain_actions.get(head.txn_id)
        if action == "drop":
            # injected queue corruption: the write vanishes before it
            # ever reaches the downstream bus — counted, never signalled
            # (it completed upstream long ago), exactly the posted-write
            # hazard the fault campaign probes
            del self._drain_actions[head.txn_id]
            self._posted.popleft()
            self.book("posted_dropped")
            self.posted_dropped += 1
            return
        state = self.downstream.issue(head)
        if state.finished:
            self._posted.popleft()
            if head.error:
                self.posted_errors += 1
            if action == "dup":
                # injected duplicate: drain the same burst a second
                # time (a fresh clone — the drained one is finished)
                del self._drain_actions[head.txn_id]
                self._posted.appendleft(head.clone())
                self.book("posted_duplicated")
                self.posted_duplicated += 1

    # -- power-off flush ----------------------------------------------------

    def _on_power_off(self, reason: str) -> None:
        """Flush the posted queue at power-off.

        Every write in the queue was acknowledged upstream the moment
        it was latched; losing it on a tear would break the posted
        contract silently.  The residual charge of a dying card is
        enough to settle the queue into the downstream memories
        through the back door (no clock, no wire pacing) — each flush
        is booked to the ledger as ``power_off_drain``.  A write that
        cannot be committed (decode fault, slave error) is journaled
        in :attr:`lost_writes` and booked as ``posted_lost``, so the
        loss is visible to recovery instead of silent.
        """
        while self._posted:
            clone = self._posted.popleft()
            self._drain_actions.pop(clone.txn_id, None)
            if self._flush_write(clone):
                self.book("power_off_drain")
                self.posted_flushed_on_power_off += 1
            else:
                self.book("posted_lost")
                self.posted_lost_on_power_off += 1
                self.lost_writes.append(
                    (clone.address, list(clone.data)))

    def _flush_write(self, clone: Transaction) -> bool:
        """Back-door commit of one posted write into its terminal
        slave, resolving through any deeper bridges."""
        try:
            route = self.downstream_map.resolve_checked(
                clone.address, clone.kind, clone.num_bytes)
        except DecodeError:
            return False
        region = route.terminal
        base = region.slave.offset_of(clone.address)
        enables = (clone.byte_enables(0) if clone.burst_length == 1
                   else 0b1111)
        # the back door needs the block interface; a slave exposing
        # only beat-level access cannot be settled without a clock
        writer = getattr(region.slave, "write_block", None)
        if writer is None:
            return False
        try:
            beats_ok, error = writer(base, clone.data, enables)
        except (TypeError, ValueError):
            return False
        return not error and beats_ok == clone.burst_length

    # -- layer-3 forwarding (untimed) ---------------------------------------

    def note_message(self) -> None:
        """Book one synchronous (layer-3) crossing through this bridge."""
        self.book("crossing")
        self.messages_forwarded += 1

    def forward_message(self, transaction: Transaction
                        ) -> typing.Union[None, str, ErrorCause]:
        """One synchronous (layer-3) crossing of *transaction*.

        Books exactly what :meth:`note_message` books, and — when a
        fault process is attached — consults the *same* pure seeded
        schedule the timed layers consult, keyed by the same per-
        direction crossing index, so a given fault lands on the same
        program-order crossing at every abstraction layer.  Returns
        ``None`` (proceed), an :class:`~repro.ec.ErrorCause` (fail the
        transaction at the hop), or a posted-drain action ``"drop"`` /
        ``"dup"`` the untimed bus applies at the terminal slave.
        """
        self.book("crossing")
        self.messages_forwarded += 1
        if self.fault_process is None:
            return None
        if transaction.direction is Direction.WRITE:
            index = self._write_crossings
            self._write_crossings += 1
            action = self.fault_process.write_crossing(index)
            if action == "drop":
                self.book("posted_dropped")
                self.posted_dropped += 1
            elif action == "dup":
                self.book("posted_duplicated")
                self.posted_duplicated += 1
            return action
        index = self._read_crossings
        self._read_crossings += 1
        stall, cause = self.fault_process.read_crossing(index)
        if cause is not None:
            self.book("route_fault")
            self.route_faults += 1
            return cause
        if stall > 0:
            # untimed: the stall costs no cycles, but the event count
            # and ledger stay comparable across layers
            self.book("fault_stall", stall)
            self.fault_stall_cycles += stall
        return None

    # -- plain per-beat slave data interface --------------------------------
    #
    # The bridge needs the transaction context the generic interface
    # does not carry (burst forwarding, posted-queue bookkeeping); the
    # TLM layers detect a bridge and use the forward_* hooks instead.

    def read_beat(self, offset: int, byte_enables: int) -> SlaveResponse:
        raise RuntimeError(
            f"bridge {self.name!r} requires transaction-aware "
            f"forwarding (forward_read_beat); the plain per-beat slave "
            f"interface cannot cross a bus segment")

    def write_beat(self, offset: int, byte_enables: int,
                   data: int) -> SlaveResponse:
        raise RuntimeError(
            f"bridge {self.name!r} requires transaction-aware "
            f"forwarding (forward_write_beat); the plain per-beat slave "
            f"interface cannot cross a bus segment")

    def __repr__(self) -> str:
        return (f"BusBridge({self.name!r}, "
                f"[{self._base:#x}, {self.end:#x}), "
                f"crossing={self.crossing_cycles}, "
                f"posted={len(self._posted)}/{self.posted_depth})")
