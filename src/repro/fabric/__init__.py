"""Routable multi-bus fabric: topologies, bridges and per-link energy.

The paper's hierarchical layers model *one* bus at three abstraction
levels; this package generalises the platform to *several* buses joined
by bridges, at every one of those levels.  A :class:`Topology`
describes the fabric declaratively, :func:`build_fabric` instantiates
it (per-segment decoders, buses, arbiters and :class:`BusBridge`
windows), and the resulting :class:`BusFabric` telescopes every
per-link energy bucket — segment wires, bridge logic, arbitration —
into one probe total that must balance exactly.
"""

from .bridge import BusBridge
from .builder import (BusFabric, FabricEnergyReport, FabricSegment,
                      build_fabric)
from .topology import (ARBITER_POLICIES, CPU_SLAVES, FLAT_SLAVES,
                       PERIPHERAL_SLAVES, BridgeSpec, SegmentSpec,
                       Topology)

__all__ = [
    "ARBITER_POLICIES",
    "BridgeSpec",
    "BusBridge",
    "BusFabric",
    "CPU_SLAVES",
    "FLAT_SLAVES",
    "FabricEnergyReport",
    "FabricSegment",
    "PERIPHERAL_SLAVES",
    "SegmentSpec",
    "Topology",
    "build_fabric",
]
