"""The EC interface verification sequences (§4.1).

"The first step comprised verification with transaction examples
defined in the EC interface specification.  The examples are single
reads and writes with and without wait states, back-to-back reads,
back-to-back writes, read followed by write and write followed by read
with reordering, and at last burst reads and writes."

Each function returns a fresh master script (list of transactions or
``(gap, transaction)`` pairs) against the Figure-1 platform memory
map; :func:`full_suite` concatenates all of them — the stimulus used
for verification, characterisation and the accuracy experiments.
"""

from __future__ import annotations

import typing

from repro.ec import MergePattern, Transaction, data_read, data_write, \
    instruction_fetch
from repro.soc.smartcard import EEPROM_BASE, RAM_BASE, ROM_BASE
from repro.tlm.master import ScriptItem

#: a fast (zero-wait) target and a slow (waited) target
FAST = RAM_BASE
SLOW = EEPROM_BASE


def single_reads_no_wait() -> typing.List[ScriptItem]:
    """Isolated single reads of a zero-wait-state slave."""
    return [(2, data_read(FAST + 4 * i)) for i in range(4)]


def single_reads_with_wait() -> typing.List[ScriptItem]:
    """Isolated single reads of a slave inserting wait states."""
    return [(2, data_read(SLOW + 4 * i)) for i in range(4)]


def single_writes_no_wait() -> typing.List[ScriptItem]:
    """Isolated single writes, zero wait states."""
    return [(2, data_write(FAST + 4 * i, [0xC0DE0000 + i]))
            for i in range(4)]


def single_writes_with_wait() -> typing.List[ScriptItem]:
    """Isolated single writes against wait states."""
    return [(2, data_write(SLOW + 4 * i, [0xBEEF0000 + i]))
            for i in range(4)]


def back_to_back_reads() -> typing.List[ScriptItem]:
    """Reads with no idle cycles between them (pipelined addresses)."""
    return [data_read(FAST + 4 * i) for i in range(8)]


def back_to_back_writes() -> typing.List[ScriptItem]:
    """Writes with no idle cycles between them."""
    return [data_write(FAST + 0x100 + 4 * i, [0xA5A50000 | i])
            for i in range(8)]


def read_then_write_reordered() -> typing.List[ScriptItem]:
    """A slow read followed by a fast write: the write finishes first
    (the separate read/write queues reorder completions)."""
    return [data_read(SLOW), data_write(FAST + 0x200, [0x11111111]),
            data_read(SLOW + 8), data_write(FAST + 0x204, [0x22222222])]


def write_then_read_reordered() -> typing.List[ScriptItem]:
    """A slow write followed by a fast read."""
    return [data_write(SLOW + 0x40, [0x33333333]), data_read(FAST),
            data_write(SLOW + 0x44, [0x44444444]), data_read(FAST + 4)]


def burst_reads() -> typing.List[ScriptItem]:
    """Burst reads of both lengths against both slave speeds."""
    return [data_read(FAST + 0x300, burst_length=4),
            data_read(SLOW + 0x80, burst_length=4),
            data_read(FAST + 0x340, burst_length=2)]


def burst_writes() -> typing.List[ScriptItem]:
    """Burst writes of both lengths against both slave speeds."""
    return [data_write(FAST + 0x400, [1, 2, 3, 4]),
            data_write(SLOW + 0xC0, [5, 6, 7, 8]),
            data_write(FAST + 0x440, [9, 10])]


def instruction_bursts() -> typing.List[ScriptItem]:
    """Cache-line-fill style instruction fetch bursts from ROM."""
    return [instruction_fetch(ROM_BASE + 0x10 * i, burst_length=4)
            for i in range(4)]


def merge_patterns() -> typing.List[ScriptItem]:
    """Sub-word transfers exercising every merge pattern."""
    return [
        data_write(FAST + 0x500, [0x000000AA], MergePattern.BYTE),
        data_write(FAST + 0x501, [0x0000BB00], MergePattern.BYTE),
        data_write(FAST + 0x502, [0xCCDD0000], MergePattern.HALFWORD),
        data_read(FAST + 0x500, MergePattern.BYTE),
        data_read(FAST + 0x502, MergePattern.HALFWORD),
        data_read(FAST + 0x500),
    ]


ALL_SEQUENCES: typing.Dict[str, typing.Callable[
    [], typing.List[ScriptItem]]] = {
    "single_reads_no_wait": single_reads_no_wait,
    "single_reads_with_wait": single_reads_with_wait,
    "single_writes_no_wait": single_writes_no_wait,
    "single_writes_with_wait": single_writes_with_wait,
    "back_to_back_reads": back_to_back_reads,
    "back_to_back_writes": back_to_back_writes,
    "read_then_write_reordered": read_then_write_reordered,
    "write_then_read_reordered": write_then_read_reordered,
    "burst_reads": burst_reads,
    "burst_writes": burst_writes,
    "instruction_bursts": instruction_bursts,
    "merge_patterns": merge_patterns,
}


def full_suite(separator_gap: int = 4) -> typing.List[ScriptItem]:
    """All verification sequences, separated by idle gaps."""
    script: typing.List[ScriptItem] = []
    for factory in ALL_SEQUENCES.values():
        sequence = factory()
        if script and sequence:
            first = sequence[0]
            if isinstance(first, Transaction):
                sequence[0] = (separator_gap, first)
            else:
                sequence[0] = (first[0] + separator_gap, first[1])
        script.extend(sequence)
    return script
