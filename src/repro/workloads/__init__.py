"""Stimulus: the EC-spec verification sequences, parameterised random
generators, and the bus trace record/replay format."""

from .apdu import ApduSession, apdu_session
from .ecspec import ALL_SEQUENCES, full_suite
from .generator import (Mix, PROGRAM_MIX, TABLE3_MIX, Window,
                        generate_script, sub_word_script, table3_script)
from .trace import BusTrace, TraceRecord

__all__ = [
    "ALL_SEQUENCES",
    "ApduSession",
    "apdu_session",
    "BusTrace",
    "Mix",
    "PROGRAM_MIX",
    "TABLE3_MIX",
    "TraceRecord",
    "Window",
    "full_suite",
    "generate_script",
    "sub_word_script",
    "table3_script",
]
