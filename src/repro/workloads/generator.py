"""Parameterised random transaction generators.

Used by the performance benchmarks (Table 3 wants "all combinations
between single reads, single writes, burst reads, and burst writes")
and by characterisation, which needs long stimulus with controllable
mix and locality.  Generators take an explicit ``random.Random`` so
every workload is reproducible.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.ec import BYTES_PER_WORD, MergePattern, data_read, data_write, \
    instruction_fetch
from repro.tlm.master import ScriptItem


@dataclasses.dataclass(frozen=True)
class Mix:
    """Relative weights of the transaction categories."""

    single_read: float = 1.0
    single_write: float = 1.0
    burst_read: float = 1.0
    burst_write: float = 1.0
    instruction_burst: float = 0.0

    def weights(self) -> typing.List[float]:
        return [self.single_read, self.single_write, self.burst_read,
                self.burst_write, self.instruction_burst]


#: the paper's Table-3 stimulus: all four data categories, equal parts
TABLE3_MIX = Mix(1.0, 1.0, 1.0, 1.0, 0.0)

#: program-like mix: mostly fetches and single data accesses
PROGRAM_MIX = Mix(2.0, 1.5, 0.3, 0.2, 3.0)

_CATEGORIES = ("single_read", "single_write", "burst_read",
               "burst_write", "instruction_burst")


@dataclasses.dataclass(frozen=True)
class Window:
    """An address window transactions are drawn from."""

    base: int
    size: int
    executable: bool = False
    writable: bool = True


def generate_script(rng: random.Random, count: int,
                    windows: typing.Sequence[Window],
                    mix: Mix = TABLE3_MIX,
                    gap_probability: float = 0.0,
                    max_gap: int = 4,
                    sequential_fraction: float = 0.5
                    ) -> typing.List[ScriptItem]:
    """Produce *count* transactions over *windows*.

    ``sequential_fraction`` of addresses continue from the previous one
    (program-like locality); the rest are uniform within a window.
    """
    if not windows:
        raise ValueError("need at least one address window")
    script: typing.List[ScriptItem] = []
    cursor = {window: window.base for window in windows}
    weights = mix.weights()
    for _ in range(count):
        category = rng.choices(_CATEGORIES, weights=weights)[0]
        if category == "instruction_burst":
            eligible = [w for w in windows if w.executable]
        elif "write" in category:
            eligible = [w for w in windows if w.writable]
        else:
            eligible = list(windows)
        if not eligible:
            raise ValueError(f"no window admits category {category}")
        window = rng.choice(eligible)
        burst = category in ("burst_read", "burst_write",
                             "instruction_burst")
        span = 16 if burst else BYTES_PER_WORD
        if rng.random() < sequential_fraction:
            address = cursor[window]
            if address + span > window.base + window.size:
                address = window.base
        else:
            slots = (window.size - span) // span
            address = window.base + span * rng.randrange(max(slots, 1))
        cursor[window] = address + span
        transaction = _make(category, address, rng)
        if gap_probability and rng.random() < gap_probability:
            script.append((rng.randint(1, max_gap), transaction))
        else:
            script.append(transaction)
    return script


def _make(category: str, address: int, rng: random.Random):
    if category == "single_read":
        return data_read(address)
    if category == "single_write":
        return data_write(address, [rng.getrandbits(32)])
    if category == "burst_read":
        return data_read(address, burst_length=4)
    if category == "burst_write":
        return data_write(address, [rng.getrandbits(32) for _ in range(4)])
    return instruction_fetch(address, burst_length=4)


def table3_script(rng: random.Random, count: int, fast_base: int,
                  slow_base: int) -> typing.List[ScriptItem]:
    """The Table-3 stimulus over a fast and a slow memory window."""
    windows = [Window(fast_base, 0x1000), Window(slow_base, 0x1000)]
    return generate_script(rng, count, windows, TABLE3_MIX)


def sub_word_script(rng: random.Random, count: int,
                    base: int) -> typing.List[ScriptItem]:
    """Random sub-word reads/writes exercising the merge patterns."""
    script: typing.List[ScriptItem] = []
    for _ in range(count):
        pattern = rng.choice([MergePattern.BYTE, MergePattern.HALFWORD,
                              MergePattern.WORD])
        aligned = base + pattern.num_bytes * rng.randrange(
            0x400 // pattern.num_bytes)
        if rng.random() < 0.5:
            script.append(data_read(aligned, pattern))
        else:
            lane = aligned % BYTES_PER_WORD
            value = rng.getrandbits(pattern.value) << (8 * lane)
            script.append(data_write(aligned, [value & 0xFFFFFFFF],
                                     pattern))
    return script
