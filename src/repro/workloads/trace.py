"""Bus trace record/replay.

The paper's flow: "we traced the bus transactions and used them as
input test sequences for the transaction level models" (§4.1).  A
:class:`BusTrace` captures what a master issued — kind, address,
pattern, burst length, payload and the idle gap since the previous
issue — and replays as a script on any bus model.  Traces serialise to
a line-oriented text format so they can be stored alongside the
benchmarks.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import MergePattern, Transaction, TransactionKind, \
    data_read, data_write, instruction_fetch
from repro.tlm.master import ScriptItem


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One issued transaction, master-relative."""

    gap: int                       # idle cycles before the issue
    kind: TransactionKind
    address: int
    burst_length: int
    pattern: MergePattern
    data: typing.Tuple[int, ...]   # payload for writes, empty otherwise

    def to_transaction(self) -> Transaction:
        if self.kind is TransactionKind.DATA_WRITE:
            return data_write(self.address, list(self.data), self.pattern)
        if self.kind is TransactionKind.INSTRUCTION_READ:
            return instruction_fetch(self.address, self.burst_length)
        return data_read(self.address, self.pattern, self.burst_length)

    def to_line(self) -> str:
        payload = ":".join(f"{word:08x}" for word in self.data)
        return (f"{self.gap} {self.kind.value} {self.address:#x} "
                f"{self.burst_length} {self.pattern.value} {payload}")

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        fields = line.split()
        if len(fields) not in (5, 6):
            raise ValueError(f"malformed trace line: {line!r}")
        gap = int(fields[0])
        kind = TransactionKind(fields[1])
        address = int(fields[2], 0)
        burst_length = int(fields[3])
        pattern = MergePattern(int(fields[4]))
        data: typing.Tuple[int, ...] = ()
        if len(fields) == 6 and fields[5]:
            data = tuple(int(word, 16) for word in fields[5].split(":"))
        return cls(gap, kind, address, burst_length, pattern, data)


class BusTrace:
    """An ordered list of :class:`TraceRecord`."""

    def __init__(self,
                 records: typing.Optional[
                     typing.List[TraceRecord]] = None) -> None:
        self.records: typing.List[TraceRecord] = list(records or [])

    # -- capture ---------------------------------------------------------

    @classmethod
    def from_completed(cls, transactions: typing.Sequence[Transaction]
                       ) -> "BusTrace":
        """Build a trace from completed transactions (issue order).

        Gaps are reconstructed from the issue cycles: the idle cycles
        between one transaction's issue and the next.
        """
        ordered = sorted(transactions,
                         key=lambda t: (t.issue_cycle, t.txn_id))
        records = []
        previous_issue = None
        for txn in ordered:
            if txn.issue_cycle is None:
                raise ValueError(f"transaction {txn.txn_id} never issued")
            gap = 0
            if previous_issue is not None:
                gap = max(txn.issue_cycle - previous_issue - 1, 0)
            previous_issue = txn.issue_cycle
            data = (tuple(txn.data)
                    if txn.kind is TransactionKind.DATA_WRITE else ())
            records.append(TraceRecord(gap, txn.kind, txn.address,
                                       txn.burst_length, txn.pattern, data))
        return cls(records)

    # -- replay -----------------------------------------------------------

    def to_script(self) -> typing.List[ScriptItem]:
        """A master script that re-issues the trace."""
        return [(record.gap, record.to_transaction())
                for record in self.records]

    # -- persistence ---------------------------------------------------------

    def to_text(self) -> str:
        lines = ["# repro bus trace v1"]
        lines.extend(record.to_line() for record in self.records)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "BusTrace":
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            records.append(TraceRecord.from_line(line))
        return cls(records)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_text())

    @classmethod
    def load(cls, path) -> "BusTrace":
        with open(path, encoding="utf-8") as handle:
            return cls.from_text(handle.read())

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BusTrace):
            return NotImplemented
        return self.records == other.records

    def summary(self) -> typing.Dict[str, int]:
        """Transaction counts per kind (reporting convenience)."""
        counts = {kind.value: 0 for kind in TransactionKind}
        for record in self.records:
            counts[record.kind.value] += 1
        return counts
