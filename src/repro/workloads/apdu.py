"""APDU-session workload generator.

Models the bus traffic of real smart card command processing — the
traffic mix the Figure-1 platform exists to serve.  One session is a
sequence of ISO-7816-style commands; each command expands into the
bus-transaction phases its firmware would perform:

* ``SELECT``       — read the applet directory from EEPROM, touch RAM,
* ``READ_RECORD``  — EEPROM record read (bursts) + UART-style response
  writes,
* ``UPDATE_RECORD`` — RAM staging + EEPROM programming writes,
* ``VERIFY_PIN``   — EEPROM reads + a RAM compare loop,
* ``CHALLENGE``    — TRNG-register reads,
* ``INTERNAL_AUTH`` — crypto-coprocessor-style SFR traffic bursts.

The generator is seeded and produces plain master scripts, so APDU
sessions slot into any experiment (robustness classes, Table-3-style
performance runs, characterisation).
"""

from __future__ import annotations

import random
import typing

from repro.ec import data_read, data_write, instruction_fetch
from repro.soc.smartcard import (EEPROM_BASE, RAM_BASE, RNG_BASE,
                                 ROM_BASE, UART_BASE)
from repro.tlm.master import ScriptItem

COMMANDS = ("select", "read_record", "update_record", "verify_pin",
            "challenge", "internal_auth")

#: a generic SFR window standing in for the crypto coprocessor
_CRYPTO_SFR = UART_BASE + 0x800


def _fetch_run(rng: random.Random, script: list, lines: int) -> None:
    """Instruction-fetch bursts of the command handler's code."""
    base = ROM_BASE + 0x40 * rng.randrange(64)
    for line in range(lines):
        script.append(instruction_fetch(base + 16 * line,
                                        burst_length=4))


def _select(rng: random.Random, script: list) -> None:
    _fetch_run(rng, script, 3)
    directory = EEPROM_BASE + 0x40 * rng.randrange(8)
    script.append(data_read(directory, burst_length=4))
    script.append(data_write(RAM_BASE + 0x20, [rng.getrandbits(32)]))


def _read_record(rng: random.Random, script: list) -> None:
    _fetch_run(rng, script, 2)
    record = EEPROM_BASE + 0x100 + 0x20 * rng.randrange(16)
    for beat in range(2):
        script.append(data_read(record + 16 * beat, burst_length=4))
    for index in range(4):
        script.append((1, data_write(UART_BASE, [rng.getrandbits(8)])))


def _update_record(rng: random.Random, script: list) -> None:
    _fetch_run(rng, script, 2)
    staging = RAM_BASE + 0x100
    payload = [rng.getrandbits(32) for _ in range(4)]
    script.append(data_write(staging, payload))
    record = EEPROM_BASE + 0x400 + 0x20 * rng.randrange(16)
    # EEPROM programming writes, spaced like a commit loop
    for index, word in enumerate(payload):
        script.append((2, data_write(record + 4 * index, [word])))


def _verify_pin(rng: random.Random, script: list) -> None:
    _fetch_run(rng, script, 2)
    script.append(data_read(EEPROM_BASE + 0x800, burst_length=2))
    for index in range(2):
        script.append(data_read(RAM_BASE + 0x40 + 4 * index))
    script.append(data_write(RAM_BASE + 0x48, [rng.getrandbits(1)]))


def _challenge(rng: random.Random, script: list) -> None:
    _fetch_run(rng, script, 1)
    for _ in range(rng.randint(1, 2)):
        script.append((3, data_read(RNG_BASE + 4)))   # STATUS poll
        script.append(data_read(RNG_BASE))            # DATA


def _internal_auth(rng: random.Random, script: list) -> None:
    _fetch_run(rng, script, 2)
    block = [rng.getrandbits(32), rng.getrandbits(32)]
    script.append(data_write(RAM_BASE + 0x200, block))
    script.append(data_read(RAM_BASE + 0x200, burst_length=2))
    for index in range(3):
        script.append((4, data_read(RAM_BASE + 0x208)))


_EXPANDERS = {
    "select": _select,
    "read_record": _read_record,
    "update_record": _update_record,
    "verify_pin": _verify_pin,
    "challenge": _challenge,
    "internal_auth": _internal_auth,
}


# -- byte-level wire images ---------------------------------------------
#
# The T=1 link layer (:mod:`repro.link`) carries real command/response
# APDUs over the UART; these helpers give every command a deterministic
# ISO-7816-4-style byte image so the card endpoint can decode INS ->
# expander and synthesise a matching response.

#: instruction byte per command (ISO 7816-4 conventions)
INS = {
    "select": 0xA4,
    "read_record": 0xB2,
    "update_record": 0xDC,
    "verify_pin": 0x20,
    "challenge": 0x84,
    "internal_auth": 0x88,
}

COMMAND_BY_INS = {ins: name for name, ins in INS.items()}

#: command-body (Lc field) length per command
_CDATA_LENGTHS = {
    "select": 6,
    "read_record": 0,
    "update_record": 8,
    "verify_pin": 4,
    "challenge": 0,
    "internal_auth": 8,
}

#: response-body length per command (before the SW1/SW2 trailer)
_RESPONSE_LENGTHS = {
    "select": 12,
    "read_record": 16,
    "update_record": 0,
    "verify_pin": 0,
    "challenge": 8,
    "internal_auth": 16,
}


def command_apdu(command: str, rng: random.Random) -> typing.List[int]:
    """Seeded CLA/INS/P1/P2/Lc[/data] wire image of *command*."""
    length = _CDATA_LENGTHS[command]
    apdu = [0x00, INS[command], rng.getrandbits(8), rng.getrandbits(8),
            length]
    apdu.extend(rng.getrandbits(8) for _ in range(length))
    return apdu


def response_apdu(command: str, rng: random.Random) -> typing.List[int]:
    """Seeded response body plus the 0x9000 status trailer."""
    body = [rng.getrandbits(8) for _ in range(_RESPONSE_LENGTHS[command])]
    return body + [0x90, 0x00]


def command_script(command: str,
                   rng: random.Random) -> typing.List[ScriptItem]:
    """The bus script the card firmware runs to serve *command*."""
    script: typing.List[ScriptItem] = []
    _EXPANDERS[command](rng, script)
    return script


class ApduSession:
    """One generated session: the bus script plus its command list."""

    def __init__(self, script: typing.List[ScriptItem],
                 commands: typing.List[str]) -> None:
        self.script = script
        self.commands = commands

    def histogram(self) -> typing.Dict[str, int]:
        counts = {name: 0 for name in COMMANDS}
        for command in self.commands:
            counts[command] += 1
        return counts

    def __len__(self) -> int:
        return len(self.script)


def apdu_session(rng: random.Random, commands: int = 10,
                 inter_command_gap: int = 6) -> ApduSession:
    """A seeded card session of *commands* APDU expansions."""
    script: typing.List[ScriptItem] = []
    executed = ["select"]
    _select(rng, script)  # every session begins with a SELECT
    for _ in range(commands - 1):
        command = rng.choice(COMMANDS[1:])
        executed.append(command)
        marker = len(script)
        _EXPANDERS[command](rng, script)
        if marker < len(script):
            first = script[marker]
            if isinstance(first, tuple):
                script[marker] = (first[0] + inter_command_gap, first[1])
            else:
                script[marker] = (inter_command_gap, first)
    return ApduSession(script, executed)
