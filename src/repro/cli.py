"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points so the reproduction is
usable without writing Python:

========================  ==============================================
``report``                every table and figure, printed
``table1`` / ``table2``   one accuracy table
``table3``                simulation performance
``figure6``               the energy-sampling profile
``casestudy``             the §4.3 Java Card exploration
``coprocessor``           the §1 crypto HW/SW interface study
``characterize``          run the characterisation flow; optionally save
                          the table as JSON
``faults``                fault-injection campaign: completion rate and
                          recovery cost (cycles, energy) per bus layer
``tear``                  tear campaign: anti-tearing consistency and
                          recovery cost under whole-card power loss
``dpm``                   dynamic power management campaign: adaptive
                          policies vs always-on on starved supplies,
                          plus the emergency-checkpoint study
``link``                  T=1 link campaign: framed APDU sessions over
                          a noisy UART channel — bounded retransmission
                          and energy-attributed recovery per bus layer
``trace``                 run the §4.1 test program and dump its bus
                          trace
``bench``                 tracked performance benchmarks; writes
                          ``BENCH_PR10.json`` and enforces the
                          fast-lane kernel and end-to-end layer-1
                          speedup floors
========================  ==============================================
"""

from __future__ import annotations

import argparse
import json
import sys
import typing


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import full_report
    print(full_report(transactions=args.transactions,
                      include_gate_level=not args.no_gate_level,
                      extended=args.extended))
    if args.csv:
        from repro.experiments.export import write_csv_reports
        paths = write_csv_reports(args.csv,
                                  transactions=args.transactions)
        print(f"\nCSV results written: "
              f"{', '.join(str(p) for p in paths)}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import run_table1
    print(run_table1().format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments import run_table2
    print(run_table2().format())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments import run_table3
    print(run_table3(transactions=args.transactions,
                     include_gate_level=not args.no_gate_level).format())
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    from repro.experiments import run_figure6
    print(run_figure6(workers=args.workers).format())
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.experiments import run_casestudy
    print(run_casestudy().format())
    return 0


def _cmd_coprocessor(args: argparse.Namespace) -> int:
    from repro.experiments import run_coprocessor_study
    print(run_coprocessor_study(blocks=args.blocks).format())
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.power.characterize import (coefficient_report,
                                          default_characterization)
    result = default_characterization(seed=args.seed)
    print(result.report.format_summary())
    print()
    print(coefficient_report(result.table))
    if args.output:
        result.table.save(args.output)
        print(f"\ntable written to {args.output}")
    return 0


def _check_resume(args: argparse.Namespace, command: str) -> bool:
    if args.resume and not args.journal:
        print(f"repro {command}: error: --resume requires --journal",
              file=sys.stderr)
        return False
    return True


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import run_bus_sweep
    if not _check_resume(args, "sweep"):
        return 2
    print(run_bus_sweep(journal_path=args.journal,
                        resume=args.resume,
                        workers=args.workers).format())
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments import run_robustness
    if not _check_resume(args, "robustness"):
        return 2
    print(run_robustness(journal_path=args.journal,
                         resume=args.resume).format())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments import run_fault_campaign
    if not _check_resume(args, "faults"):
        return 2
    try:
        result = run_fault_campaign(
            rates=tuple(args.rates), classes=tuple(args.classes),
            seed=args.seed, layers=tuple(args.layers),
            journal_path=args.journal, resume=args.resume,
            cell_wall_seconds=args.cell_wall_seconds,
            workers=args.workers)
    except ValueError as error:
        print(f"repro faults: error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    # a campaign that cannot finish its scripts is a failed campaign
    if any(cell.status != "ok" for cell in result.cells):
        return 1
    return 1 if any(cell.failures for cell in result.cells) else 0


def _cmd_tear(args: argparse.Namespace) -> int:
    from repro.experiments import run_tear_campaign
    if not _check_resume(args, "tear"):
        return 2
    try:
        result = run_tear_campaign(
            points=args.points, transactions=args.transactions,
            seed=args.seed, layers=tuple(args.layers),
            journal_path=args.journal, resume=args.resume,
            cell_wall_seconds=args.cell_wall_seconds,
            governor_study=not args.no_governor,
            workers=args.workers)
    except ValueError as error:
        print(f"repro tear: error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    # anti-tearing that loses or half-applies a transaction — or a
    # governor that doesn't reduce brownouts — is a failed campaign
    if not result.all_consistent:
        return 1
    if result.governor and not result.governor_effective:
        return 1
    return 0


def _cmd_dpm(args: argparse.Namespace) -> int:
    from repro.experiments import run_dpm_campaign
    if not _check_resume(args, "dpm"):
        return 2
    if (args.node_nm is None) != (args.vdd is None):
        print("repro dpm: error: --node-nm and --vdd must be given "
              "together", file=sys.stderr)
        return 2
    try:
        result = run_dpm_campaign(
            traces=args.traces, transactions=args.transactions,
            seed=args.seed, policies=tuple(args.policies),
            layers=tuple(args.layers), node_nm=args.node_nm,
            vdd=args.vdd, emergency=not args.no_emergency,
            journal_path=args.journal, resume=args.resume,
            cell_wall_seconds=args.cell_wall_seconds,
            workers=args.workers)
    except ValueError as error:
        print(f"repro dpm: error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    # an adaptive policy that cannot beat always-on, or an emergency
    # checkpoint that does not recover verifiably, is a failed campaign
    return 0 if result.passed else 1


def _cmd_link(args: argparse.Namespace) -> int:
    from repro.experiments import run_link_campaign
    if not _check_resume(args, "link"):
        return 2
    try:
        result = run_link_campaign(
            noise_rates=tuple(args.noise), layers=tuple(args.layers),
            dpm_modes=tuple(args.dpm), sessions=args.sessions,
            commands=args.commands, seed=args.seed,
            journal_path=args.journal, resume=args.resume,
            cell_wall_seconds=args.cell_wall_seconds,
            workers=args.workers)
    except ValueError as error:
        print(f"repro link: error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    # a session that hangs, leaks energy, or blows its retry budget —
    # or a clean baseline that still retransmits — is a failed campaign
    return 0 if result.passed else 1


def _cmd_fabric(args: argparse.Namespace) -> int:
    from repro.experiments import run_fabric_campaign
    if not _check_resume(args, "fabric"):
        return 2
    try:
        result = run_fabric_campaign(
            topologies=tuple(args.topologies), layers=tuple(args.layers),
            commands=args.commands, seed=args.seed,
            journal_path=args.journal, resume=args.resume,
            cell_wall_seconds=args.cell_wall_seconds,
            workers=args.workers)
    except ValueError as error:
        print(f"repro fabric: error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    # per-link books that do not telescope exactly to the probe total
    # — or a flat topology that drifts from the legacy card — is a
    # failed campaign
    return 0 if result.passed else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.replay:
        return _chaos_replay(args.replay)
    from repro.experiments import run_chaos_campaign
    if not _check_resume(args, "chaos"):
        return 2
    try:
        result = run_chaos_campaign(
            scenarios=args.scenarios, seed=args.seed,
            journal_path=args.journal, resume=args.resume,
            cell_wall_seconds=args.cell_wall_seconds,
            workers=args.workers, selftest=not args.no_selftest)
    except ValueError as error:
        print(f"repro chaos: error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    if args.repro_out and result.selftest is not None \
            and result.selftest.status == "ok":
        with open(args.repro_out, "w", encoding="utf-8") as handle:
            json.dump({"signature": result.selftest.signature,
                       "original": result.selftest.original,
                       "minimal": result.selftest.minimal},
                      handle, indent=2)
            handle.write("\n")
        print(f"minimal repro written to {args.repro_out}")
    # a hang, an unexplained cross-layer divergence, a leaking energy
    # book or a shrink that does not replay is a failed campaign
    return 0 if result.passed else 1


def _chaos_replay(path: str) -> int:
    """Replay a shrunken repro file; exit 0 when the failure still
    reproduces (that is the replay's *purpose*), 1 when it passes."""
    from repro.chaos import ChaosScenario, run_scenario
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    for key in ("minimal", "scenario"):
        if isinstance(data, dict) and key in data:
            data = data[key]
            break
    scenario = ChaosScenario.from_dict(data)
    result = run_scenario(scenario)
    print(f"replay {scenario.name}: signature "
          f"{result.failure_signature!r}")
    for divergence in result.divergences:
        print(f"  {divergence['kind']}: {divergence['detail']}")
    return 0 if not result.passed else 1


def _cmd_vcd(args: argparse.Namespace) -> int:
    from repro.kernel import Clock, Simulator
    from repro.power import (Layer1PowerModel, SignalStateRecorder,
                             save_vcd)
    from repro.experiments.common import (CLOCK_PERIOD, characterization,
                                          fresh_memory_map,
                                          test_program_trace)
    from repro.tlm import EcBusLayer1, PipelinedMaster, run_script
    simulator = Simulator("vcd")
    clock = Clock(simulator, "clk", period=CLOCK_PERIOD)
    memory_map = fresh_memory_map()
    recorder = SignalStateRecorder()
    model = Layer1PowerModel(characterization().table, recorder=recorder)
    bus = EcBusLayer1(simulator, clock, memory_map, power_model=model)
    master = PipelinedMaster(simulator, clock, bus,
                             test_program_trace().to_script())
    run_script(simulator, master, 1_000_000, clock)
    save_vcd(recorder, args.output, clock_period_ps=CLOCK_PERIOD)
    print(f"{len(recorder)} cycles of bus waveform + energy written "
          f"to {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (E2E_FLOOR, FASTLANE_FLOOR,
                                         fastlane_speedup, format_rows,
                                         layer1_e2e_speedup, run_bench,
                                         write_bench)
    rows = run_bench(quick=args.quick, workers=args.workers)
    write_bench(rows, args.output)
    print(format_rows(rows))
    print(f"\nbenchmark rows written to {args.output}")
    status = 0
    kernel = fastlane_speedup(rows)
    if kernel < FASTLANE_FLOOR:
        print(f"repro bench: FAIL: fast-lane kernel speedup "
              f"{kernel:.2f}x is below the {FASTLANE_FLOOR:.1f}x floor",
              file=sys.stderr)
        status = 1
    else:
        print(f"fast-lane kernel speedup {kernel:.2f}x "
              f"(floor {FASTLANE_FLOOR:.1f}x)")
    e2e = layer1_e2e_speedup(rows)
    if e2e < E2E_FLOOR:
        print(f"repro bench: FAIL: end-to-end layer-1 speedup "
              f"{e2e:.2f}x (fast lane + packed engine vs generic lane "
              f"+ per-cycle reference engine) is below the "
              f"{E2E_FLOOR:.1f}x floor", file=sys.stderr)
        status = 1
    else:
        print(f"end-to-end layer-1 speedup {e2e:.2f}x "
              f"(floor {E2E_FLOOR:.1f}x)")
    return status


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.common import test_program_trace
    trace = test_program_trace()
    text = trace.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{len(trace)} transactions written to {args.output}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Energy Estimation Based on "
                    "Hierarchical Bus Models for Power-Aware Smart "
                    "Cards' (DATE 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="all tables and figures")
    report.add_argument("--transactions", type=int, default=2_000,
                        help="Table-3 workload size")
    report.add_argument("--no-gate-level", action="store_true",
                        help="skip the slow gate-level speed row")
    report.add_argument("--csv", metavar="DIR",
                        help="also write one CSV per artefact to DIR")
    report.add_argument("--extended", action="store_true",
                        help="append the beyond-the-paper studies")
    report.set_defaults(func=_cmd_report)

    sub.add_parser("table1", help="timing accuracy"
                   ).set_defaults(func=_cmd_table1)
    sub.add_parser("table2", help="energy estimation accuracy"
                   ).set_defaults(func=_cmd_table2)

    table3 = sub.add_parser("table3", help="simulation performance")
    table3.add_argument("--transactions", type=int, default=2_000)
    table3.add_argument("--no-gate-level", action="store_true")
    table3.set_defaults(func=_cmd_table3)

    def add_workers(command: argparse.ArgumentParser,
                    what: str = "sweep cells") -> None:
        command.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help=f"shard {what} over N worker processes; results are "
                 f"byte-identical to a serial run")

    figure6 = sub.add_parser("figure6", help="energy sampling profile")
    add_workers(figure6, what="the two layer runs")
    figure6.set_defaults(func=_cmd_figure6)
    sub.add_parser("casestudy", help="java card HW/SW exploration"
                   ).set_defaults(func=_cmd_casestudy)

    coproc = sub.add_parser("coprocessor",
                            help="crypto HW/SW interface study")
    coproc.add_argument("--blocks", type=int, default=4)
    coproc.set_defaults(func=_cmd_coprocessor)

    characterize = sub.add_parser(
        "characterize", help="run the power characterisation flow")
    characterize.add_argument("--seed", type=int, default=2004)
    characterize.add_argument("-o", "--output",
                              help="write the table as JSON")
    characterize.set_defaults(func=_cmd_characterize)

    trace = sub.add_parser("trace",
                           help="dump the test program's bus trace")
    trace.add_argument("-o", "--output", help="write to a file")
    trace.set_defaults(func=_cmd_trace)

    def add_supervision(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--journal", metavar="PATH",
            help="checkpoint finished sweep cells to a JSONL journal")
        command.add_argument(
            "--resume", action="store_true",
            help="replay cells already in --journal instead of "
                 "re-running them")

    sweep = sub.add_parser(
        "sweep", help="fetch-path (burst x line-buffer) sweep")
    add_supervision(sweep)
    add_workers(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    robustness = sub.add_parser(
        "robustness",
        help="accuracy errors across workload classes")
    add_supervision(robustness)
    robustness.set_defaults(func=_cmd_robustness)

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign: recovery cost per layer")
    faults.add_argument("--rates", type=float, nargs="+",
                        default=[0.0, 0.02, 0.05, 0.1],
                        help="fault rates to sweep (0 is the baseline)")
    faults.add_argument("--classes", nargs="+",
                        default=["random_mix", "burst_heavy",
                                 "eeprom_contention"],
                        help="robustness workload classes to replay")
    faults.add_argument("--layers", nargs="+",
                        default=["layer1", "layer2", "gate-level"],
                        choices=["layer1", "layer2", "gate-level"],
                        help="bus models to run each cell on")
    faults.add_argument("--seed", default=2004,
                        help="campaign seed (any int or string)")
    faults.add_argument("--cell-wall-seconds", type=float,
                        default=None,
                        help="wall-clock budget per sweep cell; a cell "
                             "exceeding it degrades instead of hanging "
                             "the campaign")
    add_supervision(faults)
    add_workers(faults)
    faults.set_defaults(func=_cmd_faults)

    tear = sub.add_parser(
        "tear",
        help="tear campaign: anti-tearing consistency and recovery "
             "cost under whole-card power loss")
    tear.add_argument("--points", type=int, default=100,
                      help="seeded tear points per bus layer")
    tear.add_argument("--transactions", type=int, default=12,
                      help="journaled transactions in the workload")
    tear.add_argument("--layers", nargs="+",
                      default=["layer1", "layer2", "gate-level"],
                      choices=["layer1", "layer2", "gate-level"],
                      help="bus models to sweep the tear grid on")
    tear.add_argument("--seed", default=2004,
                      help="campaign seed (any int or string)")
    tear.add_argument("--no-governor", action="store_true",
                      help="skip the energy-governor sub-study")
    tear.add_argument("--cell-wall-seconds", type=float, default=None,
                      help="wall-clock budget per sweep cell; a cell "
                           "exceeding it degrades instead of hanging "
                           "the campaign")
    add_supervision(tear)
    add_workers(tear)
    tear.set_defaults(func=_cmd_tear)

    dpm = sub.add_parser(
        "dpm",
        help="dynamic power management campaign: adaptive policies vs "
             "always-on, plus the emergency-checkpoint study")
    dpm.add_argument("--traces", type=int, default=3,
                     help="seeded supply traces (harvest rates)")
    dpm.add_argument("--transactions", type=int, default=8,
                     help="journaled transactions in the workload")
    dpm.add_argument("--policies", nargs="+",
                     default=["always_on", "fixed_timeout",
                              "history_predictive", "budget_aware"],
                     choices=["always_on", "fixed_timeout",
                              "history_predictive", "budget_aware"],
                     help="DPM policies to run (always_on is the "
                          "baseline the verdict compares against)")
    dpm.add_argument("--layers", nargs="+",
                     default=["layer1", "layer2"],
                     choices=["layer1", "layer2"],
                     help="bus models to run the grid on")
    dpm.add_argument("--seed", default=2004,
                     help="campaign seed (any int or string)")
    dpm.add_argument("--node-nm", type=float, default=None,
                     help="calibrate the characterisation table at "
                          "this process node (with --vdd)")
    dpm.add_argument("--vdd", type=float, default=None,
                     help="calibrate the characterisation table at "
                          "this supply voltage (with --node-nm)")
    dpm.add_argument("--no-emergency", action="store_true",
                     help="skip the emergency-checkpoint study")
    dpm.add_argument("--cell-wall-seconds", type=float, default=None,
                     help="wall-clock budget per sweep cell; a cell "
                          "exceeding it degrades instead of hanging "
                          "the campaign")
    add_supervision(dpm)
    add_workers(dpm)
    dpm.set_defaults(func=_cmd_dpm)

    link = sub.add_parser(
        "link",
        help="T=1 link campaign: noisy-channel APDU transport with "
             "bounded retransmission and energy-attributed recovery")
    link.add_argument("--noise", type=float, nargs="+",
                      default=[0.0, 0.01, 0.03],
                      help="per-byte corruption rates (0 is the "
                           "baseline that must stay retransmission-"
                           "free)")
    link.add_argument("--layers", nargs="+",
                      default=["layer1", "layer2"],
                      choices=["layer1", "layer2"],
                      help="bus models to price recovery energy on")
    link.add_argument("--dpm", nargs="+", default=["off", "on"],
                      choices=["off", "on"],
                      help="run with/without the DPM power stack (a "
                           "clock-gated receiver loses wire bytes)")
    link.add_argument("--sessions", type=int, default=4,
                      help="T=1 sessions per grid cell")
    link.add_argument("--commands", type=int, default=6,
                      help="APDU commands per session")
    link.add_argument("--seed", default=2004,
                      help="campaign seed (any int or string)")
    link.add_argument("--cell-wall-seconds", type=float, default=None,
                      help="wall-clock budget per sweep cell; a cell "
                           "exceeding it degrades instead of hanging "
                           "the campaign")
    add_supervision(link)
    add_workers(link, what="grid cells")
    link.set_defaults(func=_cmd_link)

    fabric = sub.add_parser(
        "fabric",
        help="routable-fabric campaign: flat vs bridged topology under "
             "APDU + DMA traffic with exact per-link energy books")
    fabric.add_argument("--topologies", nargs="+",
                        default=["flat", "bridged"],
                        choices=["flat", "bridged"],
                        help="bus topologies to run the grid on")
    fabric.add_argument("--layers", nargs="+",
                        default=["layer1", "layer2", "layer3"],
                        choices=["layer1", "layer2", "layer3"],
                        help="abstraction layers to route on")
    fabric.add_argument("--commands", type=int, default=8,
                        help="APDU commands in the session workload")
    fabric.add_argument("--seed", default=2004,
                        help="campaign seed (any int or string)")
    fabric.add_argument("--cell-wall-seconds", type=float, default=None,
                        help="wall-clock budget per sweep cell; a cell "
                             "exceeding it degrades instead of hanging "
                             "the campaign")
    add_supervision(fabric)
    add_workers(fabric, what="grid cells")
    fabric.set_defaults(func=_cmd_fabric)

    chaos = sub.add_parser(
        "chaos",
        help="chaos campaign: seeded fabric-fault scenarios checked "
             "by a cross-layer differential oracle, with a "
             "self-shrinking repro of any failure")
    chaos.add_argument("--scenarios", type=int, default=25,
                       help="number of generated scenarios to run")
    chaos.add_argument("--seed", default=7,
                       help="campaign seed (any int or string)")
    chaos.add_argument("--no-selftest", action="store_true",
                       help="skip the injected-failure shrinker "
                            "self-test cell")
    chaos.add_argument("--replay", metavar="FILE",
                       help="replay a shrunken repro JSON file instead "
                            "of running the campaign (exit 0 when the "
                            "failure reproduces)")
    chaos.add_argument("--repro-out", metavar="FILE",
                       help="write the self-test's minimal repro as "
                            "replayable JSON")
    chaos.add_argument("--cell-wall-seconds", type=float, default=None,
                       help="wall-clock budget per scenario cell; a "
                            "cell exceeding it degrades instead of "
                            "hanging the campaign")
    add_supervision(chaos)
    add_workers(chaos, what="scenario cells")
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench", help="tracked performance benchmarks "
                      "(kernel/layer/campaign throughput)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads for CI smoke runs")
    bench.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker count for the campaign benchmark")
    bench.add_argument("-o", "--output", default="BENCH_PR10.json",
                       help="where to write the benchmark rows (JSON)")
    bench.set_defaults(func=_cmd_bench)

    vcd = sub.add_parser(
        "vcd", help="dump the test program's bus waveform as VCD")
    vcd.add_argument("-o", "--output", default="bus.vcd")
    vcd.set_defaults(func=_cmd_vcd)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
