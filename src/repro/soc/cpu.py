"""MIPS-like instruction-set simulator acting as the bus master.

The paper's master is the MIPS 4KSc core whose bus interface unit
issues EC transactions; this ISS reproduces the externally visible
behaviour the bus cares about:

* instruction fetches are 4-word burst reads through a small line
  buffer (the cache-line fill traffic of Figure 1's I-cache),
* loads are blocking data reads of the addressed width,
* stores are *posted*: the core issues the write and keeps running,
  polling outstanding stores to completion (the 4-deep write budget),
* ``halt`` (MIPS ``break``) stops the core and fires an event.

Branch delay slots are not modelled — the assembler/ISS pair is a
trace generator for the bus, not a micro-architectural model; the
simplification is invisible at the bus interface.
"""

from __future__ import annotations

import collections
import typing

from repro.ec import (BusState, MergePattern, Transaction, data_read,
                      data_write, instruction_fetch)
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Module, Simulator

from .assembler import DI_WORD, EI_WORD, HALT_WORD

#: MIPS ``eret`` (COP0 function 0x18): return from exception
ERET_WORD = 0x42000018

#: default fetch line: 4 words (the 4K cache-line fill)
DEFAULT_FETCH_BURST = 4


def sign_extend_16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def sign_extend_8(value: int) -> int:
    value &= 0xFF
    return value - 0x100 if value & 0x80 else value


class CpuFault(RuntimeError):
    """The core hit a bus error or an undecodable instruction."""


class MipsCore(Module):
    """A small MIPS-I subset ISS with an EC bus interface unit."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 bus: BusMasterInterface, reset_pc: int = 0,
                 line_buffer_lines: int = 8,
                 fetch_burst_length: int = DEFAULT_FETCH_BURST,
                 name: str = "cpu") -> None:
        super().__init__(simulator, name)
        if fetch_burst_length not in (1, 2, 4):
            raise ValueError("fetch burst length must be 1, 2 or 4")
        self.clock = clock
        self.bus = bus
        self.fetch_burst_length = fetch_burst_length
        self._line_bytes = 4 * fetch_burst_length
        self._line_mask = ~(self._line_bytes - 1) & 0xFFFFFFFFF
        self.pc = reset_pc
        self.registers = [0] * 32
        # interrupt machinery: a source callable (usually the interrupt
        # controller's ``active``), a vector, and an EPC register
        self._interrupt_source: typing.Optional[
            typing.Callable[[], bool]] = None
        self.interrupt_vector = 0x0000_0180
        self.interrupts_enabled = False
        self.in_interrupt = False
        self.epc = 0
        self.interrupts_taken = 0
        self.hi = 0
        self.lo = 0
        self.halted = False
        self.fault: typing.Optional[str] = None
        self.instructions_executed = 0
        self.halted_event = simulator.event(f"{name}.halted")
        self._lines: "collections.OrderedDict[int, typing.List[int]]" = \
            collections.OrderedDict()
        self._line_capacity = line_buffer_lines
        self._fetch_txn: typing.Optional[Transaction] = None
        self._load_txn: typing.Optional[Transaction] = None
        self._load_target: typing.Optional[typing.Tuple[str, int, int]] = None
        self._pending_stores: typing.List[Transaction] = []
        self._stalled_store: typing.Optional[Transaction] = None
        self.method(self._step, name="step",
                    sensitive=[clock.posedge_event], dont_initialize=True)

    # ------------------------------------------------------------------
    # per-cycle behaviour
    # ------------------------------------------------------------------

    def bind_interrupt_source(self, source: typing.Callable[[], bool],
                              vector: int = 0x0000_0180) -> None:
        """Attach an interrupt line (level-sensitive) and its vector."""
        self._interrupt_source = source
        self.interrupt_vector = vector

    def _maybe_take_interrupt(self) -> bool:
        """Enter the handler if an enabled interrupt is pending."""
        if (self._interrupt_source is None or not self.interrupts_enabled
                or self.in_interrupt):
            return False
        if not self._interrupt_source():
            return False
        self.epc = self.pc
        self.pc = self.interrupt_vector
        self.in_interrupt = True
        self.interrupts_taken += 1
        return True

    def _step(self) -> None:
        if self.halted:
            # drain posted stores so late bus errors are still observed
            if self._pending_stores:
                self._poll_stores()
            return
        self._poll_stores()
        if self.halted:
            return  # a posted store faulted this cycle
        if self._stalled_store is not None:
            state = self.bus.issue(self._stalled_store)
            if state is BusState.WAIT:
                return
            self._pending_stores.append(self._stalled_store)
            self._stalled_store = None
        if self._load_txn is not None:
            self._advance_load()
            return
        if self._fetch_txn is not None:
            self._advance_fetch()
            return
        self._maybe_take_interrupt()
        word = self._fetch_word(self.pc)
        if word is None:
            return  # line fill issued; wait
        self._execute(word)

    def _halt(self, fault: typing.Optional[str] = None) -> None:
        self.halted = True
        if fault is not None:
            self.fault = fault  # never clear an earlier fault record
        self.halted_event.notify_delta()

    # -- instruction supply -------------------------------------------------

    def _fetch_word(self, address: int) -> typing.Optional[int]:
        line_address = address & self._line_mask
        line = self._lines.get(line_address)
        if line is not None:
            self._lines.move_to_end(line_address)
            return line[(address - line_address) // 4]
        self._fetch_txn = instruction_fetch(
            line_address, burst_length=self.fetch_burst_length)
        self.bus.issue(self._fetch_txn)
        return None

    def _advance_fetch(self) -> None:
        state = self.bus.issue(self._fetch_txn)
        if not state.finished:
            return
        if state is BusState.ERROR:
            self._halt(f"instruction fetch fault at {self.pc:#x}")
            return
        line_address = self._fetch_txn.address
        self._lines[line_address] = list(self._fetch_txn.data)
        if len(self._lines) > self._line_capacity:
            self._lines.popitem(last=False)
        self._fetch_txn = None
        # the fetched instruction executes next cycle (fill latency)

    def invalidate_line_buffer(self) -> None:
        """Flush fetched lines (needed after self-modifying stores)."""
        self._lines.clear()

    # -- posted stores ---------------------------------------------------------

    def _poll_stores(self) -> None:
        still_pending = []
        for txn in self._pending_stores:
            state = self.bus.issue(txn)
            if state is BusState.ERROR:
                self._halt(f"store fault at {txn.address:#x}")
            elif not state.finished:
                still_pending.append(txn)
        self._pending_stores = still_pending

    # -- loads -----------------------------------------------------------------

    def _advance_load(self) -> None:
        state = self.bus.issue(self._load_txn)
        if not state.finished:
            return
        if state is BusState.ERROR:
            self._halt(f"load fault at {self._load_txn.address:#x}")
            return
        kind, register, address = self._load_target
        word = self._load_txn.data[0]
        lane = address % 4
        if kind == "lw":
            value = word
        elif kind == "lh":
            value = sign_extend_16(word >> (8 * lane)) & 0xFFFFFFFF
        elif kind == "lhu":
            value = (word >> (8 * lane)) & 0xFFFF
        elif kind == "lb":
            value = sign_extend_8(word >> (8 * lane)) & 0xFFFFFFFF
        elif kind == "lbu":
            value = (word >> (8 * lane)) & 0xFF
        else:  # pragma: no cover - decode guarantees the kinds above
            raise CpuFault(f"bad load kind {kind}")
        self._write_register(register, value)
        self._load_txn = None
        self._load_target = None

    # ------------------------------------------------------------------
    # decode & execute
    # ------------------------------------------------------------------

    def _read_register(self, index: int) -> int:
        return self.registers[index]

    def _write_register(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = value & 0xFFFFFFFF

    def _execute(self, word: int) -> None:
        self.instructions_executed += 1
        next_pc = self.pc + 4
        if word == HALT_WORD:
            self._halt()
            return
        if word == ERET_WORD:
            # return from the handler and re-enable interrupt entry
            self.in_interrupt = False
            self.pc = self.epc
            return
        if word == EI_WORD:
            self.interrupts_enabled = True
            self.pc = next_pc
            return
        if word == DI_WORD:
            self.interrupts_enabled = False
            self.pc = next_pc
            return
        opcode = (word >> 26) & 0x3F
        rs = (word >> 21) & 0x1F
        rt = (word >> 16) & 0x1F
        if opcode == 0x00:
            next_pc = self._execute_r_type(word, rs, rt, next_pc)
        elif opcode in (0x02, 0x03):  # j / jal
            if opcode == 0x03:
                self._write_register(31, next_pc)
            next_pc = ((self.pc + 4) & 0xF0000000) | ((word & 0x3FFFFFF) << 2)
        elif opcode in (0x04, 0x05):  # beq / bne
            taken = (self._read_register(rs) == self._read_register(rt))
            if opcode == 0x05:
                taken = not taken
            if taken:
                next_pc = self.pc + 4 + (sign_extend_16(word) << 2)
        elif opcode in (0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F):
            self._execute_immediate(word, opcode, rs, rt)
        elif opcode in (0x20, 0x21, 0x23, 0x24, 0x25):  # loads
            self._issue_load(word, opcode, rs, rt)
        elif opcode in (0x28, 0x29, 0x2B):  # stores
            self._issue_store(word, opcode, rs, rt)
        else:
            self._halt(f"illegal opcode {opcode:#x} at {self.pc:#x}")
            return
        self.pc = next_pc & 0xFFFFFFFF

    def _execute_r_type(self, word: int, rs: int, rt: int,
                        next_pc: int) -> int:
        funct = word & 0x3F
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        a = self._read_register(rs)
        b = self._read_register(rt)
        if funct == 0x08:  # jr
            return a
        if funct == 0x09:  # jalr
            self._write_register(rd, next_pc)
            return a
        if funct == 0x18:  # mult (signed)
            product = _signed(a) * _signed(b)
            self.lo = product & 0xFFFFFFFF
            self.hi = (product >> 32) & 0xFFFFFFFF
            return next_pc
        if funct == 0x19:  # multu
            product = a * b
            self.lo = product & 0xFFFFFFFF
            self.hi = (product >> 32) & 0xFFFFFFFF
            return next_pc
        if funct == 0x1A:  # div (signed, MIPS truncates toward zero)
            if b != 0:
                quotient = int(_signed(a) / _signed(b))
                self.lo = quotient & 0xFFFFFFFF
                self.hi = (_signed(a) - quotient * _signed(b)) \
                    & 0xFFFFFFFF
            return next_pc
        if funct == 0x1B:  # divu
            if b != 0:
                self.lo = a // b
                self.hi = a % b
            return next_pc
        if funct == 0x10:  # mfhi
            self._write_register(rd, self.hi)
            return next_pc
        if funct == 0x12:  # mflo
            self._write_register(rd, self.lo)
            return next_pc
        if funct == 0x21:
            result = a + b
        elif funct == 0x23:
            result = a - b
        elif funct == 0x24:
            result = a & b
        elif funct == 0x25:
            result = a | b
        elif funct == 0x26:
            result = a ^ b
        elif funct == 0x27:
            result = ~(a | b)
        elif funct == 0x2A:
            result = int(_signed(a) < _signed(b))
        elif funct == 0x2B:
            result = int(a < b)
        elif funct == 0x00:
            result = b << shamt
        elif funct == 0x02:
            result = b >> shamt
        elif funct == 0x03:
            result = _signed(b) >> shamt
        else:
            self._halt(f"illegal funct {funct:#x} at {self.pc:#x}")
            return next_pc
        self._write_register(rd, result)
        return next_pc

    def _execute_immediate(self, word: int, opcode: int, rs: int,
                           rt: int) -> None:
        a = self._read_register(rs)
        imm_signed = sign_extend_16(word)
        imm_zero = word & 0xFFFF
        if opcode == 0x09:
            result = a + imm_signed
        elif opcode == 0x0A:
            result = int(_signed(a) < imm_signed)
        elif opcode == 0x0B:
            result = int(a < (imm_signed & 0xFFFFFFFF))
        elif opcode == 0x0C:
            result = a & imm_zero
        elif opcode == 0x0D:
            result = a | imm_zero
        elif opcode == 0x0E:
            result = a ^ imm_zero
        else:  # lui
            result = imm_zero << 16
        self._write_register(rt, result)

    _LOAD_KINDS = {0x23: "lw", 0x21: "lh", 0x25: "lhu",
                   0x20: "lb", 0x24: "lbu"}
    _LOAD_PATTERNS = {"lw": MergePattern.WORD, "lh": MergePattern.HALFWORD,
                      "lhu": MergePattern.HALFWORD,
                      "lb": MergePattern.BYTE, "lbu": MergePattern.BYTE}

    def _issue_load(self, word: int, opcode: int, rs: int,
                    rt: int) -> None:
        kind = self._LOAD_KINDS[opcode]
        address = (self._read_register(rs) + sign_extend_16(word)) \
            & 0xFFFFFFFF
        txn = data_read(address, self._LOAD_PATTERNS[kind])
        self._load_txn = txn
        self._load_target = (kind, rt, address)
        self.bus.issue(txn)

    def _issue_store(self, word: int, opcode: int, rs: int,
                     rt: int) -> None:
        address = (self._read_register(rs) + sign_extend_16(word)) \
            & 0xFFFFFFFF
        value = self._read_register(rt)
        lane = address % 4
        if opcode == 0x2B:
            pattern, data = MergePattern.WORD, value
        elif opcode == 0x29:
            pattern, data = MergePattern.HALFWORD, \
                (value & 0xFFFF) << (8 * lane)
        else:
            pattern, data = MergePattern.BYTE, (value & 0xFF) << (8 * lane)
        txn = data_write(address, [data], pattern)
        state = self.bus.issue(txn)
        if state is BusState.WAIT:
            self._stalled_store = txn  # write budget full: retry
        else:
            self._pending_stores.append(txn)

    # ------------------------------------------------------------------

    @property
    def quiesced(self) -> bool:
        """Halted with no bus activity left in flight."""
        return (self.halted and not self._pending_stores
                and self._stalled_store is None)

    def run_to_halt(self, max_cycles: int = 1_000_000) -> None:
        """Run the kernel in slices until the core halts and its posted
        stores have drained."""
        slice_cycles = 256
        elapsed = 0
        while elapsed < max_cycles:
            self.simulator.run(slice_cycles * self.clock.period)
            elapsed += slice_cycles
            if self.quiesced:
                return
        raise TimeoutError(
            f"core did not halt within {max_cycles} cycles "
            f"(pc={self.pc:#x})")


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value
