"""Base class for smart card peripherals with activity-based energy.

The paper's conclusion announces "an early energy estimation for
several different typical smart card components, like random number
generators, UARTs or timers" as future work; here each peripheral
books energy per architectural event (register access, byte moved,
counter tick...), the natural peripheral-level analogue of the bus
models' per-transition coefficients.
"""

from __future__ import annotations

import typing

from repro.ec import AccessRights, WaitStates
from repro.tlm.slave import RegisterSlave


class Peripheral(RegisterSlave):
    """A register-mapped peripheral with an energy ledger."""

    #: pJ charged per architectural event; subclasses extend this
    ENERGY_COSTS_PJ: typing.Dict[str, float] = {
        "register_read": 0.8,
        "register_write": 1.0,
    }

    def __init__(self, base_address: int, num_registers: int,
                 name: str, wait_states: WaitStates = WaitStates(),
                 access_rights: AccessRights = (AccessRights.READ
                                                | AccessRights.WRITE)
                 ) -> None:
        super().__init__(base_address, num_registers, wait_states,
                         access_rights, name)
        self.energy_pj = 0.0
        self.event_counts: typing.Dict[str, int] = {}
        self._psm = None

    def attach_power_state_machine(self, psm) -> None:
        """Manage this peripheral with *psm*
        (:class:`~repro.power.PowerStateMachine`); ``None`` detaches.

        While attached, dynamic event energy is scaled by the current
        state, the functional ``tick()`` freezes in CLOCK_GATED/SLEEP,
        and a bus access arriving in those states wakes the device and
        pays the state's wake latency as extra wait states.  With no
        PSM attached every code path is bit-identical to the
        unmanaged peripheral.
        """
        self._psm = psm

    @property
    def power_state_machine(self):
        return self._psm

    @property
    def wait_states(self) -> WaitStates:
        base = self._wait_states
        if self._psm is None:
            return base
        extra = self._psm.wake()
        if not extra:
            return base
        return WaitStates(address=base.address, read=base.read + extra,
                          write=base.write + extra)

    @wait_states.setter
    def wait_states(self, value: WaitStates) -> None:
        self._wait_states = value

    def _dpm_frozen(self) -> bool:
        """True while an attached PSM has stopped the functional clock
        (the peripheral's ``tick()`` must not advance)."""
        return self._psm is not None and not self._psm.clock_running

    def book(self, event: str, count: int = 1) -> None:
        """Charge *count* occurrences of *event* to the ledger."""
        cost = self.ENERGY_COSTS_PJ.get(event)
        if cost is None:
            raise KeyError(f"{self.name}: unknown energy event {event!r}")
        if self._psm is not None:
            cost = cost * self._psm.event_scale()
        self.energy_pj += cost * count
        self.event_counts[event] = self.event_counts.get(event, 0) + count

    def do_read(self, offset: int, byte_enables: int):
        if self._psm is not None:
            self._psm.notify_activity()
        self.book("register_read")
        return super().do_read(offset, byte_enables)

    def do_write(self, offset: int, byte_enables: int, data: int):
        if self._psm is not None:
            self._psm.notify_activity()
        self.book("register_write")
        return super().do_write(offset, byte_enables, data)

    def tick(self) -> None:
        """Advance one clock cycle (called by the platform)."""
