"""Base class for smart card peripherals with activity-based energy.

The paper's conclusion announces "an early energy estimation for
several different typical smart card components, like random number
generators, UARTs or timers" as future work; here each peripheral
books energy per architectural event (register access, byte moved,
counter tick...), the natural peripheral-level analogue of the bus
models' per-transition coefficients.
"""

from __future__ import annotations

import typing

from repro.ec import AccessRights, WaitStates
from repro.tlm.slave import RegisterSlave


class Peripheral(RegisterSlave):
    """A register-mapped peripheral with an energy ledger."""

    #: pJ charged per architectural event; subclasses extend this
    ENERGY_COSTS_PJ: typing.Dict[str, float] = {
        "register_read": 0.8,
        "register_write": 1.0,
    }

    def __init__(self, base_address: int, num_registers: int,
                 name: str, wait_states: WaitStates = WaitStates(),
                 access_rights: AccessRights = (AccessRights.READ
                                                | AccessRights.WRITE)
                 ) -> None:
        super().__init__(base_address, num_registers, wait_states,
                         access_rights, name)
        self.energy_pj = 0.0
        self.event_counts: typing.Dict[str, int] = {}

    def book(self, event: str, count: int = 1) -> None:
        """Charge *count* occurrences of *event* to the ledger."""
        cost = self.ENERGY_COSTS_PJ.get(event)
        if cost is None:
            raise KeyError(f"{self.name}: unknown energy event {event!r}")
        self.energy_pj += cost * count
        self.event_counts[event] = self.event_counts.get(event, 0) + count

    def do_read(self, offset: int, byte_enables: int):
        self.book("register_read")
        return super().do_read(offset, byte_enables)

    def do_write(self, offset: int, byte_enables: int, data: int):
        self.book("register_write")
        return super().do_write(offset, byte_enables, data)

    def tick(self) -> None:
        """Advance one clock cycle (called by the platform)."""
