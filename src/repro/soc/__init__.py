"""Smart card SoC substrate: the Figure-1 target architecture.

MIPS-like core (trace generator for the bus), memories with realistic
wait-state behaviour, and the smart card peripherals with per-event
energy ledgers.
"""

from .assembler import AssemblerError, assemble, load_words
from .cpu import CpuFault, MipsCore
from .crypto import (CryptoCoprocessor, DmaDriver, xtea_decrypt,
                     xtea_encrypt)
from .dma import DmaController
from . import firmware
from .interrupt import InterruptController
from .journal import JournalState, TransactionJournal
from .memory import Eeprom, Flash, Rom, ScratchpadRam
from .peripheral import Peripheral
from .rng import TrueRandomNumberGenerator
from .smartcard import (DEFAULT_CLOCK_HZ, DMA_BASE, EEPROM_BASE,
                        FLASH_BASE, INTC_BASE, RAM_BASE, RNG_BASE,
                        ROM_BASE, SmartCardPlatform, TIMER_BASE,
                        UART_BASE)
from .timer import TimerUnit
from .uart import Uart

__all__ = [
    "AssemblerError",
    "CpuFault",
    "CryptoCoprocessor",
    "DmaController",
    "DmaDriver",
    "DEFAULT_CLOCK_HZ",
    "DMA_BASE",
    "EEPROM_BASE",
    "Eeprom",
    "FLASH_BASE",
    "Flash",
    "INTC_BASE",
    "InterruptController",
    "JournalState",
    "MipsCore",
    "Peripheral",
    "RAM_BASE",
    "RNG_BASE",
    "ROM_BASE",
    "Rom",
    "ScratchpadRam",
    "SmartCardPlatform",
    "TIMER_BASE",
    "TimerUnit",
    "TransactionJournal",
    "TrueRandomNumberGenerator",
    "UART_BASE",
    "Uart",
    "assemble",
    "firmware",
    "load_words",
    "xtea_decrypt",
    "xtea_encrypt",
]
