"""Reusable firmware routines for the MIPS-like core.

Program generators for the buffer chores every smart card OS performs
(copy, fill, compare, checksum, CRC).  Each function returns assembly
text parameterised with concrete addresses; the routines double as the
richest stress tests of the ISS/assembler pair and as realistic
workload building blocks for the bus experiments.

All routines finish by writing 1 to *flag_address* and halting, so a
test bench can verify completion through the memory image alone.
"""

from __future__ import annotations


def _prologue(flag_address: int) -> str:
    return f"""
        lui   $gp, {flag_address >> 16:#x}
        ori   $gp, $gp, {flag_address & 0xFFFF:#x}
"""


def _epilogue() -> str:
    return """
        addiu $t9, $zero, 1
        sw    $t9, 0($gp)
        halt
"""


def memcpy_program(src: int, dst: int, words: int,
                   flag_address: int) -> str:
    """Copy *words* words from *src* to *dst*."""
    return _prologue(flag_address) + f"""
        lui   $s0, {src >> 16:#x}
        ori   $s0, $s0, {src & 0xFFFF:#x}
        lui   $s1, {dst >> 16:#x}
        ori   $s1, $s1, {dst & 0xFFFF:#x}
        addiu $t0, $zero, {words}
        beq   $t0, $zero, done
copy:   lw    $t1, 0($s0)
        sw    $t1, 0($s1)
        addiu $s0, $s0, 4
        addiu $s1, $s1, 4
        addiu $t0, $t0, -1
        bne   $t0, $zero, copy
done:
""" + _epilogue()


def memset_program(dst: int, value: int, words: int,
                   flag_address: int) -> str:
    """Fill *words* words at *dst* with the 16-bit *value*."""
    return _prologue(flag_address) + f"""
        lui   $s1, {dst >> 16:#x}
        ori   $s1, $s1, {dst & 0xFFFF:#x}
        addiu $t1, $zero, {value & 0xFFFF:#x}
        addiu $t0, $zero, {words}
        beq   $t0, $zero, done
fill:   sw    $t1, 0($s1)
        addiu $s1, $s1, 4
        addiu $t0, $t0, -1
        bne   $t0, $zero, fill
done:
""" + _epilogue()


def memcmp_program(first: int, second: int, words: int,
                   result_address: int, flag_address: int) -> str:
    """Store 0 at *result_address* if the buffers match, else 1."""
    return _prologue(flag_address) + f"""
        lui   $s0, {first >> 16:#x}
        ori   $s0, $s0, {first & 0xFFFF:#x}
        lui   $s1, {second >> 16:#x}
        ori   $s1, $s1, {second & 0xFFFF:#x}
        lui   $s2, {result_address >> 16:#x}
        ori   $s2, $s2, {result_address & 0xFFFF:#x}
        addiu $t0, $zero, {words}
        addiu $t4, $zero, 0
cmp:    beq   $t0, $zero, store
        lw    $t1, 0($s0)
        lw    $t2, 0($s1)
        addiu $s0, $s0, 4
        addiu $s1, $s1, 4
        addiu $t0, $t0, -1
        beq   $t1, $t2, cmp
        addiu $t4, $zero, 1
store:  sw    $t4, 0($s2)
""" + _epilogue()


def checksum32_program(src: int, words: int, result_address: int,
                       flag_address: int) -> str:
    """Modular 32-bit sum of *words* words into *result_address*."""
    return _prologue(flag_address) + f"""
        lui   $s0, {src >> 16:#x}
        ori   $s0, $s0, {src & 0xFFFF:#x}
        lui   $s2, {result_address >> 16:#x}
        ori   $s2, $s2, {result_address & 0xFFFF:#x}
        addiu $t0, $zero, {words}
        addiu $t4, $zero, 0
sum:    beq   $t0, $zero, store
        lw    $t1, 0($s0)
        addu  $t4, $t4, $t1
        addiu $s0, $s0, 4
        addiu $t0, $t0, -1
        j     sum
store:  sw    $t4, 0($s2)
""" + _epilogue()


def crc16_program(src: int, num_bytes: int, result_address: int,
                  flag_address: int) -> str:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over bytes."""
    return _prologue(flag_address) + f"""
        lui   $s0, {src >> 16:#x}
        ori   $s0, $s0, {src & 0xFFFF:#x}
        lui   $s2, {result_address >> 16:#x}
        ori   $s2, $s2, {result_address & 0xFFFF:#x}
        addiu $t0, $zero, {num_bytes}       # byte counter
        lui   $t4, 0x0000
        ori   $t4, $t4, 0xFFFF              # crc = 0xFFFF
        addiu $t5, $zero, 0x1021            # polynomial

byte:   beq   $t0, $zero, store
        lbu   $t1, 0($s0)                   # next byte
        addiu $s0, $s0, 1
        addiu $t0, $t0, -1
        sll   $t1, $t1, 8
        xor   $t4, $t4, $t1
        andi  $t4, $t4, 0xFFFF
        addiu $t2, $zero, 8                 # bit counter

bit:    andi  $t3, $t4, 0x8000
        sll   $t4, $t4, 1
        andi  $t4, $t4, 0xFFFF
        beq   $t3, $zero, nobit
        xor   $t4, $t4, $t5
        andi  $t4, $t4, 0xFFFF
nobit:  addiu $t2, $t2, -1
        bne   $t2, $zero, bit
        j     byte

store:  sw    $t4, 0($s2)
""" + _epilogue()


# -- python references (for tests and host-side checking) -------------------

def crc16_reference(data: bytes) -> int:
    """CRC-16/CCITT-FALSE reference implementation."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def checksum32_reference(words) -> int:
    """Modular 32-bit sum reference."""
    return sum(words) & 0xFFFFFFFF
