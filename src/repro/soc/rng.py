"""True-random-number-generator peripheral (Figure 1).

The real device harvests ring-oscillator jitter; with no physical
entropy available the generator is simulated by a 32-bit Galois LFSR
seeded at construction — deterministic (reproducible tests) while
exercising the same software-visible protocol: poll ``STATUS`` until
READY, then read ``DATA`` to consume one 32-bit word, which starts a
new harvesting interval.

Register map (word offsets): 0 ``DATA``, 1 ``STATUS`` (bit0 READY),
2 ``CTRL`` (bit0 enable).
"""

from __future__ import annotations

from .peripheral import Peripheral

DATA, STATUS, CTRL = range(3)

STATUS_READY = 1 << 0
CTRL_ENABLE = 1 << 0

#: taps of the x^32 + x^22 + x^2 + x + 1 polynomial (period 2^32 - 1)
_LFSR_MASK = 0x80200003

#: cycles to harvest one fresh 32-bit word
HARVEST_CYCLES = 32


class TrueRandomNumberGenerator(Peripheral):
    """LFSR-backed stand-in for the smart card TRNG."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "harvest_cycle": 0.4,   # free-running oscillators are hungry
        "word_delivered": 2.5,
    })

    def __init__(self, base_address: int, name: str = "trng",
                 seed: int = 0xACE1_2B4D) -> None:
        super().__init__(base_address, 3, name)
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self._state = seed & 0xFFFFFFFF
        self._harvest_remaining = HARVEST_CYCLES
        self.words_delivered = 0
        self.registers[CTRL] = CTRL_ENABLE
        self.on_read(DATA, self._read_data)
        self.on_read(STATUS, self._read_status)

    @property
    def enabled(self) -> bool:
        return bool(self.registers[CTRL] & CTRL_ENABLE)

    @property
    def ready(self) -> bool:
        return self._harvest_remaining == 0

    def _advance_lfsr(self) -> None:
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= _LFSR_MASK

    def _read_status(self) -> int:
        return STATUS_READY if self.ready else 0

    def _read_data(self) -> int:
        if not self.ready:
            return 0  # reading too early yields nothing, like hardware
        word = self._state
        self.words_delivered += 1
        self.book("word_delivered")
        self._harvest_remaining = HARVEST_CYCLES
        return word

    @property
    def busy(self) -> bool:
        """True while a harvest is still filling the entropy word."""
        return self.enabled and self._harvest_remaining > 0

    def tick(self) -> None:
        if not self.enabled or self._dpm_frozen():
            return
        self._advance_lfsr()
        self.book("harvest_cycle")
        if self._harvest_remaining > 0:
            self._harvest_remaining -= 1
