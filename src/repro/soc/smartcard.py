"""The Figure-1 smart card platform, assembled.

One call builds the whole target architecture around any of the three
bus models: ROM, FLASH, EEPROM and scratchpad RAM behind the EC bus,
plus the memory-mapped UART, the two 16-bit timers, the TRNG and the
interrupt controller.  A platform tick process advances the
peripherals once per clock cycle.

The bus need not be flat: pass ``topology=`` (a
:class:`~repro.fabric.Topology` or a preset name) to split the card
into bridged segments — e.g. ``"two_segment"`` keeps the memories on
the CPU bus and moves the peripherals behind a bridge.  The default
flat topology reproduces the legacy single-bus card *exactly*, cycle
for cycle and picojoule for picojoule.
"""

from __future__ import annotations

import random
import typing

from repro.ec import MemoryMap
from repro.fabric import (BusFabric, FabricSegment, Topology, build_fabric)
from repro.kernel import Clock, Module, Simulator
from repro.kernel import time as ktime
from repro.tlm import EcBusLayer1, EcBusLayer2

from .cpu import MipsCore
from .dma import DmaController
from .interrupt import (InterruptController, LINE_TIMER0, LINE_TIMER1,
                        LINE_UART)
from .memory import Eeprom, Flash, Rom, ScratchpadRam
from .rng import TrueRandomNumberGenerator
from .timer import TimerUnit
from .uart import Uart

#: Figure-1 memory map of the modelled platform.
ROM_BASE = 0x0000_0000       # 256 kB program memory
FLASH_BASE = 0x0010_0000     # 64 kB program memory
EEPROM_BASE = 0x0020_0000    # 32 kB data & program memory
RAM_BASE = 0x0030_0000       # scratchpad RAM
UART_BASE = 0x0040_0000
TIMER_BASE = 0x0040_1000
RNG_BASE = 0x0040_2000
INTC_BASE = 0x0040_3000
DMA_BASE = 0x0040_4000

#: 10 MHz system clock (contact-mode smart card operating point)
DEFAULT_CLOCK_HZ = 10e6

BusFactory = typing.Callable[..., object]


class SmartCardPlatform(Module):
    """Simulator + clock + memories + peripherals + one bus model."""

    def __init__(self, bus_layer: typing.Union[int, str] = 1,
                 clock_hz: float = DEFAULT_CLOCK_HZ,
                 power_model=None,
                 bus_factory: typing.Optional[BusFactory] = None,
                 with_cpu: bool = False,
                 rom_image: typing.Optional[typing.Sequence[int]] = None,
                 eeprom_tear_rate: float = 0.0,
                 fault_seed: typing.Union[int, str, None] = None,
                 topology: typing.Union[Topology, str, None] = None,
                 power_model_factory: typing.Optional[
                     typing.Callable[[str], typing.Any]] = None,
                 with_dma: bool = False,
                 ) -> None:
        simulator = Simulator("smartcard")
        super().__init__(simulator, "platform")
        # construction recipe, so cold_boot() can rebuild the card
        self._config = dict(
            bus_layer=bus_layer, clock_hz=clock_hz,
            power_model=power_model, bus_factory=bus_factory,
            with_cpu=with_cpu, eeprom_tear_rate=eeprom_tear_rate,
            fault_seed=fault_seed, topology=topology,
            power_model_factory=power_model_factory, with_dma=with_dma)
        period = ktime.period_from_frequency_hz(clock_hz)
        if period % 2:
            period += 1
        self.clock = Clock(simulator, "clk", period=period)
        self.intc = InterruptController(INTC_BASE)
        self.uart = Uart(UART_BASE,
                         irq_callback=lambda: self.intc.raise_irq(LINE_UART))
        self.timers = TimerUnit(
            TIMER_BASE,
            irq_callback=lambda t: self.intc.raise_irq(
                LINE_TIMER0 if t == 0 else LINE_TIMER1))
        self.rng = TrueRandomNumberGenerator(RNG_BASE)
        self.rom = Rom(ROM_BASE)
        self.flash = Flash(FLASH_BASE)
        self.eeprom = Eeprom(
            EEPROM_BASE, tear_rate=eeprom_tear_rate,
            tear_rng=(random.Random(f"{fault_seed}/eeprom-tear")
                      if eeprom_tear_rate else None))
        self.ram = ScratchpadRam(RAM_BASE)
        self.dma: typing.Optional[DmaController] = None
        topology = Topology.coerce(topology)
        if with_dma:
            self.dma = DmaController(DMA_BASE)
            # the DMA contends with the CPU on the root segment; give
            # the segment an arbiter if the topology declares none
            if topology.segment(topology.root).arbiter is None:
                topology = topology.with_arbiter(topology.root,
                                                 "priority_rr")
            topology = topology.with_slave(topology.root, "dma")
        self.topology = topology
        named_slaves = {"rom": self.rom, "flash": self.flash,
                        "eeprom": self.eeprom, "ram": self.ram,
                        "uart": self.uart, "timers": self.timers,
                        "trng": self.rng, "intc": self.intc}
        if self.dma is not None:
            named_slaves["dma"] = self.dma
        legacy_flat = (topology.is_flat
                       and topology.segments[0].arbiter is None)
        if legacy_flat:
            # the exact legacy construction path: same map, same bus
            # module name, same power-model wiring — byte-identical
            # ledgers and journals to the historical single-bus card
            self.memory_map = MemoryMap()
            for name in topology.segments[0].slaves:
                self.memory_map.add_slave(named_slaves[name], name)
            if bus_factory is None:
                bus_factory = {1: EcBusLayer1, 2: EcBusLayer2,
                               "l1": EcBusLayer1, "l2": EcBusLayer2,
                               }[bus_layer]
            self.bus = bus_factory(simulator, self.clock, self.memory_map,
                                   power_model=power_model)
            segment = FabricSegment(topology.root, self.memory_map,
                                    self.bus, power_model=power_model)
            self.fabric = BusFabric(topology, {topology.root: segment}, {})
        else:
            models = {topology.root: power_model}
            if power_model_factory is not None:
                for spec in topology.segments:
                    if spec.name != topology.root:
                        models[spec.name] = power_model_factory(spec.name)
            self.fabric = build_fabric(
                topology, named_slaves, bus_layer=bus_layer,
                simulator=simulator, clock=self.clock,
                bus_factory=bus_factory, power_models=models)
            self.bus = self.fabric.root_bus
            self.memory_map = self.fabric.root_map
        eeprom_bus = self._segment_bus_of("eeprom")
        self.eeprom.bind_cycle_source(lambda: eeprom_bus.cycle)
        root_segment = self.fabric.root
        #: where CPU-side masters issue: the root arbiter (via a port)
        #: when the root segment is arbitrated, the root bus otherwise
        self.cpu_interface = (
            root_segment.arbiter.port("cpu", priority=0)
            if root_segment.arbiter is not None else self.bus)
        if self.dma is not None:
            self.dma.attach_port(
                self.fabric.master_port(topology.root, "dma", priority=1))
        self.cpu: typing.Optional[MipsCore] = None
        if rom_image is not None:
            self.load_rom(rom_image)
        if with_cpu:
            self.cpu = MipsCore(simulator, self.clock, self.cpu_interface,
                                reset_pc=ROM_BASE)
            # the interrupt controller drives the core's interrupt
            # line; programs opt in with `ei` and set the vector via
            # cpu.interrupt_vector (default ROM_BASE + 0x180)
            self.cpu.bind_interrupt_source(self.intc.active,
                                           vector=ROM_BASE + 0x180)
        self.method(self._tick_peripherals, name="peripheral_tick",
                    sensitive=[self.clock.posedge_event],
                    dont_initialize=True)

    def _segment_bus_of(self, slave_name: str):
        """The bus of the segment hosting *slave_name*."""
        for spec in self.topology.segments:
            if slave_name in spec.slaves:
                return self.fabric.segment(spec.name).bus
        raise KeyError(f"no segment hosts slave {slave_name!r}")

    def _tick_peripherals(self) -> None:
        self.uart.tick()
        self.timers.tick()
        self.rng.tick()
        if self.dma is not None:
            self.dma.tick()

    # -- conveniences --------------------------------------------------------

    def load_rom(self, words: typing.Sequence[int],
                 offset: int = 0) -> None:
        """Back-door load of a program image into ROM."""
        self.rom.load(offset, words)

    def load_assembly(self, source: str) -> None:
        """Assemble *source* at the reset address and load it into ROM."""
        from .assembler import assemble
        self.load_rom(assemble(source, origin=ROM_BASE))

    def run_cycles(self, cycles: int) -> None:
        """Advance the platform by *cycles* clock cycles."""
        self.simulator.run(cycles * self.clock.period)

    def cold_boot(self, **overrides) -> "SmartCardPlatform":
        """Re-field the card: a fresh platform with this card's
        non-volatile state.

        Builds a brand-new platform (fresh :class:`Simulator`, fresh
        bus, fresh peripherals — everything volatile is gone, exactly
        as after a tear) from the same construction recipe, then
        carries over the persistent memories: ROM, FLASH and — the one
        that matters for anti-tearing — the EEPROM image, byte for
        byte, including any partially-applied journal frame.

        *overrides* patch the recipe: after a power loss the caller
        usually passes a fresh ``power_model=`` (energy models are
        stateful and stay bound to the dead platform's bus).  Boot-time
        journal recovery is the firmware's first job on the new
        platform — see :class:`~repro.soc.journal.TransactionJournal`.
        """
        config = dict(self._config)
        config.update(overrides)
        platform = SmartCardPlatform(**config)
        platform.rom.load(0, self.rom.image())
        platform.flash.load(0, self.flash.image())
        platform.eeprom.load(0, self.eeprom.image())
        return platform

    @property
    def peripheral_energy_pj(self) -> float:
        """Summed peripheral-ledger energy (the future-work extension)."""
        total = (self.uart.energy_pj + self.timers.energy_pj
                 + self.rng.energy_pj + self.intc.energy_pj)
        if self.dma is not None:
            total += self.dma.energy_pj
        return total

    # -- dynamic power management -------------------------------------------

    def energy_ledgers(self) -> typing.List[typing.Any]:
        """The platform's ``energy_pj`` ledgers, for a
        :class:`~repro.power.CardPowerModel` composite."""
        ledgers = [self.uart, self.timers, self.rng, self.intc]
        if self.dma is not None:
            ledgers.append(self.dma)
        return ledgers

    def energy_report(self):
        """Per-link + per-peripheral energy buckets telescoped into one
        probe total (see :meth:`repro.fabric.BusFabric.energy_report`)."""
        return self.fabric.energy_report(self.energy_ledgers())

    def attach_dpm(self, governor, profiles: typing.Optional[
            typing.Mapping] = None) -> typing.Dict[str, object]:
        """Give every DPM-capable peripheral a power state machine and
        register it with *governor* (:class:`~repro.power.DpmGovernor`).

        Returns the created PSMs by peripheral name.  The timers are
        registered *critical*: a running timer is busy by definition
        (gating it would lose time), and stage-2 degradation must not
        force it to sleep.  *profiles* optionally overrides the
        per-state :class:`~repro.power.StateProfile` numbers for every
        created PSM.
        """
        from repro.power import PowerStateMachine  # late: avoid cycles

        specs = (
            ("uart", self.uart, lambda: self.uart.busy, False),
            ("timers", self.timers, lambda: self.timers.busy, True),
            ("trng", self.rng, lambda: self.rng.busy, False),
            ("eeprom", self.eeprom, lambda: self.eeprom.busy, False),
        )
        psms: typing.Dict[str, object] = {}
        for name, peripheral, busy, critical in specs:
            psm = PowerStateMachine(name=name, profiles=profiles)
            peripheral.attach_power_state_machine(psm)
            governor.register(psm, busy, critical=critical)
            psms[name] = psm
        return psms
