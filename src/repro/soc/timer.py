"""The two 16-bit timers of the Figure-1 platform (T0, T1).

Register map (word offsets): per timer ``COUNT``, ``RELOAD``, ``CTRL``
(bit0 enable, bit1 irq enable, bit2 auto reload), laid out as T0 at
offsets 0..2 and T1 at offsets 3..5.  A timer counts down once per
clock cycle; hitting zero raises its interrupt line and either stops
or reloads.
"""

from __future__ import annotations

import typing

from .peripheral import Peripheral

CTRL_ENABLE = 1 << 0
CTRL_IRQ = 1 << 1
CTRL_AUTO_RELOAD = 1 << 2

REGS_PER_TIMER = 3
NUM_TIMERS = 2
COUNT, RELOAD, CTRL = range(REGS_PER_TIMER)


class TimerUnit(Peripheral):
    """Two independent 16-bit down counters with interrupt lines."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "counter_tick": 0.05,
        "overflow": 0.6,
    })

    def __init__(self, base_address: int, name: str = "timers",
                 irq_callback: typing.Optional[
                     typing.Callable[[int], None]] = None) -> None:
        super().__init__(base_address, NUM_TIMERS * REGS_PER_TIMER, name)
        self.irq_callback = irq_callback
        self.overflows = [0] * NUM_TIMERS

    # -- register helpers -----------------------------------------------

    def _reg(self, timer: int, which: int) -> int:
        return timer * REGS_PER_TIMER + which

    def count(self, timer: int) -> int:
        return self.registers[self._reg(timer, COUNT)] & 0xFFFF

    def configure(self, timer: int, reload: int, *, enable: bool = True,
                  irq: bool = False, auto_reload: bool = True) -> None:
        """Back-door configuration used by tests and examples."""
        self.registers[self._reg(timer, RELOAD)] = reload & 0xFFFF
        self.registers[self._reg(timer, COUNT)] = reload & 0xFFFF
        ctrl = (CTRL_ENABLE if enable else 0) \
            | (CTRL_IRQ if irq else 0) \
            | (CTRL_AUTO_RELOAD if auto_reload else 0)
        self.registers[self._reg(timer, CTRL)] = ctrl

    # -- behaviour over time ------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while any counter is enabled — gating an enabled timer
        would lose time, so DPM treats running timers as busy."""
        return any(self.registers[self._reg(t, CTRL)] & CTRL_ENABLE
                   for t in range(NUM_TIMERS))

    def tick(self) -> None:
        if self._dpm_frozen():
            return
        for timer in range(NUM_TIMERS):
            ctrl = self.registers[self._reg(timer, CTRL)]
            if not ctrl & CTRL_ENABLE:
                continue
            count = self.registers[self._reg(timer, COUNT)] & 0xFFFF
            self.book("counter_tick")
            if count > 0:
                self.registers[self._reg(timer, COUNT)] = count - 1
                continue
            # expiry
            self.overflows[timer] += 1
            self.book("overflow")
            if ctrl & CTRL_IRQ and self.irq_callback is not None:
                self.irq_callback(timer)
            if ctrl & CTRL_AUTO_RELOAD:
                self.registers[self._reg(timer, COUNT)] = \
                    self.registers[self._reg(timer, RELOAD)] & 0xFFFF
            else:
                self.registers[self._reg(timer, CTRL)] = \
                    ctrl & ~CTRL_ENABLE
