"""Smart card memories of the Figure-1 platform.

The target architecture carries 256 kB ROM program memory, 32 kB
EEPROM data & program memory, 64 kB FLASH program memory and a
scratchpad RAM.  Each memory type differs in wait states, access
rights and — for the non-volatile memories — programming behaviour:
an EEPROM write triggers an internal programming operation during
which the device answers with extra wait states.  That dynamic is what
separates layer 1 (which interacts with the slave every cycle) from
layer 2 (which snapshots wait states at request creation, §3.2) in the
Table-1 timing experiment.
"""

from __future__ import annotations

import random
import typing

from repro.ec import AccessRights, SlaveResponse, WaitStates
from repro.tlm.slave import MemorySlave


class Rom(MemorySlave):
    """Mask ROM: execute/read only, one read wait state."""

    def __init__(self, base_address: int, size: int = 256 * 1024,
                 name: str = "rom") -> None:
        super().__init__(base_address, size,
                         WaitStates(address=0, read=1),
                         AccessRights.READ | AccessRights.EXECUTE, name)

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        # a ROM cannot be written; rights normally catch this at decode
        return SlaveResponse.error()


class ScratchpadRam(MemorySlave):
    """On-core scratchpad RAM: zero wait states, full rights."""

    def __init__(self, base_address: int, size: int = 8 * 1024,
                 name: str = "scratchpad") -> None:
        super().__init__(base_address, size, WaitStates(),
                         AccessRights.ALL, name)


class Eeprom(MemorySlave):
    """EEPROM with a programming-busy window after every write.

    While programming (``program_cycles`` bus cycles after a completed
    write beat) the device inserts ``busy_extra_waits`` additional wait
    states on every access.  The busy window is measured against a
    cycle source the platform binds after bus construction.

    Write tearing (the classic smart card failure: the card is pulled
    from the reader mid-programming) is modelled with *tear_rate* and a
    caller-supplied *tear_rng*: a torn write commits only some byte
    lanes and answers ``ERROR``, leaving a partially-programmed word
    for the retry to repair.  Which lanes survive depends on where in
    the programming sequence the power failed, so by default
    (``tear_committed_enables=None``) the committed lane mask is
    sampled from *tear_rng* per torn write; passing an explicit 4-bit
    mask pins it (e.g. the fixed low-half-first behaviour of earlier
    revisions).  With the default ``tear_rate=0.0`` the device never
    tears, and no random stream is consumed.
    """

    def __init__(self, base_address: int, size: int = 32 * 1024,
                 name: str = "eeprom", program_cycles: int = 12,
                 busy_extra_waits: int = 4, tear_rate: float = 0.0,
                 tear_rng: typing.Optional[random.Random] = None,
                 tear_committed_enables: typing.Optional[int] = None
                 ) -> None:
        super().__init__(base_address, size,
                         WaitStates(address=1, read=2, write=3),
                         AccessRights.READ | AccessRights.WRITE, name)
        if not 0.0 <= tear_rate <= 1.0:
            raise ValueError(f"tear_rate must be in [0, 1], got {tear_rate}")
        if tear_rate and tear_rng is None:
            raise ValueError("a nonzero tear_rate needs a seeded tear_rng")
        if (tear_committed_enables is not None
                and not 0 <= tear_committed_enables <= 0b1111):
            raise ValueError("tear_committed_enables must be a 4-bit "
                             f"mask, got {tear_committed_enables}")
        self.program_cycles = program_cycles
        self.busy_extra_waits = busy_extra_waits
        self.tear_rate = tear_rate
        self.tear_rng = tear_rng
        self.tear_committed_enables = tear_committed_enables
        self.torn_writes = 0
        self._base_waits = WaitStates(address=1, read=2, write=3)
        self._busy_until = -1
        self._cycle_source: typing.Callable[[], int] = lambda: 0
        self.programming_operations = 0
        self._psm = None

    def bind_cycle_source(self,
                          cycle_source: typing.Callable[[], int]) -> None:
        """Attach the bus-cycle counter used for the busy window."""
        self._cycle_source = cycle_source

    @property
    def busy(self) -> bool:
        """True while an internal programming operation is running."""
        return self._cycle_source() < self._busy_until

    def attach_power_state_machine(self, psm) -> None:
        """Manage the EEPROM with *psm*
        (:class:`~repro.power.PowerStateMachine`); ``None`` detaches.

        The EEPROM has no event ledger of its own — DPM overhead lands
        in the PSM's ledger — but a gated/sleeping array pays its wake
        latency as extra wait states on the access that wakes it,
        stacking on top of any programming-busy window.
        """
        self._psm = psm

    @property
    def power_state_machine(self):
        return self._psm

    @property
    def wait_states(self) -> WaitStates:
        base = self._base_waits
        extra = 0
        if self._psm is not None:
            extra = self._psm.wake()
        if self.busy:
            extra += self.busy_extra_waits
        if not extra:
            return base
        return WaitStates(address=base.address, read=base.read + extra,
                          write=base.write + extra)

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        if (self.tear_rate
                and self.tear_rng.random() < self.tear_rate):
            # programming started, then tore: some lanes are committed,
            # the cell is left busy, and the voltage monitor flags it
            mask = self.tear_committed_enables
            if mask is None:
                # the surviving lanes depend on where in the
                # programming sequence power failed — sample them
                mask = self.tear_rng.randrange(0b10000)
            committed = byte_enables & mask
            if committed:
                super().do_write(offset, committed, data)
            self.torn_writes += 1
            self._busy_until = self._cycle_source() + self.program_cycles
            return SlaveResponse.error()
        response = super().do_write(offset, byte_enables, data)
        self._busy_until = self._cycle_source() + self.program_cycles
        self.programming_operations += 1
        return response


class Flash(MemorySlave):
    """FLASH program memory: fast reads, slow page-programming writes."""

    def __init__(self, base_address: int, size: int = 64 * 1024,
                 name: str = "flash") -> None:
        super().__init__(base_address, size,
                         WaitStates(address=0, read=1, write=6),
                         AccessRights.READ | AccessRights.WRITE
                         | AccessRights.EXECUTE, name)
        self.program_count = 0

    def do_write(self, offset: int, byte_enables: int,
                 data: int) -> SlaveResponse:
        self.program_count += 1
        return super().do_write(offset, byte_enables, data)
