"""A general memory-to-memory DMA controller.

Smart card SoCs move buffers constantly (APDU payloads, key material,
non-volatile commits); a DMA engine does it without occupying the CPU
and — because it can use burst transactions — with fewer, denser bus
cycles.  Together with :class:`~repro.tlm.arbiter.BusArbiter` this
gives the platform a second general-purpose master, and gives HW/SW
interface studies a CPU-copy vs DMA-copy axis.

Register map (word offsets):

====  ========  ====================================================
0     SRC       source byte address (word aligned)
1     DST       destination byte address (word aligned)
2     LEN       number of words to move
3     CTRL      bit0 START, bit1 BURST (4-word bursts where possible)
4     STATUS    bit0 BUSY, bit1 DONE, bit2 ERROR
====  ========  ====================================================
"""

from __future__ import annotations

import typing

from repro.ec import BusState, data_read, data_write
from repro.ec.interfaces import BusMasterInterface

from .peripheral import Peripheral

SRC, DST, LEN, CTRL, STATUS = range(5)

CTRL_START = 1 << 0
CTRL_BURST = 1 << 1

STATUS_BUSY = 1 << 0
STATUS_DONE = 1 << 1
STATUS_ERROR = 1 << 2


class DmaController(Peripheral):
    """Word/burst memory-to-memory mover with a bus master port."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "descriptor": 0.9,
        "word_moved": 0.25,
    })

    def __init__(self, base_address: int, name: str = "dma") -> None:
        super().__init__(base_address, 5, name=name)
        self._port: typing.Optional[BusMasterInterface] = None
        self._governor = None
        self._state = "idle"
        self._remaining = 0
        self._src = 0
        self._dst = 0
        self._burst = False
        self._txn = None
        self._buffer: typing.List[int] = []
        self.words_moved = 0
        self.on_write(CTRL, self._on_ctrl)
        self.on_read(STATUS, lambda: self.registers[STATUS])

    def attach_port(self, port: BusMasterInterface) -> None:
        """Attach the bus master port (usually an arbiter port)."""
        self._port = port

    def attach_governor(self, governor) -> None:
        """Consult *governor* (:class:`~repro.power.EnergyGovernor`)
        before starting each chunk transaction; transfers already on
        the bus are never deferred.  None detaches."""
        self._governor = governor

    def _issue_allowed(self) -> bool:
        return (self._governor is None
                or self._txn.issue_cycle is not None
                or self._governor.may_issue(self._txn))

    # -- control ---------------------------------------------------------

    def _on_ctrl(self, value: int) -> None:
        if not value & CTRL_START:
            return
        if self._port is None:
            raise RuntimeError(f"{self.name}: started without a port")
        if self._state != "idle":
            return  # start while busy is ignored, like most hardware
        self._src = self.registers[SRC] & ~0x3
        self._dst = self.registers[DST] & ~0x3
        self._remaining = self.registers[LEN]
        self._burst = bool(value & CTRL_BURST)
        self._state = "read"
        self._txn = None
        self.registers[STATUS] = STATUS_BUSY
        self.book("descriptor")

    def _chunk(self) -> int:
        if not self._burst:
            return 1
        for size in (4, 2, 1):
            if self._remaining >= size and self._src % (4 * size) == 0 \
                    and self._dst % (4 * size) == 0:
                return size
        return 1

    # -- engine (ticked by the platform / a DmaDriver) ----------------------

    def tick(self) -> None:
        if self._dpm_frozen():
            return
        if self._state == "idle":
            return
        if self._state == "read":
            if self._remaining == 0:
                self._finish(error=False)
                return
            if self._txn is None:
                self._txn = data_read(self._src,
                                      burst_length=self._chunk())
            if not self._issue_allowed():
                return  # governor deferral: retry next tick
            state = self._port.issue(self._txn)
            if state is BusState.OK:
                self._buffer = list(self._txn.data)
                self._txn = None
                self._state = "write"
            elif state is BusState.ERROR:
                self._finish(error=True)
        elif self._state == "write":
            if self._txn is None:
                self._txn = data_write(self._dst, self._buffer)
            if not self._issue_allowed():
                return  # governor deferral: retry next tick
            state = self._port.issue(self._txn)
            if state is BusState.OK:
                moved = len(self._buffer)
                self.words_moved += moved
                self.book("word_moved", moved)
                self._src += 4 * moved
                self._dst += 4 * moved
                self._remaining -= moved
                self._txn = None
                self._state = "read"
            elif state is BusState.ERROR:
                self._finish(error=True)

    def _finish(self, error: bool) -> None:
        self._state = "idle"
        self._txn = None
        self.registers[STATUS] = STATUS_DONE | (STATUS_ERROR if error
                                                else 0)

    @property
    def busy(self) -> bool:
        return self._state != "idle"
