"""Anti-tearing transaction journal over the EEPROM (Java-Card style).

Smart card operating systems must keep persistent state consistent
under *tearing* — the card can lose power at any cycle, mid-write,
mid-transaction.  The classic defence (Java Card's transaction
mechanism) is a redo journal in non-volatile memory: record what you
are about to write, commit the record atomically, then write the real
locations, then clear the record.  After any tear, boot-time recovery
either finds no committed record (nothing was promised: the home
locations still hold the old values of any unfinished transaction) or
a committed one (replay the journal; replay is idempotent, so a tear
*during recovery itself* is also survivable).

The journal occupies a small window of the EEPROM:

====  =========  =====================================================
word  name       contents
====  =========  =====================================================
0     HDR        ``(seq & 0xFFFF) << 16 | record_count``
1     COMMIT     0 = no committed frame; else the frame checksum
2+    RECORDS    ``record_count`` (address, value) word pairs
====  =========  =====================================================

Atomicity argument: the EEPROM commits whole words (the per-write
lane-tearing model answers ERROR, which aborts the whole card sequence
anyway), and the firmware discipline writes RECORDS, then HDR, then
COMMIT, then the home locations, then clears COMMIT — each a separate
bus write.  A tear between any two writes leaves COMMIT either 0 or a
checksum that validates exactly the fully-written frame, so recovery
never replays a half-written frame and never misses a committed one.

Two consumers:

* **firmware side** — :meth:`TransactionJournal.update_script` compiles
  one logical transaction into the bus-write script a card OS would
  issue (driven by a :class:`~repro.tlm.BlockingMaster`, whose strict
  ordering *is* the discipline the argument above needs);
* **boot side** — :meth:`decode` / :meth:`recover` inspect and repair
  a back-door EEPROM image (what
  :meth:`~repro.soc.SmartCardPlatform.cold_boot` carries across
  simulator instances), and :meth:`recovery_script` emits the bus
  traffic of the same repair so its cycle and energy cost is
  measurable on every bus layer.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import Transaction, data_read, data_write

HDR_WORDS = 2  # HDR + COMMIT precede the records

_WORD_MASK = 0xFFFFFFFF


def _frame_checksum(seq: int, records: typing.Sequence[
        typing.Tuple[int, int]]) -> int:
    """FNV-1a over the frame contents; never 0 (0 means "no frame")."""
    digest = 0x811C9DC5
    for value in (seq, len(records)):
        digest = ((digest ^ (value & _WORD_MASK)) * 0x01000193) \
            & _WORD_MASK
    for address, value in records:
        digest = ((digest ^ (address & _WORD_MASK)) * 0x01000193) \
            & _WORD_MASK
        digest = ((digest ^ (value & _WORD_MASK)) * 0x01000193) \
            & _WORD_MASK
    return digest or 0x5A5A5A5A


@dataclasses.dataclass(frozen=True)
class JournalState:
    """What boot-time recovery finds in the journal window."""

    committed: bool
    seq: int
    records: typing.Tuple[typing.Tuple[int, int], ...]
    raw_commit: int

    @property
    def empty(self) -> bool:
        return self.raw_commit == 0


class TransactionJournal:
    """Redo journal at *base* (absolute, word-aligned bus address).

    *capacity* bounds the records of one logical transaction; the
    window occupies ``(HDR_WORDS + 2 * capacity)`` EEPROM words.
    """

    def __init__(self, base: int, capacity: int = 8) -> None:
        if base % 4:
            raise ValueError(f"journal base {base:#x} not word aligned")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.base = base
        self.capacity = capacity

    @property
    def size_bytes(self) -> int:
        return 4 * (HDR_WORDS + 2 * self.capacity)

    def _record_address(self, index: int) -> int:
        return self.base + 4 * (HDR_WORDS + 2 * index)

    # -- firmware side ---------------------------------------------------

    def update_script(self, seq: int, writes: typing.Sequence[
            typing.Tuple[int, int]]) -> typing.List[Transaction]:
        """One journaled update as an ordered bus-write script.

        *writes* is the logical transaction: ``(address, value)`` home
        writes that must commit all-or-nothing.  The script performs
        the full discipline — records, header, commit, home writes,
        clear — and is safe to tear between (or during) any two items
        when driven by an in-order master.
        """
        if not 1 <= len(writes) <= self.capacity:
            raise ValueError(
                f"{len(writes)} writes; journal capacity "
                f"{self.capacity}")
        if not 0 <= seq <= 0xFFFF:
            raise ValueError(f"seq must fit 16 bits, got {seq}")
        for address, value in writes:
            if address % 4:
                raise ValueError(
                    f"journaled write to {address:#x} not word aligned")
            if self._overlaps_window(address):
                raise ValueError(
                    f"home write {address:#x} inside the journal window")
        script = []
        for index, (address, value) in enumerate(writes):
            slot = self._record_address(index)
            script.append(data_write(slot, [address & _WORD_MASK]))
            script.append(data_write(slot + 4, [value & _WORD_MASK]))
        script.append(data_write(
            self.base, [((seq & 0xFFFF) << 16) | len(writes)]))
        script.append(data_write(
            self.base + 4, [_frame_checksum(seq, writes)]))
        for address, value in writes:
            script.append(data_write(address, [value & _WORD_MASK]))
        script.append(data_write(self.base + 4, [0]))
        return script

    def _overlaps_window(self, address: int) -> bool:
        return self.base <= address < self.base + self.size_bytes

    # -- boot side -------------------------------------------------------

    def decode(self, read_word: typing.Callable[[int], int]
               ) -> JournalState:
        """Parse the journal window through *read_word* (an absolute
        word reader, e.g. a back-door peek over the EEPROM image).

        A frame is *committed* only when COMMIT is nonzero **and**
        matches the checksum of the header and records it promises —
        anything else (torn mid-record, stale garbage) reads as "no
        committed frame".
        """
        header = read_word(self.base)
        commit = read_word(self.base + 4)
        count = header & 0xFFFF
        seq = (header >> 16) & 0xFFFF
        if commit == 0 or count == 0 or count > self.capacity:
            return JournalState(False, seq, (), commit)
        records = []
        for index in range(count):
            slot = self._record_address(index)
            records.append((read_word(slot), read_word(slot + 4)))
        records = tuple(records)
        committed = commit == _frame_checksum(seq, records)
        return JournalState(committed, seq,
                            records if committed else (), commit)

    def recover(self, read_word: typing.Callable[[int], int],
                write_word: typing.Callable[[int, int], None]
                ) -> JournalState:
        """Back-door recovery: replay a committed frame, clear it.

        Idempotent — recovering an already-recovered (or empty)
        journal is a no-op, which is what makes a tear during recovery
        itself survivable.
        """
        state = self.decode(read_word)
        if state.committed:
            for address, value in state.records:
                write_word(address, value)
            write_word(self.base + 4, 0)
        return state

    def recovery_script(self, state: JournalState
                        ) -> typing.List[Transaction]:
        """The bus traffic of one boot-time recovery pass.

        The firmware always reads the header and commit word; with a
        committed frame (*state* from :meth:`decode` on the same
        image) it also reads the records, replays the home writes and
        clears the commit word.  Running this on a cold-booted
        platform prices the recovery overhead in cycles and energy.
        """
        script: typing.List[Transaction] = [
            data_read(self.base), data_read(self.base + 4)]
        if not state.committed:
            return script
        for index in range(len(state.records)):
            slot = self._record_address(index)
            script.append(data_read(slot))
            script.append(data_read(slot + 4))
        for address, value in state.records:
            script.append(data_write(address, [value & _WORD_MASK]))
        script.append(data_write(self.base + 4, [0]))
        return script
