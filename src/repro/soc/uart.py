"""UART peripheral of the Figure-1 smart card platform.

Register map (word offsets):

= =========== ==============================================
0 ``DATA``    write: enqueue TX byte; read: dequeue RX byte
1 ``STATUS``  bit0 TX_EMPTY, bit1 RX_AVAIL, bit2 TX_FULL,
              bit3 RX_OVERRUN (sticky until STATUS is read)
2 ``CTRL``    bit0 enable, bit1 rx_irq_enable
3 ``BAUD``    clock divider (cycles per byte time)
= =========== ==============================================

Transmission is modelled at byte granularity: a byte leaves the TX
FIFO every ``BAUD`` ticks.  The wire side (a test bench, or the T=1
link layer's :class:`~repro.link.T1Host`) injects received bytes with
:meth:`receive_byte`; completed transmissions land in
:attr:`transmitted`.

Reception is gated the way the silicon is: the RX FIFO is bounded at
``FIFO_DEPTH`` (a byte arriving into a full FIFO is dropped and sets
the sticky ``RX_OVERRUN`` status bit), a DPM-frozen receiver has no
sampling clock — the byte is lost on the wire, though the line edge
still counts as wake-worthy activity for the power state machine —
and a receiver that is merely not yet enabled latches the byte for
later without burning reception energy or raising the RX interrupt.
"""

from __future__ import annotations

import collections
import typing

from .peripheral import Peripheral

DATA, STATUS, CTRL, BAUD = range(4)

STATUS_TX_EMPTY = 1 << 0
STATUS_RX_AVAIL = 1 << 1
STATUS_TX_FULL = 1 << 2
STATUS_RX_OVERRUN = 1 << 3

CTRL_ENABLE = 1 << 0
CTRL_RX_IRQ = 1 << 1

FIFO_DEPTH = 8


class Uart(Peripheral):
    """Byte-level UART with TX/RX FIFOs and an interrupt line."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "byte_transmitted": 18.0,   # pad driver + shift register
        "byte_received": 12.0,
        "idle_cycle": 0.02,
    })

    def __init__(self, base_address: int, name: str = "uart",
                 irq_callback: typing.Optional[
                     typing.Callable[[], None]] = None) -> None:
        super().__init__(base_address, 4, name)
        self.tx_fifo: typing.Deque[int] = collections.deque()
        self.rx_fifo: typing.Deque[int] = collections.deque()
        self.transmitted: typing.List[int] = []
        self.irq_callback = irq_callback
        self._tx_countdown = 0
        self._rx_overrun = False
        self.rx_overruns = 0
        self.rx_dropped_gated = 0
        self.registers[BAUD] = 16
        self.on_read(DATA, self._read_data)
        self.on_read(STATUS, self._read_status)
        self.on_write(DATA, self._write_data)

    # -- register behaviour ---------------------------------------------

    def _read_data(self) -> int:
        if self.rx_fifo:
            return self.rx_fifo.popleft()
        return 0

    def _read_status(self) -> int:
        status = 0
        if not self.tx_fifo:
            status |= STATUS_TX_EMPTY
        if self.rx_fifo:
            status |= STATUS_RX_AVAIL
        if len(self.tx_fifo) >= FIFO_DEPTH:
            status |= STATUS_TX_FULL
        if self._rx_overrun:
            status |= STATUS_RX_OVERRUN
            self._rx_overrun = False
        return status

    def _write_data(self, value: int) -> None:
        if len(self.tx_fifo) < FIFO_DEPTH:
            self.tx_fifo.append(value & 0xFF)

    # -- behaviour over time ------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self.registers[CTRL] & CTRL_ENABLE)

    @property
    def busy(self) -> bool:
        """True while bytes are queued in either direction."""
        return bool(self.tx_fifo or self.rx_fifo)

    def tick(self) -> None:
        if not self.enabled or self._dpm_frozen():
            return
        self.book("idle_cycle")
        if self.tx_fifo:
            if self._tx_countdown == 0:
                self._tx_countdown = max(self.registers[BAUD], 1)
            self._tx_countdown -= 1
            if self._tx_countdown == 0:
                self.transmitted.append(self.tx_fifo.popleft())
                self.book("byte_transmitted")

    def receive_byte(self, value: int) -> None:
        """Wire side: a byte arrives at the RX pad."""
        if self._dpm_frozen():
            # No sampling clock — the byte is lost on the wire, but the
            # line edge is wake-worthy activity for the governor.
            self.rx_dropped_gated += 1
            if self._psm is not None:
                self._psm.notify_activity()
            return
        if len(self.rx_fifo) >= FIFO_DEPTH:
            self._rx_overrun = True
            self.rx_overruns += 1
            if self.enabled:
                # the shift register still clocked the byte in before
                # discovering there was nowhere to put it
                self.book("byte_received")
            return
        self.rx_fifo.append(value & 0xFF)
        if not self.enabled:
            # latched for later (benches queue bytes before firmware
            # enables the UART) but no reception energy, no IRQ
            return
        self.book("byte_received")
        if self._psm is not None:
            self._psm.notify_activity()
        if (self.registers[CTRL] & CTRL_RX_IRQ
                and self.irq_callback is not None):
            self.irq_callback()
