"""Interrupt controller of the Figure-1 platform.

A simple level-latched controller with eight lines.  Register map
(word offsets): 0 ``PENDING`` (read: latched lines; write: W1C
acknowledge), 1 ``ENABLE`` (per-line mask).  Peripherals raise lines
through :meth:`raise_irq`; the CPU (or a test) observes
:meth:`active`.
"""

from __future__ import annotations

from .peripheral import Peripheral

PENDING, ENABLE = range(2)

NUM_LINES = 8

#: conventional line assignment on the platform
LINE_TIMER0 = 0
LINE_TIMER1 = 1
LINE_UART = 2
LINE_RNG = 3


class InterruptController(Peripheral):
    """Eight-line latched interrupt controller with W1C acknowledge."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "irq_latched": 0.9,
    })

    def __init__(self, base_address: int, name: str = "intc") -> None:
        super().__init__(base_address, 2, name)
        self.total_raised = 0
        self._latched = 0
        self.on_read(PENDING, lambda: self._latched)
        self.on_write(PENDING, self._acknowledge)

    def raise_irq(self, line: int) -> None:
        """Latch interrupt *line* (0..7)."""
        if not 0 <= line < NUM_LINES:
            raise ValueError(f"interrupt line {line} out of range")
        self._latched |= 1 << line
        self.total_raised += 1
        self.book("irq_latched")

    def _acknowledge(self, value: int) -> None:
        # write-one-to-clear; the latch lives outside the register
        # file because the raw write lands there before this hook runs
        self._latched &= ~value

    @property
    def pending_mask(self) -> int:
        return self._latched

    @property
    def enable_mask(self) -> int:
        return self.registers[ENABLE]

    def active(self) -> bool:
        """True when any enabled line is pending."""
        return bool(self.pending_mask & self.enable_mask)

    def highest_priority(self) -> int:
        """Lowest-numbered active line, or -1 when none."""
        active = self.pending_mask & self.enable_mask
        if not active:
            return -1
        return (active & -active).bit_length() - 1
