"""XTEA crypto coprocessor with optional DMA bus mastering.

The paper's motivation (§1): "Algorithms with high computational
effort, like cryptographic algorithms, are often supported by
dedicated coprocessors.  The chosen HW/SW interface to control these
coprocessors influences both system performance and power consumption."

This module provides that coprocessor so the influence can actually be
measured: an XTEA block cipher engine, controllable in two HW/SW
interface styles:

* **PIO** — the CPU writes key and plaintext into registers, starts
  the engine, polls the status register and reads the ciphertext back
  (many small bus transactions),
* **DMA** — the CPU programs source/destination/length and the
  coprocessor fetches and stores whole blocks itself through an
  arbitrated bus master port (burst traffic, zero CPU involvement).

Register map (word offsets):

====  =========  =================================================
0-3   KEY0..3    128-bit key
4-5   DIN0..1    plaintext block (PIO)
6-7   DOUT0..1   ciphertext block (PIO)
8     CTRL       bit0 START (PIO) / bit1 DMA_START, bit2 DECRYPT
9     STATUS     bit0 BUSY, bit1 DONE
10    SRC        DMA source byte address
11    DST        DMA destination byte address
12    LEN        DMA length in 64-bit blocks
====  =========  =================================================
"""

from __future__ import annotations

import typing

from repro.ec import BusState, data_read, data_write
from repro.ec.interfaces import BusMasterInterface
from repro.kernel import Clock, Module, Simulator

from .peripheral import Peripheral

XTEA_DELTA = 0x9E3779B9
XTEA_ROUNDS = 32
#: engine cycles per block: two Feistel half-rounds per clock
CRYPT_CYCLES = XTEA_ROUNDS // 2

MASK32 = 0xFFFFFFFF

KEY0, KEY1, KEY2, KEY3, DIN0, DIN1, DOUT0, DOUT1, CTRL, STATUS, SRC, \
    DST, LEN = range(13)

CTRL_START = 1 << 0
CTRL_DMA_START = 1 << 1
CTRL_DECRYPT = 1 << 2

STATUS_BUSY = 1 << 0
STATUS_DONE = 1 << 1


def xtea_encrypt(v0: int, v1: int,
                 key: typing.Sequence[int]) -> typing.Tuple[int, int]:
    """Reference XTEA encryption of one 64-bit block."""
    total = 0
    for _ in range(XTEA_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (total + key[total & 3]) & MASK32)) & MASK32
        total = (total + XTEA_DELTA) & MASK32
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (total + key[(total >> 11) & 3]) & MASK32)) & MASK32
    return v0 & MASK32, v1 & MASK32


def xtea_decrypt(v0: int, v1: int,
                 key: typing.Sequence[int]) -> typing.Tuple[int, int]:
    """Reference XTEA decryption of one 64-bit block."""
    total = (XTEA_DELTA * XTEA_ROUNDS) & MASK32
    for _ in range(XTEA_ROUNDS):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (total + key[(total >> 11) & 3]) & MASK32)) & MASK32
        total = (total - XTEA_DELTA) & MASK32
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (total + key[total & 3]) & MASK32)) & MASK32
    return v0 & MASK32, v1 & MASK32


class CryptoCoprocessor(Peripheral):
    """XTEA engine as a bus slave, with an optional DMA master port."""

    ENERGY_COSTS_PJ = dict(Peripheral.ENERGY_COSTS_PJ)
    ENERGY_COSTS_PJ.update({
        "round_pair": 2.8,      # two Feistel half-rounds of datapath
        "block_done": 1.5,
        "dma_descriptor": 0.9,
    })

    def __init__(self, base_address: int, name: str = "crypto") -> None:
        super().__init__(base_address, 13, name=name)
        self._crypt_countdown = 0
        self._dma_state = "idle"
        self._dma_remaining = 0
        self._dma_src = 0
        self._dma_dst = 0
        self._dma_txn = None
        self._dma_block: typing.Optional[typing.List[int]] = None
        self._dma_port: typing.Optional[BusMasterInterface] = None
        self.blocks_processed = 0
        self.on_write(CTRL, self._on_ctrl)
        self.on_read(STATUS, self._status)

    # -- configuration -----------------------------------------------------

    def attach_dma_port(self, port: BusMasterInterface) -> None:
        """Give the engine a bus master port (usually an arbiter port)."""
        self._dma_port = port

    @property
    def key(self) -> typing.List[int]:
        return [self.registers[KEY0 + i] for i in range(4)]

    # -- register behaviour ---------------------------------------------

    def _on_ctrl(self, value: int) -> None:
        if value & CTRL_START:
            self._start_block()
        if value & CTRL_DMA_START:
            self._start_dma()

    def _start_block(self) -> None:
        self._crypt_countdown = CRYPT_CYCLES
        self.registers[STATUS] = STATUS_BUSY

    def _start_dma(self) -> None:
        if self._dma_port is None:
            raise RuntimeError(
                f"{self.name}: DMA started without a master port")
        self._dma_state = "fetch"
        self._dma_remaining = self.registers[LEN]
        self._dma_src = self.registers[SRC]
        self._dma_dst = self.registers[DST]
        self._dma_txn = None
        self.registers[STATUS] = STATUS_BUSY
        self.book("dma_descriptor")

    def _status(self) -> int:
        return self.registers[STATUS]

    # -- engine ------------------------------------------------------------

    def _finish_block(self) -> None:
        v0, v1 = self.registers[DIN0], self.registers[DIN1]
        if self.registers[CTRL] & CTRL_DECRYPT:
            v0, v1 = xtea_decrypt(v0, v1, self.key)
        else:
            v0, v1 = xtea_encrypt(v0, v1, self.key)
        self.registers[DOUT0], self.registers[DOUT1] = v0, v1
        self.registers[STATUS] = STATUS_DONE
        self.blocks_processed += 1
        self.book("block_done")

    @property
    def busy(self) -> bool:
        """True while the engine is crypting or mastering DMA."""
        return self._crypt_countdown > 0 or self.dma_active

    def tick(self) -> None:
        if self._dpm_frozen():
            return
        if self._crypt_countdown > 0:
            self.book("round_pair")
            self._crypt_countdown -= 1
            if self._crypt_countdown == 0:
                self._finish_block()
                if self._dma_state == "crypt":
                    self._dma_state = "store"
        self._dma_tick()

    # -- DMA state machine ----------------------------------------------------

    def _dma_tick(self) -> None:
        if self._dma_state == "idle":
            return
        if self._dma_state == "fetch":
            if self._dma_remaining == 0:
                self._dma_state = "idle"
                self.registers[STATUS] = STATUS_DONE
                return
            if self._dma_txn is None:
                self._dma_txn = data_read(self._dma_src, burst_length=2)
            state = self._dma_port.issue(self._dma_txn)
            if state is BusState.OK:
                self.registers[DIN0] = self._dma_txn.data[0]
                self.registers[DIN1] = self._dma_txn.data[1]
                self._dma_txn = None
                self._dma_state = "crypt"
                self._start_block()
            elif state is BusState.ERROR:
                self._dma_fault()
        elif self._dma_state == "store":
            if self._dma_txn is None:
                self._dma_txn = data_write(
                    self._dma_dst,
                    [self.registers[DOUT0], self.registers[DOUT1]])
            state = self._dma_port.issue(self._dma_txn)
            if state is BusState.OK:
                self._dma_txn = None
                self._dma_src += 8
                self._dma_dst += 8
                self._dma_remaining -= 1
                self._dma_state = "fetch"
            elif state is BusState.ERROR:
                self._dma_fault()
        # "crypt": the engine countdown in tick() advances the state

    def _dma_fault(self) -> None:
        self._dma_state = "idle"
        self._dma_txn = None
        self.registers[STATUS] = STATUS_DONE | (1 << 2)  # error bit

    @property
    def dma_active(self) -> bool:
        return self._dma_state != "idle"


class DmaDriver(Module):
    """Clocks a crypto coprocessor's engine when it is used outside a
    :class:`~repro.soc.smartcard.SmartCardPlatform` (which ticks its
    peripherals itself)."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 coprocessor: CryptoCoprocessor,
                 name: str = "crypto_driver") -> None:
        super().__init__(simulator, name)
        self.coprocessor = coprocessor
        self.method(coprocessor.tick, name="tick",
                    sensitive=[clock.posedge_event], dont_initialize=True)
