"""A tiny two-pass assembler for the MIPS-like core.

The paper generated its bus traces from "an assembly language test
program" executed on the RTL core (§4.1); this assembler plus the ISS
in :mod:`repro.soc.cpu` reproduce that flow.  The accepted syntax is a
practical MIPS subset::

    loop:   addiu $t0, $t0, 1
            lw    $t1, 4($s0)
            bne   $t0, $t1, loop
            sw    $t0, 0($s0)
            halt

Registers use the conventional names ($zero, $at, $v0-$v1, $a0-$a3,
$t0-$t9, $s0-$s7, $k0-$k1, $gp, $sp, $fp, $ra) or $0..$31.
"""

from __future__ import annotations

import re
import typing

REGISTER_NAMES = {
    "$zero": 0, "$at": 1, "$v0": 2, "$v1": 3,
    "$a0": 4, "$a1": 5, "$a2": 6, "$a3": 7,
    "$t0": 8, "$t1": 9, "$t2": 10, "$t3": 11,
    "$t4": 12, "$t5": 13, "$t6": 14, "$t7": 15,
    "$s0": 16, "$s1": 17, "$s2": 18, "$s3": 19,
    "$s4": 20, "$s5": 21, "$s6": 22, "$s7": 23,
    "$t8": 24, "$t9": 25, "$k0": 26, "$k1": 27,
    "$gp": 28, "$sp": 29, "$fp": 30, "$ra": 31,
}
REGISTER_NAMES.update({f"${i}": i for i in range(32)})

# opcode/function encodings (MIPS I where a standard encoding exists)
R_TYPE_FUNCTS = {
    "addu": 0x21, "subu": 0x23, "and": 0x24, "or": 0x25,
    "xor": 0x26, "nor": 0x27, "slt": 0x2A, "sltu": 0x2B,
    "sll": 0x00, "srl": 0x02, "sra": 0x03, "jr": 0x08,
    "jalr": 0x09, "mult": 0x18, "multu": 0x19, "div": 0x1A,
    "divu": 0x1B, "mfhi": 0x10, "mflo": 0x12,
}
I_TYPE_OPCODES = {
    "addiu": 0x09, "slti": 0x0A, "sltiu": 0x0B, "andi": 0x0C,
    "ori": 0x0D, "xori": 0x0E, "lui": 0x0F,
    "lw": 0x23, "lh": 0x21, "lhu": 0x25, "lb": 0x20, "lbu": 0x24,
    "sw": 0x2B, "sh": 0x29, "sb": 0x28,
    "beq": 0x04, "bne": 0x05,
}
J_TYPE_OPCODES = {"j": 0x02, "jal": 0x03}
LOADS_STORES = {"lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb"}
BRANCHES = {"beq", "bne"}

#: BREAK, used as the halt instruction by the ISS
HALT_WORD = 0x0000000D
#: COP0 ERET: return from interrupt handler
ERET_WORD = 0x42000018
#: COP0-space pseudo instructions: enable / disable interrupts
EI_WORD = 0x42000020
DI_WORD = 0x42000021


class AssemblerError(ValueError):
    """Syntax or semantic error in an assembly source."""


def parse_register(token: str) -> int:
    token = token.strip()
    try:
        return REGISTER_NAMES[token]
    except KeyError:
        raise AssemblerError(f"unknown register {token!r}") from None


def parse_immediate(token: str,
                    labels: typing.Mapping[str, int]) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad immediate {token!r}") from None


_MEM_OPERAND = re.compile(r"^(?P<offset>[^()]*)\((?P<base>\$\w+)\)$")


def _strip(line: str) -> str:
    comment = line.find("#")
    if comment >= 0:
        line = line[:comment]
    return line.strip()


def assemble(source: str, origin: int = 0) -> typing.List[int]:
    """Assemble *source* into a list of instruction words.

    *origin* is the load address of the first instruction (used for
    branch/jump target computation).
    """
    # pass 1: labels
    labels: typing.Dict[str, int] = {}
    statements: typing.List[typing.Tuple[str, typing.List[str]]] = []
    for raw in source.splitlines():
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}")
            labels[label] = origin + 4 * len(statements)
            line = line.strip()
        if not line:
            continue
        mnemonic, _, rest = line.partition(" ")
        operands = [op.strip() for op in rest.split(",")] if rest else []
        statements.append((mnemonic.lower(), operands))
    # pass 2: encode
    words = []
    for index, (mnemonic, operands) in enumerate(statements):
        pc = origin + 4 * index
        words.append(_encode(mnemonic, operands, pc, labels))
    return words


def _encode(mnemonic: str, ops: typing.List[str], pc: int,
            labels: typing.Mapping[str, int]) -> int:
    if mnemonic == "halt":
        return HALT_WORD
    if mnemonic == "nop":
        return 0
    if mnemonic == "eret":
        return ERET_WORD
    if mnemonic == "ei":
        return EI_WORD
    if mnemonic == "di":
        return DI_WORD
    if mnemonic in R_TYPE_FUNCTS:
        funct = R_TYPE_FUNCTS[mnemonic]
        if mnemonic == "jr":
            _expect(mnemonic, ops, 1)
            rs = parse_register(ops[0])
            return (rs << 21) | funct
        if mnemonic == "jalr":
            # jalr $rd, $rs (or the 1-operand form with rd = $ra)
            if len(ops) == 1:
                rd, rs = 31, parse_register(ops[0])
            else:
                _expect(mnemonic, ops, 2)
                rd, rs = parse_register(ops[0]), parse_register(ops[1])
            return (rs << 21) | (rd << 11) | funct
        if mnemonic in ("mult", "multu", "div", "divu"):
            _expect(mnemonic, ops, 2)
            rs, rt = parse_register(ops[0]), parse_register(ops[1])
            return (rs << 21) | (rt << 16) | funct
        if mnemonic in ("mfhi", "mflo"):
            _expect(mnemonic, ops, 1)
            rd = parse_register(ops[0])
            return (rd << 11) | funct
        if mnemonic in ("sll", "srl", "sra"):
            _expect(mnemonic, ops, 3)
            rd, rt = parse_register(ops[0]), parse_register(ops[1])
            shamt = parse_immediate(ops[2], labels)
            if not 0 <= shamt < 32:
                raise AssemblerError(f"shift amount {shamt} out of range")
            return (rt << 16) | (rd << 11) | (shamt << 6) | funct
        _expect(mnemonic, ops, 3)
        rd, rs, rt = (parse_register(ops[0]), parse_register(ops[1]),
                      parse_register(ops[2]))
        return (rs << 21) | (rt << 16) | (rd << 11) | funct
    if mnemonic in I_TYPE_OPCODES:
        opcode = I_TYPE_OPCODES[mnemonic]
        if mnemonic in LOADS_STORES:
            _expect(mnemonic, ops, 2)
            rt = parse_register(ops[0])
            match = _MEM_OPERAND.match(ops[1].replace(" ", ""))
            if not match:
                raise AssemblerError(
                    f"bad memory operand {ops[1]!r} for {mnemonic}")
            offset = parse_immediate(match.group("offset") or "0", labels)
            base = parse_register(match.group("base"))
            return (opcode << 26) | (base << 21) | (rt << 16) \
                | (offset & 0xFFFF)
        if mnemonic in BRANCHES:
            _expect(mnemonic, ops, 3)
            rs, rt = parse_register(ops[0]), parse_register(ops[1])
            target = parse_immediate(ops[2], labels)
            delta = (target - (pc + 4)) // 4
            if not -(1 << 15) <= delta < (1 << 15):
                raise AssemblerError("branch target out of range")
            return (opcode << 26) | (rs << 21) | (rt << 16) \
                | (delta & 0xFFFF)
        if mnemonic == "lui":
            _expect(mnemonic, ops, 2)
            rt = parse_register(ops[0])
            imm = parse_immediate(ops[1], labels)
            return (opcode << 26) | (rt << 16) | (imm & 0xFFFF)
        _expect(mnemonic, ops, 3)
        rt, rs = parse_register(ops[0]), parse_register(ops[1])
        imm = parse_immediate(ops[2], labels)
        return (opcode << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF)
    if mnemonic in J_TYPE_OPCODES:
        _expect(mnemonic, ops, 1)
        target = parse_immediate(ops[0], labels)
        if target % 4:
            raise AssemblerError("jump target must be word aligned")
        return (J_TYPE_OPCODES[mnemonic] << 26) | ((target >> 2) & 0x3FFFFFF)
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")


def _expect(mnemonic: str, ops: typing.List[str], count: int) -> None:
    if len(ops) != count:
        raise AssemblerError(
            f"{mnemonic} expects {count} operands, got {len(ops)}")


def load_words(text: str) -> typing.List[int]:
    """Convenience: assemble at origin 0 (ROM-resident programs)."""
    return assemble(text, origin=0)
