"""Signal-level ("layer 0") EC bus reference model.

This is an *independent* implementation of the EC protocol, coded the
way the hardware is structured — per-channel engines with wait-state
registers — rather than with the layer-1 transaction queues.  Per cycle
it drives a value for every EC interface wire, steps the synthesised
gate-level address decoder (collecting internal transitions and
glitches) and reports its control-register activity.  Together with the
Diesel estimator it plays the role of the paper's gate-level reference:
the source of power characterisation and the accuracy baseline.

The master-facing interface is the same non-blocking one the TLM
layers offer, so identical scripts drive all three models; the
layer-1-vs-RTL equivalence tests then check that two independent
implementations agree wire-for-wire and cycle-for-cycle.
"""

from __future__ import annotations

import typing

from repro.ec import (BusState, DecodeError, Direction, ErrorCause,
                      MemoryMap, Region, Transaction)
from repro.kernel import Clock, Simulator
from repro.tlm.bus_base import EcBusBase

from .decoder import AddressDecoder, build_address_decoder

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.power.diesel import InterfaceActivityLog
    from repro.power.layer1 import SignalStateRecorder

#: Sequential elements of the bus controller (state registers, wait
#: counters, pipeline registers) — the clock load Diesel charges.
CONTROL_FLOP_COUNT = 64


class _ChannelRegs:
    """Wait/beat registers of one data channel engine."""

    __slots__ = ("active", "wait", "beat", "pending")

    def __init__(self) -> None:
        self.active: typing.Optional[typing.Tuple[Transaction, Region]] = None
        #: wait-state countdown of the current beat; None until the
        #: beat's first cycle samples the slave's current wait states,
        #: mirroring the per-beat pacing of the behavioural slaves
        self.wait: typing.Optional[int] = None
        self.beat = 0
        self.pending: typing.List[typing.Tuple[Transaction, Region]] = []

    def state_word(self) -> int:
        """Pack the register bits for control-activity accounting."""
        return ((int(self.active is not None))
                | (((self.wait or 0) & 0xF) << 1)
                | ((self.beat & 0x7) << 5)
                | ((len(self.pending) & 0x7) << 8))


class RtlBus(EcBusBase):
    """Signal-level EC bus + gate-level bus controller."""

    def __init__(self, simulator: Simulator, clock: Clock,
                 memory_map: MemoryMap, name: str = "ec_bus_rtl",
                 activity_log: typing.Optional["InterfaceActivityLog"] = None,
                 recorder: typing.Optional["SignalStateRecorder"] = None,
                 ) -> None:
        super().__init__(simulator, clock, memory_map, name)
        self.decoder: AddressDecoder = build_address_decoder(memory_map)
        self.activity_log = activity_log
        self.recorder = recorder
        self._sinks: typing.List[typing.Callable[
            [int, typing.Dict[str, int], float], None]] = []
        if recorder is not None:
            self._sinks.append(recorder.record)
        self._biu_queue: typing.List[Transaction] = []
        self._addr_active: typing.Optional[Transaction] = None
        self._addr_region: typing.Optional[Region] = None
        self._addr_wait = 0
        self._addr_is_new = False
        self._read = _ChannelRegs()
        self._write = _ChannelRegs()
        self._values = self._reset_values()
        self._control_state = 0
        self.control_register_toggles = 0
        self.control_flop_count = CONTROL_FLOP_COUNT
        self.method(self._bus_process, name="bus_process",
                    sensitive=[clock.negedge_event], dont_initialize=True)

    def add_signal_sink(self, sink: typing.Callable[
            [int, typing.Dict[str, int], float], None]) -> None:
        """Stream each cycle's committed wire values to *sink* (RTL has
        no per-cycle energy, so the energy argument is always 0.0)."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    @staticmethod
    def _reset_values() -> typing.Dict[str, int]:
        values = {name: 0 for name in (
            "EB_A", "EB_AValid", "EB_Instr", "EB_Write", "EB_Burst",
            "EB_BFirst", "EB_BLast", "EB_BE", "EB_ARdy",
            "EB_RData", "EB_RdVal", "EB_RBErr",
            "EB_WData", "EB_WDRdy", "EB_WBErr")}
        values["EB_ARdy"] = 1
        return values

    def _accept(self, transaction: Transaction) -> None:
        self._biu_queue.append(transaction)

    # ------------------------------------------------------------------
    # the clocked engines
    # ------------------------------------------------------------------

    def _bus_process(self) -> None:
        new = dict(self._values)
        self._address_engine(new)
        self._read_engine(new)
        self._write_engine(new)
        self._commit(new)
        self.cycle += 1

    def _address_engine(self, new: typing.Dict[str, int]) -> None:
        if self._addr_active is None and self._biu_queue:
            transaction = self._biu_queue.pop(0)
            region = self._decode(transaction)
            if region is None:
                # decode/rights failure: bus error, no address tenure
                transaction.fail(self.cycle, ErrorCause.DECODE)
                self.finish_pool.push(transaction)
            else:
                self._addr_active = transaction
                self._addr_region = region
                self._addr_wait = region.slave.wait_states.address
                self._addr_is_new = True
        transaction = self._addr_active
        if transaction is None:
            new["EB_AValid"] = 0
            new["EB_BFirst"] = 0
            new["EB_BLast"] = 0
            new["EB_ARdy"] = 1
            return
        completing = self._addr_wait == 0
        new["EB_A"] = transaction.address
        new["EB_AValid"] = 1
        new["EB_Instr"] = int(transaction.kind.is_instruction)
        new["EB_Write"] = int(transaction.direction is Direction.WRITE)
        new["EB_Burst"] = int(transaction.is_burst)
        new["EB_BE"] = transaction.byte_enables(0)
        new["EB_BFirst"] = int(self._addr_is_new)
        new["EB_BLast"] = int(completing)
        new["EB_ARdy"] = int(completing)
        self._addr_is_new = False
        if completing:
            transaction.address_done_cycle = self.cycle
            channel = (self._read
                       if transaction.direction is Direction.READ
                       else self._write)
            channel.pending.append((transaction, self._addr_region))
            self._addr_active = None
            self._addr_region = None
        else:
            self._addr_wait -= 1

    def _decode(self, transaction: Transaction
                ) -> typing.Optional[Region]:
        """Behavioural decode (rights + window + burst containment).

        The gate-level decoder netlist sees the same address through
        :meth:`_commit` (it is wired to the bus), so its activity is
        collected exactly once per cycle; its functional agreement with
        the behavioural decode is covered by dedicated tests.
        """
        try:
            return self.memory_map.decode_checked(
                transaction.address, transaction.kind,
                transaction.num_bytes)
        except DecodeError:
            return None

    def _read_engine(self, new: typing.Dict[str, int]) -> None:
        channel = self._read
        if channel.active is None and channel.pending:
            transaction, region = channel.pending.pop(0)
            channel.active = (transaction, region)
            channel.beat = 0
            channel.wait = None
        if channel.active is None:
            new["EB_RdVal"] = 0
            new["EB_RBErr"] = 0
            return
        transaction, region = channel.active
        if channel.wait is None:
            channel.wait = region.slave.wait_states.read
        if channel.wait > 0:
            channel.wait -= 1
            new["EB_RdVal"] = 0
            new["EB_RBErr"] = 0
            return
        # beat completes this cycle
        offset = region.slave.offset_of(
            transaction.beat_address(channel.beat))
        response = region.slave.do_read(
            offset, transaction.byte_enables(channel.beat))
        region.slave.reads += 1
        if response.state is BusState.ERROR:
            new["EB_RdVal"] = 0
            new["EB_RBErr"] = 1
            transaction.fail(self.cycle, ErrorCause.SLAVE_ERROR)
            self.finish_pool.push(transaction)
            channel.active = None
            return
        new["EB_RData"] = response.data
        new["EB_RdVal"] = 1
        new["EB_RBErr"] = 0
        transaction.complete_beat(self.cycle, response.data)
        channel.beat += 1
        if transaction.finished:
            self.finish_pool.push(transaction)
            channel.active = None
        else:
            channel.wait = None

    def _write_engine(self, new: typing.Dict[str, int]) -> None:
        channel = self._write
        if channel.active is None and channel.pending:
            transaction, region = channel.pending.pop(0)
            channel.active = (transaction, region)
            channel.beat = 0
            channel.wait = None
        if channel.active is None:
            new["EB_WDRdy"] = 0
            new["EB_WBErr"] = 0
            return
        transaction, region = channel.active
        new["EB_WData"] = transaction.data[channel.beat]
        if channel.wait is None:
            channel.wait = region.slave.wait_states.write
        if channel.wait > 0:
            channel.wait -= 1
            new["EB_WDRdy"] = 0
            new["EB_WBErr"] = 0
            return
        offset = region.slave.offset_of(
            transaction.beat_address(channel.beat))
        response = region.slave.do_write(
            offset, transaction.byte_enables(channel.beat),
            transaction.data[channel.beat])
        region.slave.writes += 1
        if response.state is BusState.ERROR:
            new["EB_WDRdy"] = 0
            new["EB_WBErr"] = 1
            transaction.fail(self.cycle, ErrorCause.SLAVE_ERROR)
            self.finish_pool.push(transaction)
            channel.active = None
            return
        new["EB_WDRdy"] = 1
        new["EB_WBErr"] = 0
        transaction.complete_beat(self.cycle)
        channel.beat += 1
        if transaction.finished:
            self.finish_pool.push(transaction)
            channel.active = None
        else:
            channel.wait = None

    # ------------------------------------------------------------------

    def _evict(self, transaction: Transaction) -> bool:
        """Remove *transaction* from the BIU queue or a channel engine."""
        if transaction in self._biu_queue:
            self._biu_queue.remove(transaction)
            return True
        if self._addr_active is transaction:
            self._addr_active = None
            self._addr_region = None
            self._addr_wait = 0
            return True
        for channel in (self._read, self._write):
            for entry in channel.pending:
                if entry[0] is transaction:
                    channel.pending.remove(entry)
                    return True
            if channel.active is not None \
                    and channel.active[0] is transaction:
                # activation of the next transaction re-samples the
                # wait-state register, so no countdown leaks across
                channel.active = None
                channel.wait = None
                channel.beat = 0
                return True
        return False

    # ------------------------------------------------------------------

    def _commit(self, new: typing.Dict[str, int]) -> None:
        """End of cycle: decoder activity, logs, register accounting."""
        # the decoder's inputs are wired to the address bus: step it
        # with the bus value of this cycle so ripple/glitch activity is
        # collected even though the functional decode already happened
        self.decoder.evaluate(new["EB_A"])
        if self.activity_log is not None:
            self.activity_log.record_cycle(self._values, new)
        for sink in self._sinks:
            sink(self.cycle, new, 0.0)
        state = (self._read.state_word()
                 | (self._write.state_word() << 11)
                 | ((self._addr_wait & 0xF) << 22)
                 | (int(self._addr_active is not None) << 26)
                 | ((len(self._biu_queue) & 0x7) << 27))
        toggled = state ^ self._control_state
        if toggled:
            self.control_register_toggles += toggled.bit_count()
            self._control_state = state
        self._values = new

    @property
    def busy(self) -> bool:
        """True while any transaction is anywhere in the pipe."""
        return bool(self._biu_queue or self._addr_active
                    or self._read.active or self._read.pending
                    or self._write.active or self._write.pending
                    or len(self.finish_pool))

    @property
    def signal_values(self) -> typing.Dict[str, int]:
        """The interface wire values committed for the last cycle."""
        return dict(self._values)
