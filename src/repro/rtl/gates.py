"""Gate and net primitives for the gate-level ("layer 0") model.

The paper's reference is a real gate-level netlist with layout
parasitics, simulated by a gate-level simulator and measured by the
Diesel power estimator.  These primitives substitute for that: nets
carry a capacitance, gates have a unit propagation delay, and the
evaluation engine in :mod:`repro.rtl.netlist` counts *every* output
change — including transient ones — so glitch energy exists, which is
one of the contributions the transaction-level models cannot see.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

#: Default net capacitance (fF): gate output + local wiring.
DEFAULT_NET_CAP_FF = 3.0
#: Extra capacitance per fanout connection (fF).
FANOUT_CAP_FF = 1.2


class GateKind(enum.Enum):
    """Supported combinational cell types."""

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX2 = "mux2"  # inputs: (select, a, b) -> b if select else a


_EVALUATORS: typing.Dict[GateKind, typing.Callable[..., int]] = {
    GateKind.BUF: lambda a: a,
    GateKind.NOT: lambda a: 1 - a,
    GateKind.AND: lambda *ins: int(all(ins)),
    GateKind.OR: lambda *ins: int(any(ins)),
    GateKind.NAND: lambda *ins: 1 - int(all(ins)),
    GateKind.NOR: lambda *ins: 1 - int(any(ins)),
    GateKind.XOR: lambda *ins: sum(ins) & 1,
    GateKind.XNOR: lambda *ins: 1 - (sum(ins) & 1),
    GateKind.MUX2: lambda sel, a, b: b if sel else a,
}

_ARITY: typing.Dict[GateKind, typing.Optional[int]] = {
    GateKind.BUF: 1,
    GateKind.NOT: 1,
    GateKind.AND: None,   # variadic (>= 2)
    GateKind.OR: None,
    GateKind.NAND: None,
    GateKind.NOR: None,
    GateKind.XOR: None,
    GateKind.XNOR: None,
    GateKind.MUX2: 3,
}


@dataclasses.dataclass
class Net:
    """One wire of the netlist."""

    index: int
    name: str
    cap_ff: float = DEFAULT_NET_CAP_FF
    value: int = 0
    #: transitions committed this simulation (includes glitches)
    transitions: int = 0
    rise_count: int = 0
    fall_count: int = 0
    #: transitions that were later reversed within the same cycle
    glitches: int = 0

    def record_change(self, new_value: int) -> None:
        if new_value == self.value:
            return
        if new_value:
            self.rise_count += 1
        else:
            self.fall_count += 1
        self.transitions += 1
        self.value = new_value


@dataclasses.dataclass
class Gate:
    """One combinational cell: output = f(inputs), delay 1 time unit."""

    kind: GateKind
    inputs: typing.Tuple[int, ...]
    output: int
    delay: int = 1

    def __post_init__(self) -> None:
        arity = _ARITY[self.kind]
        if arity is not None and len(self.inputs) != arity:
            raise ValueError(
                f"{self.kind.value} gate needs {arity} inputs, "
                f"got {len(self.inputs)}")
        if arity is None and len(self.inputs) < 2:
            raise ValueError(
                f"{self.kind.value} gate needs at least 2 inputs")
        if self.delay < 1:
            raise ValueError("gate delay must be at least 1")

    def evaluate(self, input_values: typing.Sequence[int]) -> int:
        """Compute the output from the already-extracted input values."""
        return _EVALUATORS[self.kind](*input_values)


@dataclasses.dataclass
class Flop:
    """A D flip-flop: output updates at the clock edge only."""

    data: int      # D input net
    output: int    # Q output net
    clock_pin_cap_ff: float = 1.5
