"""Gate-level ("layer 0") reference model: gate/net primitives, the
glitch-aware netlist evaluator, a synthesis library, the synthesised
address decoder and the independent signal-level EC bus."""

from .bus_rtl import CONTROL_FLOP_COUNT, RtlBus
from .decoder import AddressDecoder, build_address_decoder, required_width
from .gates import Flop, Gate, GateKind, Net
from .netlist import Netlist, NetlistError
from . import library

__all__ = [
    "AddressDecoder",
    "CONTROL_FLOP_COUNT",
    "Flop",
    "Gate",
    "GateKind",
    "Net",
    "Netlist",
    "NetlistError",
    "RtlBus",
    "build_address_decoder",
    "library",
    "required_width",
]
