"""Gate-level address decoder synthesised from a memory map.

The bus controller the paper models "contains the address decoder and
bus control logic" (§3).  This builder turns a behavioural
:class:`~repro.ec.MemoryMap` into a real gate netlist: one range
comparator per slave window plus a miss detector.  Because the
comparators are trees of real gates with unit delays, an address-bus
change ripples through them and produces transient toggles — the glitch
energy that separates the gate-level estimate from the layer-1 model.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ec import ADDRESS_BITS, MemoryMap, Region

from .library import or_tree, range_decoder
from .netlist import Netlist

#: Capacitance of a decoder-internal net (fF) — short local wires.
DECODER_NET_CAP_FF = 1.5
#: Fanout load within the decoder (fF per connection).
DECODER_FANOUT_CAP_FF = 0.6


@dataclasses.dataclass
class AddressDecoder:
    """A synthesised decoder plus the mapping back to regions."""

    netlist: Netlist
    width: int
    select_names: typing.Dict[str, Region]  # output name -> region
    miss_name: str

    def evaluate(self, address: int) -> typing.Optional[Region]:
        """Drive *address* for one cycle; return the selected region.

        Glitch/transition activity accumulates in :attr:`netlist`.
        Returns None on a miss.
        """
        inputs = {f"a{i}": (address >> i) & 1 for i in range(self.width)}
        outputs = self.netlist.step(inputs)
        if outputs[self.miss_name]:
            return None
        for name, region in self.select_names.items():
            if outputs[name]:
                return region
        # can only happen if the netlist disagrees with itself
        raise AssertionError("decoder selected no region and no miss")

    def idle_cycle(self) -> None:
        """One cycle with the address bus unchanged (held value)."""
        self.netlist.step({})


def required_width(memory_map: MemoryMap) -> int:
    """Number of low address bits the comparators must examine."""
    highest = max(region.end - 1 for region in memory_map.regions)
    return max(highest.bit_length(), 1)


def build_address_decoder(memory_map: MemoryMap,
                          address_bits: int = ADDRESS_BITS
                          ) -> AddressDecoder:
    """Synthesise the decoder for *memory_map*.

    Low bits feed per-region range comparators; any high bit outside
    the populated range forces a miss (real decoders AND a "high bits
    zero" term into every select).
    """
    if not memory_map.regions:
        raise ValueError("cannot build a decoder for an empty memory map")
    width = required_width(memory_map)
    if width > address_bits:
        raise ValueError("memory map exceeds the address width")
    netlist = Netlist("address_decoder",
                      default_net_cap_ff=DECODER_NET_CAP_FF,
                      fanout_cap_ff=DECODER_FANOUT_CAP_FF)
    low_bits = [netlist.input(f"a{i}", DECODER_NET_CAP_FF)
                for i in range(width)]
    high_bits = [netlist.input(f"a{i}", DECODER_NET_CAP_FF)
                 for i in range(width, address_bits)]
    if high_bits:
        high_nonzero = or_tree(netlist, high_bits)
        high_zero = netlist.not_gate(high_nonzero)
    else:
        high_zero = None
    select_names: typing.Dict[str, Region] = {}
    selects = []
    for region in memory_map.regions:
        in_window = range_decoder(netlist, low_bits, region.base,
                                  region.end)
        if high_zero is not None:
            in_window = netlist.and_gate(in_window, high_zero)
        output_name = f"sel_{region.name}"
        netlist.set_output(output_name, in_window)
        select_names[output_name] = region
        selects.append(in_window)
    miss = netlist.not_gate(or_tree(netlist, selects))
    netlist.set_output("miss", miss)
    return AddressDecoder(netlist, address_bits, select_names, "miss")
