"""Synthesis helpers: multi-bit building blocks over gate primitives.

The bus controller's address decoder is "synthesised" from these
blocks: per-region range comparators (a >= base AND a < end) feeding
one select line per slave plus a miss line.  The comparator trees are
where address-bus glitches turn into internal switching activity the
transaction-level models never see.
"""

from __future__ import annotations

import typing

from .netlist import Netlist


def equality_comparator(netlist: Netlist, bits: typing.Sequence[int],
                        pattern: int) -> int:
    """Output high when the input bits equal *pattern* (LSB first)."""
    terms = []
    for position, bit in enumerate(bits):
        if pattern & (1 << position):
            terms.append(bit)
        else:
            terms.append(netlist.not_gate(bit))
    return _and_tree(netlist, terms)


def magnitude_ge(netlist: Netlist, bits: typing.Sequence[int],
                 threshold: int) -> int:
    """Output high when the unsigned input value is >= *threshold*.

    Classic ripple comparison from MSB down: at each bit position with
    a 1 in the threshold the input must also be 1 (or a higher bit
    already decided); positions with a 0 give a "decided greater" path.
    """
    if threshold <= 0:
        # always true: OR of a bit with its inverse
        first = bits[0]
        return netlist.or_gate(first, netlist.not_gate(first))
    if threshold >= (1 << len(bits)):
        first = bits[0]
        return netlist.and_gate(first, netlist.not_gate(first))
    # gt: input already strictly greater; eq: equal so far (MSB down)
    gt: typing.Optional[int] = None
    eq: typing.Optional[int] = None
    for position in range(len(bits) - 1, -1, -1):
        bit = bits[position]
        threshold_bit = (threshold >> position) & 1
        if threshold_bit:
            # bit must be 1 to stay equal; cannot become greater here
            new_gt = gt
            new_eq = bit if eq is None else netlist.and_gate(eq, bit)
        else:
            # bit of 1 while threshold has 0 -> strictly greater
            greater_here = bit if eq is None else netlist.and_gate(eq, bit)
            new_gt = greater_here if gt is None \
                else netlist.or_gate(gt, greater_here)
            new_eq = netlist.not_gate(bit) if eq is None \
                else netlist.and_gate(eq, netlist.not_gate(bit))
        gt, eq = new_gt, new_eq
    if gt is None:
        return eq
    return netlist.or_gate(gt, eq)


def magnitude_lt(netlist: Netlist, bits: typing.Sequence[int],
                 threshold: int) -> int:
    """Output high when the unsigned input value is < *threshold*."""
    return netlist.not_gate(magnitude_ge(netlist, bits, threshold))


def range_decoder(netlist: Netlist, bits: typing.Sequence[int],
                  base: int, end: int) -> int:
    """Output high when base <= value < end (one slave window)."""
    if not 0 <= base < end:
        raise ValueError(f"bad window [{base:#x}, {end:#x})")
    ge = magnitude_ge(netlist, bits, base)
    lt = magnitude_lt(netlist, bits, end)
    return netlist.and_gate(ge, lt)


def _and_tree(netlist: Netlist, terms: typing.Sequence[int]) -> int:
    """Balanced AND tree (bounded depth, realistic glitch behaviour)."""
    terms = list(terms)
    if not terms:
        raise ValueError("empty AND tree")
    while len(terms) > 1:
        next_level = []
        for i in range(0, len(terms) - 1, 2):
            next_level.append(netlist.and_gate(terms[i], terms[i + 1]))
        if len(terms) % 2:
            next_level.append(terms[-1])
        terms = next_level
    return terms[0]


def or_tree(netlist: Netlist, terms: typing.Sequence[int]) -> int:
    """Balanced OR tree."""
    terms = list(terms)
    if not terms:
        raise ValueError("empty OR tree")
    while len(terms) > 1:
        next_level = []
        for i in range(0, len(terms) - 1, 2):
            next_level.append(netlist.or_gate(terms[i], terms[i + 1]))
        if len(terms) % 2:
            next_level.append(terms[-1])
        terms = next_level
    return terms[0]


def xor_reduce(netlist: Netlist, terms: typing.Sequence[int]) -> int:
    """Balanced XOR tree (parity)."""
    terms = list(terms)
    if not terms:
        raise ValueError("empty XOR tree")
    while len(terms) > 1:
        next_level = []
        for i in range(0, len(terms) - 1, 2):
            next_level.append(netlist.xor_gate(terms[i], terms[i + 1]))
        if len(terms) % 2:
            next_level.append(terms[-1])
        terms = next_level
    return terms[0]
