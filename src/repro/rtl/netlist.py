"""Netlist container and glitch-aware cycle evaluation.

Each :meth:`Netlist.step` models one clock cycle:

1. flops latch their D inputs (outputs change at time 0),
2. external inputs take their new values (time 0),
3. combinational gates propagate event-driven with unit delays —
   a gate whose inputs change at time *t* updates its output at
   *t + delay*; every output change is committed to the net's activity
   counters, so transient changes that are later reversed in the same
   cycle are counted too and reported as glitches.

The per-net activity (transitions, rises/falls, glitches) is exactly
what the Diesel-style estimator consumes.
"""

from __future__ import annotations

import collections
import typing

from .gates import (DEFAULT_NET_CAP_FF, FANOUT_CAP_FF, Flop, Gate, GateKind,
                    Net)


class NetlistError(ValueError):
    """Structural problem in the netlist (cycles, double drive...)."""


class Netlist:
    """A flat gate-level netlist with activity accounting."""

    def __init__(self, name: str = "netlist",
                 default_net_cap_ff: float = DEFAULT_NET_CAP_FF,
                 fanout_cap_ff: float = FANOUT_CAP_FF) -> None:
        self.name = name
        self.default_net_cap_ff = default_net_cap_ff
        self.fanout_cap_ff = fanout_cap_ff
        self.nets: typing.List[Net] = []
        self.gates: typing.List[Gate] = []
        self.flops: typing.List[Flop] = []
        self._inputs: typing.Dict[str, int] = {}
        self._outputs: typing.Dict[str, int] = {}
        self._driven: typing.Set[int] = set()
        self._fanout: typing.Dict[int, typing.List[int]] = \
            collections.defaultdict(list)  # net -> gate indices
        self.cycles_run = 0
        self._initialized = False

    # -- construction ---------------------------------------------------

    def net(self, name: str,
            cap_ff: typing.Optional[float] = None) -> int:
        """Create a new net; returns its index."""
        index = len(self.nets)
        if cap_ff is None:
            cap_ff = self.default_net_cap_ff
        self.nets.append(Net(index, name, cap_ff))
        return index

    def input(self, name: str,
              cap_ff: typing.Optional[float] = None) -> int:
        """Create an external input net."""
        if name in self._inputs:
            raise NetlistError(f"duplicate input {name!r}")
        index = self.net(name, cap_ff)
        self._inputs[name] = index
        self._driven.add(index)
        return index

    def set_output(self, name: str, net: int) -> None:
        """Expose *net* as a named output."""
        self._outputs[name] = net

    def gate(self, kind: GateKind, inputs: typing.Sequence[int],
             output_name: typing.Optional[str] = None) -> int:
        """Add a gate; returns its (new) output net index."""
        output = self.net(output_name or
                          f"{kind.value}_{len(self.gates)}")
        if output in self._driven:
            raise NetlistError(f"net {output} already driven")
        gate = Gate(kind, tuple(inputs), output)
        gate_index = len(self.gates)
        self.gates.append(gate)
        self._driven.add(output)
        for net in gate.inputs:
            self._fanout[net].append(gate_index)
            self.nets[net].cap_ff += self.fanout_cap_ff
        return output

    def flop(self, data: int, output_name: typing.Optional[str] = None
             ) -> int:
        """Add a D flip-flop fed by net *data*; returns the Q net."""
        output = self.net(output_name or f"ff_{len(self.flops)}")
        if output in self._driven:
            raise NetlistError(f"net {output} already driven")
        self.flops.append(Flop(data, output))
        self._driven.add(output)
        return output

    # convenience wrappers ------------------------------------------------

    def not_gate(self, a: int) -> int:
        return self.gate(GateKind.NOT, [a])

    def and_gate(self, *ins: int) -> int:
        return self.gate(GateKind.AND, ins)

    def or_gate(self, *ins: int) -> int:
        return self.gate(GateKind.OR, ins)

    def xor_gate(self, a: int, b: int) -> int:
        return self.gate(GateKind.XOR, [a, b])

    def xnor_gate(self, a: int, b: int) -> int:
        return self.gate(GateKind.XNOR, [a, b])

    def mux2(self, select: int, a: int, b: int) -> int:
        return self.gate(GateKind.MUX2, [select, a, b])

    # -- evaluation -------------------------------------------------------

    def initialize(self) -> None:
        """Settle the netlist from the all-zero reset state.

        Gates are evaluated without activity accounting until stable —
        the power-up settle a real simulator performs before time 0.
        """
        if self._initialized:
            return
        self._initialized = True
        for _ in range(len(self.gates) + 2):
            changed = False
            for gate in self.gates:
                value = gate.evaluate(
                    [self.nets[i].value for i in gate.inputs])
                if value != self.nets[gate.output].value:
                    self.nets[gate.output].value = value
                    changed = True
            if not changed:
                return
        raise NetlistError(
            f"netlist {self.name!r} did not settle at initialisation")

    def step(self, inputs: typing.Dict[str, int]
             ) -> typing.Dict[str, int]:
        """Simulate one clock cycle; returns the named output values."""
        if not self._initialized:
            self.initialize()
        events: typing.Dict[int, typing.Dict[int, int]] = \
            collections.defaultdict(dict)  # time -> {net: value}
        # 1. flops latch
        for flop in self.flops:
            new_q = self.nets[flop.data].value
            if new_q != self.nets[flop.output].value:
                events[0][flop.output] = new_q
        # 2. external inputs
        for name, value in inputs.items():
            try:
                net = self._inputs[name]
            except KeyError:
                raise NetlistError(f"unknown input {name!r}") from None
            if value not in (0, 1):
                raise NetlistError(
                    f"input {name!r} must be 0 or 1, got {value}")
            if value != self.nets[net].value:
                events[0][net] = value
        # 3. event-driven settle with glitch counting
        values_before = [net.value for net in self.nets]
        toggle_log: typing.Dict[int, int] = collections.defaultdict(int)
        time = 0
        guard = 4 * (len(self.gates) + 4)
        while events:
            if time > guard:
                raise NetlistError(
                    f"netlist {self.name!r} did not settle "
                    f"(combinational loop?)")
            changes = events.pop(time, None)
            if changes is None:
                time += 1
                continue
            touched_gates: typing.Set[int] = set()
            for net, value in changes.items():
                if value != self.nets[net].value:
                    self.nets[net].record_change(value)
                    toggle_log[net] += 1
                    touched_gates.update(self._fanout[net])
            for gate_index in touched_gates:
                gate = self.gates[gate_index]
                new_value = gate.evaluate(
                    [self.nets[i].value for i in gate.inputs])
                when = time + gate.delay
                if new_value != self.nets[gate.output].value:
                    events[when][gate.output] = new_value
                else:
                    # cancel a previously scheduled change if the gate
                    # re-converged to its old value
                    events.get(when, {}).pop(gate.output, None)
            time += 1
        # glitch accounting: a net that toggled more than the net
        # difference between start and end values glitched
        for net_index, toggles in toggle_log.items():
            net = self.nets[net_index]
            net_difference = int(values_before[net_index] != net.value)
            if toggles > net_difference:
                net.glitches += toggles - net_difference
        self.cycles_run += 1
        return {name: self.nets[net].value
                for name, net in self._outputs.items()}

    # -- reporting ---------------------------------------------------------

    @property
    def input_names(self) -> typing.Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def output_names(self) -> typing.Tuple[str, ...]:
        return tuple(self._outputs)

    def output_value(self, name: str) -> int:
        return self.nets[self._outputs[name]].value

    def total_transitions(self) -> int:
        return sum(net.transitions for net in self.nets)

    def total_glitches(self) -> int:
        return sum(net.glitches for net in self.nets)

    def internal_nets(self) -> typing.List[Net]:
        """Nets that are not external inputs (gate/flop outputs)."""
        input_indices = set(self._inputs.values())
        return [net for net in self.nets
                if net.index not in input_indices]

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, nets={len(self.nets)}, "
                f"gates={len(self.gates)}, flops={len(self.flops)})")
