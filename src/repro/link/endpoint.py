"""T=1 card endpoint: link firmware running over the modelled bus.

:class:`T1CardEndpoint` plays the card's link-layer interrupt handler
and dispatcher.  Unlike the host (a bench-side module poking the
UART's pads), the endpoint touches the UART only the way firmware
can: every byte is moved by a real bus transaction — ``DATA`` reads
to drain the RX FIFO, ``DATA`` writes to queue response bytes, a
``CTRL`` write to enable the port at boot — so link traffic is
priced by the active bus model and lands in the peripheral ledgers
like any other SFR access.  (It peeks FIFO levels instead of polling
STATUS, standing in for the RX IRQ / TX-ready lines; the interrupt
callback still fires into the interrupt controller on every received
byte.)

A completed command APDU is decoded by INS and expanded through the
existing :mod:`repro.workloads.apdu` handlers into a bus script —
the same EEPROM/RAM/TRNG traffic those commands always generated —
then answered with a seeded response APDU chained into I-blocks of
at most the negotiated IFS.  Long-running scripts request S(WTX)
waiting-time extensions with an exponentially growing multiplier.

Card-side robustness: its own CWT discards stalled partial frames
and NAKs, duplicate I-blocks are answered by retransmitting the last
response (link-level idempotence — the APDU is not re-executed), and
all retransmissions are bounded by ``card_retx_budget`` so a dead
wire leaves the card quiet, never babbling.
"""

from __future__ import annotations

import collections
import random
import typing

from repro.ec import data_read, data_write
from repro.kernel import Module

from .frame import (Block, FrameDecoder, R_EDC, R_OK, R_OTHER, S_ABORT,
                    S_IFS, S_RESYNC, S_WTX, encode, i_block, r_block,
                    s_block)
from .host import LinkParams

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soc.smartcard import SmartCardPlatform

#: UART FIFO depth mirrored here to avoid an import cycle at runtime
_FIFO_DEPTH = 8


class T1CardEndpoint(Module):
    """Card-side protocol engine + APDU dispatcher."""

    def __init__(self, platform: "SmartCardPlatform",
                 params: typing.Optional[LinkParams] = None,
                 seed: typing.Union[int, str] = 0,
                 name: str = "t1card") -> None:
        super().__init__(platform.simulator, name)
        self.platform = platform
        self.uart = platform.uart
        self.bus = platform.bus
        self.clock = platform.clock
        self.params = params or LinkParams()
        self._script_rng = random.Random(f"{seed}/card/scripts")
        self._resp_rng = random.Random(f"{seed}/card/responses")
        self.decoder = FrameDecoder()

        # derived from the platform's UART, not the global constant:
        # a routed topology may place the UART behind a bridge, and
        # the endpoint must follow wherever the fabric mapped it
        self._uart_base = platform.uart.base_address
        self._data_addr = self._uart_base
        self._ctrl_addr = self._uart_base + 8

        # link state
        self.ifs = self.params.ifs
        self._expected_seq = 0        # host N(S) we accept next
        self._card_seq = 0            # our N(S) for the next I-block
        self._apdu: typing.List[int] = []
        self._last_i_frame: typing.Optional[typing.List[int]] = None
        self._last_i_seq = 0
        self._chunks: typing.List[typing.List[int]] = []
        self._chunk_idx = 0

        # execution state
        self._exec_queue: typing.Deque[
            typing.Tuple[int, typing.Any]] = collections.deque()
        self._gap_left = 0
        self._exec_command: typing.Optional[str] = None
        self._exec_started = 0
        self._wtx_multiplier = 1
        self._next_wtx_check = 0

        # bus + wire machinery
        self._txn = None
        self._txn_role: typing.Optional[str] = None
        self._tx_queue: typing.Deque[int] = collections.deque()
        self._booted = False

        # statistics merged into the session LinkReport
        self.frames_sent = 0
        self.r_blocks_sent = 0
        self.retransmissions = 0
        self.retransmitted_bytes = 0
        self.cwt_timeouts = 0
        self.frames_bad = 0
        self.wtx_requests = 0
        self.resyncs_answered = 0
        self.aborts_answered = 0
        self.commands_executed: typing.List[str] = []
        self.bus_transactions = 0

        self.method(self._on_clock, name="on_clock",
                    sensitive=[self.clock.posedge_event],
                    dont_initialize=True)

    # -- send-side helpers -------------------------------------------------

    def _queue_frame(self, block: Block) -> None:
        frame = encode(block)
        self._tx_queue.extend(frame)
        self.frames_sent += 1
        if block.is_r:
            self.r_blocks_sent += 1
        if block.is_i:
            self._last_i_frame = frame
            self._last_i_seq = block.seq

    def _retransmit_last_i(self) -> bool:
        if (self._last_i_frame is None
                or self.retransmissions >= self.params.card_retx_budget):
            return False   # budget exhausted: go quiet, host escalates
        self._tx_queue.extend(self._last_i_frame)
        self.retransmissions += 1
        self.retransmitted_bytes += len(self._last_i_frame)
        self.frames_sent += 1
        return True

    # -- clock loop --------------------------------------------------------

    def _on_clock(self) -> None:
        cycle = self.clock.cycles
        if self._txn is not None:
            state = self.bus.issue(self._txn)
            if not state.finished:
                return
            txn, role = self._txn, self._txn_role
            self._txn = None
            self._txn_role = None
            self.bus_transactions += 1
            self._completed(txn, role, cycle)
            return
        self._check_cwt(cycle)
        self._maybe_request_wtx(cycle)
        self._start_transaction(cycle)

    def _start_transaction(self, cycle: int) -> None:
        if not self._booted:
            # firmware boot: enable the port + RX interrupt over the bus
            from repro.soc.uart import CTRL_ENABLE, CTRL_RX_IRQ
            self._booted = True
            self._issue(data_write(self._ctrl_addr,
                                   [CTRL_ENABLE | CTRL_RX_IRQ]), "ctrl")
            return
        if self._tx_queue and len(self.uart.tx_fifo) < _FIFO_DEPTH:
            # TX first: responses and acks must flow even under load
            self._issue(data_write(self._data_addr,
                                   [self._tx_queue.popleft()]), "tx")
            return
        if self._exec_queue:
            if self._gap_left > 0:
                self._gap_left -= 1
                return
            _, txn = self._exec_queue.popleft()
            if self._exec_queue:
                self._gap_left = self._exec_queue[0][0]
            self._issue(txn, "exec")
            return
        if self.uart.rx_fifo:
            self._issue(data_read(self._data_addr), "rx")

    def _issue(self, txn, role: str) -> None:
        self._txn = txn
        self._txn_role = role
        state = self.bus.issue(txn)
        if state.finished:
            self._txn = None
            self._txn_role = None
            self.bus_transactions += 1
            self._completed(txn, role, self.clock.cycles)

    def _completed(self, txn, role: str, cycle: int) -> None:
        if role == "rx" and not txn.error:
            self._on_rx_byte(txn.data[0] & 0xFF, cycle)
        elif (role == "exec" and not self._exec_queue
                and self._exec_command is not None):
            self._execution_done()

    # -- card-side timers --------------------------------------------------

    def _check_cwt(self, cycle: int) -> None:
        if (self.decoder.in_frame and not self.uart.rx_fifo
                and cycle - self.decoder.last_byte_cycle
                > self.params.cwt):
            self.decoder.reset()
            self.cwt_timeouts += 1
            self._queue_frame(r_block(self._expected_seq, R_OTHER))

    def _maybe_request_wtx(self, cycle: int) -> None:
        if self._exec_command is None or not self._exec_queue:
            return
        if cycle < self._next_wtx_check:
            return
        self.wtx_requests += 1
        self._queue_frame(s_block(S_WTX, inf=(self._wtx_multiplier,)))
        # exponential backoff: each extension doubles, capped
        granted = self._wtx_multiplier * self.params.bwt
        self._next_wtx_check = cycle + max(granted // 2, 1)
        self._wtx_multiplier = min(self._wtx_multiplier * 2,
                                   self.params.wtx_cap)

    # -- inbound bytes and blocks ------------------------------------------

    def _on_rx_byte(self, byte: int, cycle: int) -> None:
        result = self.decoder.feed(byte, cycle)
        if result is None:
            return
        if not result.ok:
            self.frames_bad += 1
            error = R_EDC if result.error == "lrc" else R_OTHER
            self._queue_frame(r_block(self._expected_seq, error))
            return
        self._handle_block(result.block, cycle)

    def _handle_block(self, block: Block, cycle: int) -> None:
        if block.is_i:
            self._handle_i(block, cycle)
        elif block.is_r:
            self._handle_r(block)
        else:
            self._handle_s(block)

    def _handle_i(self, block: Block, cycle: int) -> None:
        if block.seq != self._expected_seq:
            # duplicate of a block we already accepted: our ack or
            # response got lost — resend it, never re-execute
            if not self._retransmit_last_i():
                self._queue_frame(r_block(self._expected_seq, R_OK))
            return
        self._apdu.extend(block.inf)
        self._expected_seq ^= 1
        # a fresh I-block implicitly acks whatever we sent last; the
        # old response must never be retransmitted past this point
        self._chunks = []
        self._chunk_idx = 0
        self._last_i_frame = None
        if block.more:
            self._queue_frame(r_block(self._expected_seq, R_OK))
            return
        self._dispatch_apdu(cycle)

    def _handle_r(self, block: Block) -> None:
        if self._chunks and block.r_seq != self._last_i_seq:
            # chain ack: the host expects our next sequence number
            self._chunk_idx += 1
            if self._chunk_idx < len(self._chunks):
                self._send_chunk()
            return
        if not self._retransmit_last_i():
            # nothing to resend (e.g. the host's command frame was
            # lost): tell the host which I-block we are waiting for —
            # one R answers one R, so this cannot ping-pong
            self._queue_frame(r_block(self._expected_seq, R_OK))

    def _handle_s(self, block: Block) -> None:
        if block.s_response:
            return   # WTX grant: nothing to do, the host stretched BWT
        if block.s_code == S_RESYNC:
            self._reset_link()
            self.resyncs_answered += 1
            self._queue_frame(s_block(S_RESYNC, response=True))
        elif block.s_code == S_IFS and block.inf:
            self.ifs = max(block.inf[0], 1)
            self._queue_frame(s_block(S_IFS, response=True,
                                      inf=block.inf))
        elif block.s_code == S_ABORT:
            self._reset_link()
            self.aborts_answered += 1
            self._queue_frame(s_block(S_ABORT, response=True))

    def _reset_link(self) -> None:
        self._expected_seq = 0
        self._card_seq = 0
        self._apdu = []
        self._chunks = []
        self._chunk_idx = 0
        self._last_i_frame = None
        self._exec_queue.clear()
        self._exec_command = None
        self.decoder.reset()

    # -- APDU dispatch ------------------------------------------------------

    def _dispatch_apdu(self, cycle: int) -> None:
        from repro.workloads.apdu import COMMAND_BY_INS, command_script
        from repro.tlm.master import normalise_script
        apdu, self._apdu = self._apdu, []
        command = COMMAND_BY_INS.get(apdu[1] if len(apdu) > 1 else -1)
        if command is None:
            # unknown INS (a flipped bit the LRC happened to miss):
            # answer 0x6D00 without touching the bus
            self._respond([0x6D, 0x00])
            return
        self.commands_executed.append(command)
        script = [(gap, self._stage_uart_access(txn)) for gap, txn
                  in normalise_script(command_script(command,
                                                     self._script_rng))]
        self._exec_queue = collections.deque(script)
        self._gap_left = self._exec_queue[0][0] if self._exec_queue else 0
        self._exec_command = command
        self._exec_started = cycle
        self._wtx_multiplier = 1
        self._next_wtx_check = cycle + self.params.wtx_threshold
        if not self._exec_queue:   # degenerate empty script
            self._execution_done()

    def _stage_uart_access(self, txn):
        """Redirect a handler's raw UART accesses to a RAM staging
        buffer.

        The legacy expanders predate the link layer and model their
        response bytes as direct ``DATA`` writes; under T=1 the link
        layer owns the port, so the firmware stages those bytes in RAM
        instead (same transaction kind, size and cost class — only the
        decoded slave changes) and the real response travels in
        I-blocks.
        """
        from repro.soc.smartcard import RAM_BASE
        if not self._uart_base <= txn.address < self._uart_base + 16:
            return txn
        staged = txn.clone()
        staged.address = (RAM_BASE + 0x380
                          + (txn.address - self._uart_base))
        return staged

    def _execution_done(self) -> None:
        from repro.workloads.apdu import response_apdu
        command, self._exec_command = self._exec_command, None
        if command is None:
            return
        self._respond(response_apdu(command, self._resp_rng))

    def _respond(self, payload: typing.List[int]) -> None:
        self._chunks = [payload[i:i + self.ifs]
                        for i in range(0, len(payload), self.ifs)] or [[]]
        self._chunk_idx = 0
        self._send_chunk()

    def _send_chunk(self) -> None:
        chunk = self._chunks[self._chunk_idx]
        more = self._chunk_idx + 1 < len(self._chunks)
        self._queue_frame(i_block(self._card_seq, chunk, more=more))
        self._card_seq ^= 1
