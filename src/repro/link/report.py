"""Per-session link accounting: outcome, retries, attributed energy.

The tentpole quantity is *energy cost of channel noise*: every
recovery episode (retransmission, resync, IFS renegotiation, abort)
opens an energy window bracketed by probe samples of the platform's
composite power model, so the session total partitions into a clean
bucket and per-kind recovery buckets.  The partition must telescope
back to the probe's total delta — :attr:`unaccounted_pj` is the
residual, and the campaign verdict requires it to be ~0 (float
round-off only).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass
class LinkReport:
    """Everything one T=1 session did, counted and priced."""

    outcome: str = "incomplete"   # complete | degraded | hung
    commands_total: int = 0
    commands_completed: int = 0
    commands_shed: int = 0
    cycles: int = 0

    # frame traffic
    frames_sent: int = 0          # host -> card frames
    frames_received: int = 0      # card -> host frames decoded ok
    bad_frames: int = 0           # LRC/length/NAD rejects seen by host
    host_retransmissions: int = 0
    card_retransmissions: int = 0
    retransmitted_bytes: int = 0
    r_blocks_sent: int = 0
    r_blocks_received: int = 0

    # timeouts and the degradation ladder
    cwt_timeouts: int = 0
    bwt_timeouts: int = 0
    resyncs: int = 0
    ifs_renegotiations: int = 0
    ifs_final: int = 0
    wtx_grants: int = 0
    aborts: int = 0
    session_retries: int = 0
    retry_budget: int = 0

    # energy attribution (probe deltas, pJ)
    total_energy_pj: float = 0.0
    clean_energy_pj: float = 0.0
    recovery_energy_pj: typing.Dict[str, float] = dataclasses.field(
        default_factory=dict)
    uart_energy_pj: float = 0.0
    uart_rx_overruns: int = 0
    uart_rx_dropped_gated: int = 0

    # channel statistics
    channel_events: typing.Dict[str, int] = dataclasses.field(
        default_factory=dict)

    @property
    def recovery_total_pj(self) -> float:
        return sum(self.recovery_energy_pj.values())

    @property
    def unaccounted_pj(self) -> float:
        """Residual of the clean/recovery partition vs the probe total."""
        return self.total_energy_pj - (self.clean_energy_pj
                                       + self.recovery_total_pj)

    @property
    def accounted(self) -> bool:
        """Partition closes up to float round-off."""
        tolerance = 1e-6 * max(1.0, abs(self.total_energy_pj))
        return abs(self.unaccounted_pj) <= tolerance

    @property
    def retries_within_budget(self) -> bool:
        return self.session_retries <= self.retry_budget

    @property
    def clean_close(self) -> bool:
        """Session ended in a defined state with closed books."""
        return (self.outcome in ("complete", "degraded")
                and self.accounted and self.retries_within_budget)

    def add_recovery(self, kind: str, energy_pj: float) -> None:
        self.recovery_energy_pj[kind] = \
            self.recovery_energy_pj.get(kind, 0.0) + energy_pj

    def as_payload(self) -> typing.Dict[str, typing.Any]:
        """JSON-friendly image for campaign journals."""
        payload = dataclasses.asdict(self)
        payload["recovery_total_pj"] = self.recovery_total_pj
        payload["unaccounted_pj"] = self.unaccounted_pj
        payload["accounted"] = self.accounted
        payload["retries_within_budget"] = self.retries_within_budget
        payload["clean_close"] = self.clean_close
        return payload
