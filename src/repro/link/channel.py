"""Seeded noisy-channel injector for the T=1 serial link.

The contact (or contactless) interface is the one boundary of a
fielded card that crosses hostile air: bytes get flipped by field
dropouts, dropped by desync, duplicated by reflections, delayed by
re-arbitration.  :class:`NoisyChannel` models that wire as a seeded
per-byte fault process, the link-layer sibling of
:mod:`repro.faults.injectors` — same philosophy: deterministic
``random.Random`` streams, per-mechanism counters, zero effect at
rate 0.

``transmit`` maps one clean byte to a list of ``(extra_delay, byte)``
deliveries, so a caller can schedule the corrupted wire image on the
kernel clock.  The overall *rate* is split across mechanisms:

========== ===== =======================================
mechanism  share effect
========== ===== =======================================
drop       25 %  byte vanishes
flip       35 %  1-2 bit errors (caught by the LRC)
spurious   10 %  a garbage byte arrives alongside
jitter     20 %  delivery delayed by 1..max_jitter
truncate   10 %  burst dropout: this byte and the next
                 few all vanish (kills a frame tail)
========== ===== =======================================
"""

from __future__ import annotations

import random
import typing


class NoisyChannel:
    """Per-byte seeded fault process on the serial wire."""

    MECHANISMS = ("drop", "flip", "spurious", "jitter", "truncate")

    def __init__(self, rate: float,
                 rng: typing.Optional[random.Random] = None,
                 seed: typing.Union[int, str, None] = None,
                 max_jitter: int = 3,
                 truncate_span: typing.Tuple[int, int] = (2, 5)) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"noise rate must be in [0, 1]: {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else random.Random(seed)
        self.max_jitter = max_jitter
        self.truncate_span = truncate_span
        self.counts: typing.Dict[str, int] = {
            name: 0 for name in self.MECHANISMS}
        self.bytes_seen = 0
        self.direction_counts: typing.Dict[str, int] = {}
        self._truncating = 0

    @property
    def events(self) -> int:
        return sum(self.counts.values())

    def transmit(self, byte: int, direction: str = "host_to_card"
                 ) -> typing.List[typing.Tuple[int, int]]:
        """Wire image of *byte*: list of ``(extra_delay_cycles, byte)``.

        An empty list means the byte was lost.  Both directions share
        one seeded stream; *direction* just attributes the event in
        :attr:`direction_counts`.
        """
        self.bytes_seen += 1
        self.direction_counts[direction] = \
            self.direction_counts.get(direction, 0) + 1
        byte &= 0xFF
        if self._truncating:
            self._truncating -= 1
            self.counts["truncate"] += 1
            return []
        if not self.rate:
            return [(0, byte)]
        draw = self.rng.random()
        if draw >= self.rate:
            return [(0, byte)]
        mechanism = draw / self.rate   # uniform in [0, 1)
        if mechanism < 0.25:
            self.counts["drop"] += 1
            return []
        if mechanism < 0.60:
            self.counts["flip"] += 1
            flipped = byte ^ (1 << self.rng.randrange(8))
            if self.rng.random() < 0.25:
                flipped ^= 1 << self.rng.randrange(8)
            return [(0, flipped)]
        if mechanism < 0.70:
            self.counts["spurious"] += 1
            return [(0, byte), (1, self.rng.randrange(256))]
        if mechanism < 0.90:
            self.counts["jitter"] += 1
            return [(self.rng.randint(1, self.max_jitter), byte)]
        self.counts["truncate"] += 1
        low, high = self.truncate_span
        self._truncating = self.rng.randint(low, high)
        return []

    def stats(self) -> typing.Dict[str, int]:
        payload = dict(self.counts)
        payload["bytes"] = self.bytes_seen
        return payload

    def __repr__(self) -> str:
        return (f"NoisyChannel(rate={self.rate}, "
                f"events={self.events}/{self.bytes_seen})")
