"""ISO 7816-3 T=1 block frame codec.

A T=1 frame is ``NAD PCB LEN INF... LRC``: a node-address byte, a
protocol-control byte, the INF length, up to :data:`MAX_INF` INF
bytes, and a longitudinal redundancy check (XOR of every preceding
byte).  The PCB distinguishes the three block families:

* **I-blocks** (bit 7 clear) carry APDU bytes; bit 6 is the send
  sequence number N(S), bit 5 the more-data (chaining) bit M.
* **R-blocks** (``10xxxxxx``) acknowledge or reject: bit 4 is the
  expected sequence number N(R), bits 1..0 the error code
  (0 = ready/ack, 1 = EDC/parity error, 2 = other error).
* **S-blocks** (``11xxxxxx``) manage the link: RESYNC, IFS
  (information-field-size negotiation), ABORT and WTX (waiting-time
  extension); bit 5 marks the response form.

:class:`FrameDecoder` is incremental — one byte per call, matching
the UART's byte-at-a-time delivery — and records the cycle of the
last byte it consumed so callers can police the character waiting
time (CWT) on the kernel clock.
"""

from __future__ import annotations

import dataclasses
import typing

#: maximum INF field length representable in one frame
MAX_INF = 254

#: default node address driven in every frame
DEFAULT_NAD = 0x00

#: prologue = NAD + PCB + LEN
PROLOGUE_LEN = 3

# S-block request codes (low PCB bits)
S_RESYNC = 0x00
S_IFS = 0x01
S_ABORT = 0x02
S_WTX = 0x03

_S_NAMES = {S_RESYNC: "RESYNC", S_IFS: "IFS", S_ABORT: "ABORT",
            S_WTX: "WTX"}

# R-block error codes
R_OK = 0
R_EDC = 1
R_OTHER = 2


def lrc(data: typing.Iterable[int]) -> int:
    """Longitudinal redundancy check: XOR of *data*."""
    check = 0
    for byte in data:
        check ^= byte & 0xFF
    return check


@dataclasses.dataclass(frozen=True)
class Block:
    """One decoded (or to-be-encoded) T=1 block."""

    pcb: int
    inf: typing.Tuple[int, ...] = ()
    nad: int = DEFAULT_NAD

    # -- classification ----------------------------------------------------

    @property
    def kind(self) -> str:
        if not self.pcb & 0x80:
            return "I"
        return "S" if self.pcb & 0x40 else "R"

    @property
    def is_i(self) -> bool:
        return self.kind == "I"

    @property
    def is_r(self) -> bool:
        return self.kind == "R"

    @property
    def is_s(self) -> bool:
        return self.kind == "S"

    # -- I-block fields ----------------------------------------------------

    @property
    def seq(self) -> int:
        """N(S) of an I-block."""
        return (self.pcb >> 6) & 1

    @property
    def more(self) -> bool:
        """Chaining bit M of an I-block."""
        return bool(self.pcb & 0x20)

    # -- R-block fields ----------------------------------------------------

    @property
    def r_seq(self) -> int:
        """N(R): the sequence number the sender expects next."""
        return (self.pcb >> 4) & 1

    @property
    def r_error(self) -> int:
        return self.pcb & 0x03

    # -- S-block fields ----------------------------------------------------

    @property
    def s_code(self) -> int:
        return self.pcb & 0x0F

    @property
    def s_response(self) -> bool:
        return bool(self.pcb & 0x20)

    def __repr__(self) -> str:
        if self.is_i:
            detail = f"I seq={self.seq} more={int(self.more)}"
        elif self.is_r:
            detail = f"R n={self.r_seq} err={self.r_error}"
        else:
            name = _S_NAMES.get(self.s_code, f"?{self.s_code}")
            form = "resp" if self.s_response else "req"
            detail = f"S {name} {form}"
        return f"Block({detail}, inf={len(self.inf)}B)"


def i_block(seq: int, inf: typing.Sequence[int],
            more: bool = False) -> Block:
    """An information block carrying *inf* APDU bytes."""
    if len(inf) > MAX_INF:
        raise ValueError(f"INF too long: {len(inf)} > {MAX_INF}")
    pcb = ((seq & 1) << 6) | (0x20 if more else 0)
    return Block(pcb, tuple(b & 0xFF for b in inf))


def r_block(expected_seq: int, error: int = R_OK) -> Block:
    """A receipt block: ack (error 0) or retransmit request."""
    return Block(0x80 | ((expected_seq & 1) << 4) | (error & 0x03))


def s_block(code: int, response: bool = False,
            inf: typing.Sequence[int] = ()) -> Block:
    """A supervisory block (RESYNC/IFS/ABORT/WTX)."""
    pcb = 0xC0 | (0x20 if response else 0) | (code & 0x0F)
    return Block(pcb, tuple(b & 0xFF for b in inf))


def encode(block: Block) -> typing.List[int]:
    """The wire bytes of *block*: prologue + INF + LRC."""
    body = [block.nad & 0xFF, block.pcb & 0xFF, len(block.inf)]
    body.extend(block.inf)
    body.append(lrc(body))
    return body


@dataclasses.dataclass
class DecodeResult:
    """Outcome of feeding the byte that completed (or killed) a frame."""

    block: typing.Optional[Block] = None
    error: typing.Optional[str] = None   # "lrc", "length", "nad"

    @property
    def ok(self) -> bool:
        return self.block is not None


class FrameDecoder:
    """Incremental T=1 frame decoder with CWT bookkeeping.

    Feed one byte per call; a :class:`DecodeResult` comes back on the
    byte that completes a frame (good or bad), ``None`` mid-frame.
    :attr:`in_frame` and :attr:`last_byte_cycle` let the owner enforce
    the character waiting time between bytes of an open frame.
    """

    def __init__(self, expected_nad: int = DEFAULT_NAD) -> None:
        self.expected_nad = expected_nad
        self._buffer: typing.List[int] = []
        self.last_byte_cycle = 0
        self.frames_ok = 0
        self.frames_bad = 0

    @property
    def in_frame(self) -> bool:
        return bool(self._buffer)

    def reset(self) -> None:
        """Discard any partial frame (CWT expiry, resync)."""
        self._buffer.clear()

    def feed(self, byte: int, cycle: int = 0
             ) -> typing.Optional[DecodeResult]:
        """Consume one wire byte observed at *cycle*."""
        self._buffer.append(byte & 0xFF)
        self.last_byte_cycle = cycle
        buffer = self._buffer
        if len(buffer) < PROLOGUE_LEN:
            return None
        length = buffer[2]
        if length > MAX_INF:
            self._buffer = []
            self.frames_bad += 1
            return DecodeResult(error="length")
        if len(buffer) < PROLOGUE_LEN + length + 1:
            return None
        frame, self._buffer = buffer, []
        if lrc(frame[:-1]) != frame[-1]:
            self.frames_bad += 1
            return DecodeResult(error="lrc")
        if frame[0] != self.expected_nad:
            self.frames_bad += 1
            return DecodeResult(error="nad")
        self.frames_ok += 1
        block = Block(frame[1], tuple(frame[3:-1]), nad=frame[0])
        return DecodeResult(block=block)
