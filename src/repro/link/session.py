"""One-call T=1 session runner.

Builds the host/endpoint pair over a platform, runs the kernel in
bounded slices until the host finishes (or the hard cycle ceiling
trips — a *hang* is a reportable outcome, never an infinite loop),
and returns the finalized :class:`~repro.link.LinkReport`.
"""

from __future__ import annotations

import typing

from .channel import NoisyChannel
from .endpoint import T1CardEndpoint
from .host import LinkParams, T1Host
from .report import LinkReport

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soc.smartcard import SmartCardPlatform

#: kernel slice between host-completion checks
_RUN_SLICE = 2048


def run_link_session(platform: "SmartCardPlatform",
                     commands: typing.Sequence[str],
                     params: typing.Optional[LinkParams] = None,
                     seed: typing.Union[int, str] = 0,
                     channel: typing.Optional[NoisyChannel] = None,
                     energy_probe: typing.Optional[
                         typing.Callable[[], float]] = None,
                     max_cycles: int = 400_000,
                     think_range: typing.Tuple[int, int] = (60, 160),
                     ) -> LinkReport:
    """Run *commands* over T=1 on *platform* and close the books."""
    params = params or LinkParams()
    endpoint = T1CardEndpoint(platform, params=params, seed=seed)
    host = T1Host(platform, commands, params=params, seed=seed,
                  channel=channel, energy_probe=energy_probe,
                  think_range=think_range)
    while not host.done and platform.clock.cycles < max_cycles:
        budget = min(_RUN_SLICE, max_cycles - platform.clock.cycles)
        platform.run_cycles(budget)
    return host.finalize(endpoint)
