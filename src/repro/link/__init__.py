"""ISO 7816-3 T=1 link layer over the modelled UART.

Framed APDU transport between a reader-side :class:`T1Host` and a
card-side :class:`T1CardEndpoint`, with a seeded :class:`NoisyChannel`
fault injector, CWT/BWT timeouts on the kernel clock, bounded
R-block retransmission, a RESYNC → IFS → ABORT degradation ladder,
and per-session energy attribution in :class:`LinkReport`.
"""

from .channel import NoisyChannel
from .endpoint import T1CardEndpoint
from .frame import (Block, DecodeResult, FrameDecoder, MAX_INF, R_EDC,
                    R_OK, R_OTHER, S_ABORT, S_IFS, S_RESYNC, S_WTX,
                    encode, i_block, lrc, r_block, s_block)
from .host import LinkParams, T1Host
from .report import LinkReport
from .session import run_link_session

__all__ = [
    "Block",
    "DecodeResult",
    "FrameDecoder",
    "LinkParams",
    "LinkReport",
    "MAX_INF",
    "NoisyChannel",
    "R_EDC",
    "R_OK",
    "R_OTHER",
    "S_ABORT",
    "S_IFS",
    "S_RESYNC",
    "S_WTX",
    "T1CardEndpoint",
    "T1Host",
    "encode",
    "i_block",
    "lrc",
    "r_block",
    "run_link_session",
    "s_block",
]
