"""T=1 host driver: the reader side of the contact interface.

:class:`T1Host` is a kernel module clocked on the platform's posedge.
It frames command APDUs into I-blocks, paces the wire bytes at the
UART's BAUD interval through an optional :class:`NoisyChannel` into
``Uart.receive_byte`` — the same pad a real reader drives — and
watches ``Uart.transmitted`` for the card's wire bytes coming back.

Robustness lives here:

* **CWT / BWT** — character and block waiting times policed on the
  kernel clock; silence or a stalled frame is a failure, never a hang.
* **Bounded retransmission** — failures are repaired with R-blocks
  and I-frame retransmissions; per-exchange attempts and a
  per-session retry budget bound the spend.
* **Degradation ladder** — when retransmission stops working the host
  escalates: S(RESYNC) to realign sequence numbers, then IFS
  renegotiation halving the block size, then S(ABORT), shedding the
  remaining commands so the session *degrades* instead of failing.
* **WTX** — the card may ask for waiting-time extensions while it
  executes; grants multiply the BWT budget (the card backs off
  exponentially, see :class:`~repro.link.T1CardEndpoint`).

Every recovery episode brackets an energy window over the caller's
probe, so the session's :class:`~repro.link.LinkReport` partitions
total energy into clean and per-kind recovery buckets.
"""

from __future__ import annotations

import collections
import dataclasses
import random
import typing

from repro.kernel import Module

from .channel import NoisyChannel
from .frame import (Block, FrameDecoder, R_EDC, R_OK, R_OTHER, S_ABORT,
                    S_IFS, S_RESYNC, S_WTX, encode, i_block, r_block,
                    s_block)
from .report import LinkReport

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soc.smartcard import SmartCardPlatform


@dataclasses.dataclass(frozen=True)
class LinkParams:
    """Shared T=1 operating point (cycles are platform clock cycles)."""

    ifs: int = 32                 # information field size per I-block
    min_ifs: int = 8              # IFS floor of the degradation ladder
    cwt: int = 96                 # character waiting time
    bwt: int = 1600               # block waiting time
    retries_per_frame: int = 3    # attempts before escalating
    resync_budget: int = 2        # RESYNC rounds before IFS shrink
    session_retry_budget: int = 48
    card_retx_budget: int = 12    # card-side retransmissions
    wtx_threshold: int = 800      # card asks for WTX past this runtime
    wtx_cap: int = 8              # max WTX multiplier


class T1Host(Module):
    """Reader-side protocol engine driving one card session."""

    def __init__(self, platform: "SmartCardPlatform",
                 commands: typing.Sequence[str],
                 params: typing.Optional[LinkParams] = None,
                 seed: typing.Union[int, str] = 0,
                 channel: typing.Optional[NoisyChannel] = None,
                 energy_probe: typing.Optional[
                     typing.Callable[[], float]] = None,
                 think_range: typing.Tuple[int, int] = (60, 160),
                 name: str = "t1host") -> None:
        super().__init__(platform.simulator, name)
        self.platform = platform
        self.uart = platform.uart
        self.clock = platform.clock
        self.params = params or LinkParams()
        self.channel = channel
        self.energy_probe = energy_probe
        self.commands = list(commands)
        self.report = LinkReport(
            commands_total=len(self.commands),
            retry_budget=self.params.session_retry_budget,
            ifs_final=self.params.ifs)
        self._apdu_rng = random.Random(f"{seed}/host/apdu")
        self._gap_rng = random.Random(f"{seed}/host/gaps")
        self._think_range = think_range
        self.decoder = FrameDecoder()
        self.done = False

        # wire machinery
        self._baud = max(self.uart.registers[3], 1)
        self._to_card: typing.Deque[typing.Tuple[int, int]] = \
            collections.deque()
        self._rx_pending: typing.Deque[typing.Tuple[int, int]] = \
            collections.deque()
        self._tx_seen = 0             # consumed length of uart.transmitted
        self._next_tx_cycle = 0
        self._outbox: typing.Deque[typing.Tuple[typing.Tuple, list]] = \
            collections.deque()
        self._current_tx: typing.Optional[
            typing.Tuple[typing.Tuple, typing.Deque[int]]] = None

        # protocol state
        self._cmd_index = 0
        self._current_apdu: typing.List[int] = []
        self._chunks: typing.List[typing.List[int]] = []
        self._chunk_idx = 0
        self._seq_tx = 0              # our N(S)
        self._expected_card_seq = 0   # card N(S) we accept next
        self._resp_final_acked = False
        self._last_i_frame: typing.Optional[typing.List[int]] = None
        self._last_i_seq = 0
        self._state = "think"         # think | await | done
        self._await_kind: typing.Optional[str] = None
        self._think_left = 0
        self._bwt_deadline: typing.Optional[int] = None
        self._bwt_budget = self.params.bwt
        self._ifs = self.params.ifs
        self._frame_attempts = 0
        self._resyncs_done = 0
        self._abort_attempts = 0
        self._pending_ifs = self.params.ifs
        self._escalation: typing.Optional[str] = None

        # energy windows
        self._probe_start = self._probe()
        self._segment_start = self._probe_start
        self._window_kind: typing.Optional[str] = None
        self._window_start = 0.0

        self.method(self._on_clock, name="on_clock",
                    sensitive=[self.clock.posedge_event],
                    dont_initialize=True)

    # -- energy attribution ------------------------------------------------

    def _probe(self) -> float:
        return self.energy_probe() if self.energy_probe else 0.0

    def _open_window(self, kind: str) -> None:
        if self._window_kind is not None:
            return
        now = self._probe()
        self.report.clean_energy_pj += now - self._segment_start
        self._window_kind = kind
        self._window_start = now

    def _close_window(self) -> None:
        if self._window_kind is None:
            return
        now = self._probe()
        self.report.add_recovery(self._window_kind,
                                 now - self._window_start)
        self._window_kind = None
        self._segment_start = now

    def _switch_window(self, kind: str) -> None:
        """Escalation: close the current bucket, open the deeper one."""
        self._close_window()
        self._open_window(kind)

    # -- wire plumbing -----------------------------------------------------

    def _queue_block(self, block: Block, tag: typing.Tuple) -> None:
        frame = encode(block)
        self._outbox.append((tag, frame))
        self.report.frames_sent += 1
        if block.is_r:
            self.report.r_blocks_sent += 1

    def _retransmit_last_i(self) -> None:
        assert self._last_i_frame is not None
        self._outbox.append((("i", self._last_i_seq, True),
                             list(self._last_i_frame)))
        self.report.frames_sent += 1
        self.report.host_retransmissions += 1
        self.report.retransmitted_bytes += len(self._last_i_frame)

    def _pump_wire(self, cycle: int) -> None:
        # card -> host: new UART transmissions through the channel
        transmitted = self.uart.transmitted
        while self._tx_seen < len(transmitted):
            byte = transmitted[self._tx_seen]
            self._tx_seen += 1
            for delay, wire_byte in self._transmit(byte, "card_to_host"):
                self._rx_pending.append((cycle + delay, wire_byte))
        # host -> card: pace the current frame at BAUD
        if self._current_tx is None and self._outbox:
            tag, frame = self._outbox.popleft()
            self._current_tx = (tag, collections.deque(frame))
        if self._current_tx is not None and cycle >= self._next_tx_cycle:
            tag, pending = self._current_tx
            byte = pending.popleft()
            for delay, wire_byte in self._transmit(byte, "host_to_card"):
                self._to_card.append((cycle + delay, wire_byte))
            self._next_tx_cycle = cycle + self._baud
            if not pending:
                self._current_tx = None
                self._frame_sent(tag, cycle)
        # deliveries due this cycle
        while self._to_card and self._to_card[0][0] <= cycle:
            self.uart.receive_byte(self._to_card.popleft()[1])
        while self._rx_pending and self._rx_pending[0][0] <= cycle:
            _, byte = self._rx_pending.popleft()
            result = self.decoder.feed(byte, cycle)
            if result is not None:
                self._handle_decode(result, cycle)
                if self.done:
                    return

    def _transmit(self, byte: int, direction: str
                  ) -> typing.List[typing.Tuple[int, int]]:
        if self.channel is None:
            return [(0, byte)]
        return self.channel.transmit(byte, direction)

    def _frame_sent(self, tag: typing.Tuple, cycle: int) -> None:
        """The last byte of an outbound frame left for the wire."""
        if self._await_kind is None:
            return
        if tag[0] == "i":
            self._bwt_budget = self.params.bwt   # WTX grants expire
        self._bwt_deadline = cycle + self._bwt_budget

    # -- timers ------------------------------------------------------------

    def _check_timers(self, cycle: int) -> None:
        if self._await_kind is None or self.done:
            return
        if self.decoder.in_frame:
            if (not self._rx_pending
                    and cycle - self.decoder.last_byte_cycle
                    > self.params.cwt):
                self.decoder.reset()
                self.report.cwt_timeouts += 1
                self._recover("cwt", cycle)
            return
        if (self._bwt_deadline is not None and cycle > self._bwt_deadline
                and self._current_tx is None and not self._outbox):
            self.report.bwt_timeouts += 1
            self._recover("bwt", cycle)

    # -- the session loop --------------------------------------------------

    def _on_clock(self) -> None:
        if self.done:
            return
        cycle = self.clock.cycles
        self._pump_wire(cycle)
        if self.done:
            return
        self._check_timers(cycle)
        if self.done:
            return
        if self._state == "think":
            if self._think_left > 0:
                self._think_left -= 1
                return
            self._start_next_command(cycle)

    def _start_next_command(self, cycle: int) -> None:
        if self._cmd_index >= len(self.commands):
            self._finish("complete")
            return
        from repro.workloads.apdu import command_apdu  # late: no cycle
        if self.decoder.in_frame:
            self.decoder.reset()
        command = self.commands[self._cmd_index]
        self._current_apdu = command_apdu(command, self._apdu_rng)
        self._begin_transfer(cycle)

    def _begin_transfer(self, cycle: int) -> None:
        """(Re)chunk the current APDU at the current IFS and send."""
        apdu = self._current_apdu
        self._chunks = [apdu[i:i + self._ifs]
                        for i in range(0, len(apdu), self._ifs)] or [[]]
        self._chunk_idx = 0
        self._resp_final_acked = False
        self._state = "await"
        self._send_chunk()

    def _send_chunk(self) -> None:
        chunk = self._chunks[self._chunk_idx]
        more = self._chunk_idx + 1 < len(self._chunks)
        block = i_block(self._seq_tx, chunk, more=more)
        frame = encode(block)
        self._last_i_frame = frame
        self._last_i_seq = self._seq_tx
        self._outbox.append((("i", self._seq_tx, False), list(frame)))
        self.report.frames_sent += 1
        self._await_kind = "chain_ack" if more else "response"
        self._bwt_deadline = None   # armed when the frame leaves

    # -- inbound frames ----------------------------------------------------

    def _handle_decode(self, result, cycle: int) -> None:
        if not result.ok:
            self.report.bad_frames += 1
            if self._await_kind is not None:
                self._recover("edc" if result.error == "lrc" else "other",
                              cycle)
            return
        block = result.block
        self.report.frames_received += 1
        if block.is_i:
            self._handle_i(block, cycle)
        elif block.is_r:
            self.report.r_blocks_received += 1
            self._handle_r(block, cycle)
        else:
            self._handle_s(block, cycle)

    def _handle_i(self, block: Block, cycle: int) -> None:
        if self._await_kind not in ("response", "chain_ack"):
            return   # stray response (e.g. post-abort): drop
        if block.seq != self._expected_card_seq:
            # duplicate: the card resent a block we already took
            self._queue_block(r_block(self._expected_card_seq),
                              ("r", R_OK))
            return
        if not self._resp_final_acked:
            # the first response block implicitly acks our final chunk
            self._seq_tx ^= 1
            self._resp_final_acked = True
        self._expected_card_seq ^= 1
        self._exchange_ok()
        if block.more:
            self._queue_block(r_block(self._expected_card_seq),
                              ("r", R_OK))
            self._await_kind = "response"
            self._bwt_deadline = None
            return
        self._command_done(cycle)

    def _handle_r(self, block: Block, cycle: int) -> None:
        if self._await_kind == "chain_ack":
            if block.r_seq != self._last_i_seq:
                # ack: card expects the other sequence number next
                self._seq_tx ^= 1
                self._exchange_ok()
                self._chunk_idx += 1
                self._send_chunk()
            else:
                self._recover("nack", cycle)
            return
        if self._await_kind == "response" and block.r_seq == self._last_i_seq:
            # the card never took our final chunk: retransmit it
            self._recover("nack", cycle)
            return
        # R while we await an S response (or a stray R): treat as noise
        if self._await_kind in ("resync", "ifs", "abort"):
            self._recover("other", cycle)

    def _handle_s(self, block: Block, cycle: int) -> None:
        if not block.s_response:
            if block.s_code == S_WTX and block.inf:
                # card asks for more time: grant and stretch the BWT
                multiplier = max(block.inf[0], 1)
                self._queue_block(
                    s_block(S_WTX, response=True, inf=block.inf),
                    ("s", S_WTX))
                self._bwt_budget = self.params.bwt * multiplier
                self._bwt_deadline = cycle + self._bwt_budget
                self.report.wtx_grants += 1
            return
        if self._await_kind == "resync" and block.s_code == S_RESYNC:
            self._resync_done(cycle)
        elif self._await_kind == "ifs" and block.s_code == S_IFS:
            self._ifs_done(cycle)
        elif self._await_kind == "abort" and block.s_code == S_ABORT:
            self._finish("degraded")

    # -- success paths -----------------------------------------------------

    def _exchange_ok(self) -> None:
        self._frame_attempts = 0
        self._close_window()

    def _command_done(self, cycle: int) -> None:
        self.report.commands_completed += 1
        self._cmd_index += 1
        self._await_kind = None
        self._bwt_deadline = None
        self._last_i_frame = None
        self._state = "think"
        self._think_left = self._gap_rng.randint(*self._think_range)

    # -- failure handling: the degradation ladder --------------------------

    def _recover(self, cause: str, cycle: int) -> None:
        params = self.params
        if self._await_kind == "abort":
            # terminal rung: bounded resends (not counted against the
            # session budget — the session is already being torn down),
            # then give up cleanly
            self._abort_attempts += 1
            if self._abort_attempts > params.retries_per_frame:
                self._finish("degraded")
            else:
                self._queue_block(s_block(S_ABORT), ("s", S_ABORT))
            return
        self.report.session_retries += 1
        self._frame_attempts += 1
        if self.report.session_retries >= params.session_retry_budget:
            self._start_abort()
            return
        if self._frame_attempts > params.retries_per_frame:
            self._escalate()
            return
        self._open_window("retransmit")
        if self._await_kind in ("resync", "ifs"):
            # retry the supervisory request itself
            code = S_RESYNC if self._await_kind == "resync" else S_IFS
            inf = (self._ifs,) if code == S_IFS else ()
            self._queue_block(s_block(code, inf=inf), ("s", code))
            return
        if cause in ("bwt", "nack") and self._last_i_frame is not None:
            # silence or explicit reject: our frame (or the card's
            # response to it) is gone — send it again
            self._retransmit_last_i()
        else:
            # broken inbound frame: ask the card to resend
            error = R_EDC if cause == "edc" else R_OTHER
            self._queue_block(r_block(self._expected_card_seq, error),
                              ("r", error))
            self._bwt_deadline = None   # re-armed when the R leaves

    def _escalate(self) -> None:
        params = self.params
        self._frame_attempts = 0
        if self._resyncs_done < params.resync_budget:
            self._start_resync()
        elif self._ifs > params.min_ifs:
            self._start_ifs(max(self._ifs // 2, params.min_ifs))
        else:
            self._start_abort()

    def _start_resync(self) -> None:
        self._switch_window("resync")
        self._resyncs_done += 1
        self._escalation = "resync"
        self._await_kind = "resync"
        self._bwt_deadline = None
        self._queue_block(s_block(S_RESYNC), ("s", S_RESYNC))

    def _resync_done(self, cycle: int) -> None:
        self.report.resyncs += 1
        self._seq_tx = 0
        self._expected_card_seq = 0
        self._frame_attempts = 0
        self._exchange_ok()
        self._await_kind = None
        self._begin_transfer(cycle)   # replay the current command

    def _start_ifs(self, new_ifs: int) -> None:
        self._switch_window("ifs")
        self._pending_ifs = new_ifs
        self._escalation = "ifs"
        self._await_kind = "ifs"
        self._bwt_deadline = None
        self._queue_block(s_block(S_IFS, inf=(new_ifs,)), ("s", S_IFS))

    def _ifs_done(self, cycle: int) -> None:
        self._ifs = self._pending_ifs
        self.report.ifs_renegotiations += 1
        self.report.ifs_final = self._ifs
        self._frame_attempts = 0
        self._exchange_ok()
        self._await_kind = None
        self._begin_transfer(cycle)

    def _start_abort(self) -> None:
        self._switch_window("abort")
        self._escalation = "abort"
        self._await_kind = "abort"
        self._abort_attempts = 0
        self._bwt_deadline = None
        self.report.aborts += 1
        self._queue_block(s_block(S_ABORT), ("s", S_ABORT))

    # -- session end -------------------------------------------------------

    def _finish(self, outcome: str) -> None:
        self._close_window()
        self.report.outcome = outcome
        self.report.commands_shed = (len(self.commands)
                                     - self.report.commands_completed)
        self._await_kind = None
        self._state = "done"
        self.done = True

    def finalize(self, endpoint=None) -> LinkReport:
        """Close the books (call once, after the run loop stops)."""
        if not self.done:
            self._close_window()
            self.report.outcome = "hung"
            self.report.commands_shed = (len(self.commands)
                                         - self.report.commands_completed)
            self.done = True
        now = self._probe()
        self.report.clean_energy_pj += now - self._segment_start
        self._segment_start = now
        self.report.total_energy_pj = now - self._probe_start
        self.report.cycles = self.clock.cycles
        self.report.uart_energy_pj = self.uart.energy_pj
        self.report.uart_rx_overruns = self.uart.rx_overruns
        self.report.uart_rx_dropped_gated = self.uart.rx_dropped_gated
        if self.channel is not None:
            self.report.channel_events = self.channel.stats()
        if endpoint is not None:
            self.report.card_retransmissions = endpoint.retransmissions
            self.report.retransmitted_bytes += endpoint.retransmitted_bytes
            self.report.frames_sent += endpoint.frames_sent
            self.report.r_blocks_sent += endpoint.r_blocks_sent
            self.report.cwt_timeouts += endpoint.cwt_timeouts
        return self.report
