"""Precompiled cycle loop for the common clocked activity shape.

Most of this reproduction's simulation time is spent in one pattern:
a single free-running :class:`~repro.kernel.Clock` whose rising edge
triggers the masters/slaves and whose falling edge triggers the bus
process — all plain static-sensitivity ``SC_METHOD`` processes (§3.1).
The generic evaluate/update/notify machinery rediscovers that schedule
from scratch every half-period: heap-pop the tick, run the clock
driver, commit the toggle through the update phase, drain the edge
events, look up the same waiter lists.

:class:`FastLane` compiles the schedule once — per clock edge, the
events that will fire and the ordered, deduplicated process list they
trigger — and then runs a flat cycle loop that keeps every piece of
kernel bookkeeping (simulated time, ``delta_count``, process
``run_count``, signal transition counters, the notification journal,
the timed queue and its live-entry counter) exactly as the generic
loop would have left it.

Equivalence contract: the fast lane bails out to the generic path at
well-defined points — any immediate notification, signal write, delta
notification, timed notification, stop/power-off request, watchdog
attachment, or sensitivity change observed after a process slate runs —
leaving the kernel in a state from which :meth:`Simulator.run` resumes
bit-identically.  Eligibility is re-established (and the plans
recompiled if stale) on every attempt, so dynamic features such as
``next_trigger``, thread processes and watchdogs simply force the
generic path while they are armed.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .signal import BitSignal, Clock
    from .simulator import Simulator

#: FastLane.run() verdicts consumed by Simulator.run()
INELIGIBLE = 0  #: activity is not the clocked shape; use the generic path
FELL_BACK = 1   #: ran zero or more cycles, left pending work for the
#:              generic loop to drain
FINISHED = 2    #: hit the deadline or a stop request; run() should return


class _EdgePlan:
    """Compiled delta-notification plan for one direction of the clock."""

    __slots__ = ("changed", "changed_version", "edge", "edge_version",
                 "names", "procs")

    def __init__(self, changed, edge, names, procs) -> None:
        self.changed = changed
        self.changed_version = (0 if changed is None
                                else changed._waiters_version)
        self.edge = edge
        self.edge_version = 0 if edge is None else edge._waiters_version
        self.names = names
        self.procs = procs


class FastLane:
    """Owns the compiled plans for one simulator's clock."""

    __slots__ = ("_simulator", "_clock", "_plans", "_tick_version")

    def __init__(self, simulator: "Simulator") -> None:
        self._simulator = simulator
        self._clock: typing.Optional["Clock"] = None
        self._plans: typing.Optional[dict] = None
        self._tick_version = -1

    # -- eligibility and compilation -----------------------------------

    def _compile_edge(self, signal: "BitSignal",
                      level: bool) -> typing.Optional[_EdgePlan]:
        events = []
        if signal._changed_event is not None:
            events.append(signal._changed_event)
        edge_event = (signal._posedge_event if level
                      else signal._negedge_event)
        if edge_event is not None:
            events.append(edge_event)
        procs: list = []
        for event in events:
            if event._dynamic_waiters:
                return None
            for process in event._static_waiters:
                if process._dynamic_event is not None:
                    return None
                if process not in procs:
                    procs.append(process)
        names = tuple(event.name for event in events)
        return _EdgePlan(signal._changed_event, edge_event, names,
                         tuple(procs))

    def _plans_valid(self, signal: "BitSignal") -> bool:
        plans = self._plans
        if plans is None:
            return False
        for level in (True, False):
            plan = plans[level]
            edge_event = (signal._posedge_event if level
                          else signal._negedge_event)
            if (plan.changed is not signal._changed_event
                    or plan.edge is not edge_event):
                return False
            if (plan.changed is not None
                    and plan.changed._waiters_version
                    != plan.changed_version):
                return False
            if (plan.edge is not None
                    and plan.edge._waiters_version != plan.edge_version):
                return False
        return True

    def _prepare(self) -> typing.Optional["Clock"]:
        """Re-establish eligibility; (re)compile stale plans.

        Returns the clock when the simulator's remaining activity is
        the fast-lane shape, None otherwise.
        """
        sim = self._simulator
        clocks = sim._clocks
        if len(clocks) != 1 or sim._watchdogs:
            return None
        clock = clocks[0]
        queue = sim._timed_queue
        if len(queue) != 1:
            return None
        entry = queue[0]
        tick = clock._tick_event
        if entry[2] or entry[3] is not tick:
            return None
        for thread in sim._threads:
            if not thread.finished:
                return None
        driver = clock._process
        # run_count 0 means elaboration hasn't run the driver yet;
        # its first execution is the no-toggle arming special case
        if driver.run_count < 1 or driver._dynamic_event is not None:
            return None
        if (len(tick._static_waiters) != 1
                or tick._static_waiters[0] is not driver
                or tick._dynamic_waiters):
            return None
        signal = clock.signal
        if signal._update_pending:
            return None
        if (self._clock is not clock
                or self._tick_version != tick._waiters_version
                or not self._plans_valid(signal)):
            pos = self._compile_edge(signal, True)
            neg = self._compile_edge(signal, False)
            if pos is None or neg is None:
                self._plans = None
                return None
            self._clock = clock
            self._plans = {True: pos, False: neg}
            self._tick_version = tick._waiters_version
        return clock

    # -- the cycle loop -------------------------------------------------

    def run(self, deadline: typing.Optional[int]) -> int:
        clock = self._prepare()
        if clock is None:
            return INELIGIBLE
        sim = self._simulator
        queue = sim._timed_queue
        journal = sim._journal
        seq = sim._seq
        half = clock.half_period
        signal = clock.signal
        tick = clock._tick_event
        tick_name = tick.name
        tick_version = tick._waiters_version
        driver = clock._process
        plan_pos = self._plans[True]
        plan_neg = self._plans[False]
        entry = queue[0]
        level = signal._current
        while True:
            when = entry[0]
            if deadline is not None and when > deadline:
                sim.now = deadline
                return FINISHED
            # timed-notification phase: the tick is the only live entry
            queue.pop()
            sim._timed_live -= 1
            tick._timed_handle = None
            sim.now = when
            delta = sim.delta_count
            journal.append((when, delta, "timed", tick_name))
            # delta cycle 1: the clock driver toggles and re-arms itself
            delta += 1
            sim.delta_count = delta
            driver.run_count += 1
            entry = [when + half, next(seq), False, tick]
            queue.append(entry)  # heap of one: invariant holds trivially
            sim._timed_live += 1
            tick._timed_handle = entry
            level = not level
            # update phase: commit the toggle
            signal._current = level
            signal._next = level
            signal.last_change_time = when
            signal.transition_count += 1
            if level:
                clock._cycles += 1
                plan = plan_pos
                edge_event = signal._posedge_event
            else:
                plan = plan_neg
                edge_event = signal._negedge_event
            # staleness check before the delta-notification phase; on a
            # miss, post the notifications generically and bail out —
            # the generic loop drains them with identical accounting
            if (plan.changed is not signal._changed_event
                    or plan.edge is not edge_event
                    or (plan.changed is not None
                        and plan.changed._waiters_version
                        != plan.changed_version)
                    or (edge_event is not None
                        and edge_event._waiters_version
                        != plan.edge_version)):
                if signal._changed_event is not None:
                    signal._changed_event.notify_delta()
                stale_edge = (signal._posedge_event if level
                              else signal._negedge_event)
                if stale_edge is not None:
                    stale_edge.notify_delta()
                return FELL_BACK
            # delta-notification phase
            for name in plan.names:
                journal.append((when, delta, "delta", name))
            procs = plan.procs
            if procs:
                # delta cycle 2: the edge-triggered processes
                delta += 1
                sim.delta_count = delta
                for process in procs:
                    process.run_count += 1
                    process.func()
                if sim._runnable:
                    # immediate notifications extend the evaluate phase
                    while sim._runnable:
                        runnable, sim._runnable = sim._runnable, []
                        for process in runnable:
                            process._runnable_flag = False
                        for process in runnable:
                            process._execute()
                if sim._update_requests:
                    updates, sim._update_requests = (
                        sim._update_requests, [])
                    for written in updates:
                        written._update()
                if sim._delta_events:
                    sim._drain_delta_events()
                    if sim._stop_requested:
                        return FINISHED
                    return FELL_BACK
                if sim._stop_requested:
                    return FINISHED
                if (len(queue) != 1 or entry[2] or sim._watchdogs
                        or tick._waiters_version != tick_version):
                    return FELL_BACK
