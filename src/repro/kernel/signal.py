"""Signals and clocks.

``Signal`` implements the SystemC ``sc_signal`` primitive channel:
writes are buffered during the evaluate phase and committed in the
update phase, so every reader in a delta cycle sees a consistent value.
``Clock`` generates the two-phase system clock the paper's models hang
off — masters and slaves trigger on the rising edge, the bus process on
the falling edge (§3.1).
"""

from __future__ import annotations

import typing

from .event import Event
from .simulator import Simulator

T = typing.TypeVar("T")


class SignalBase:
    """Interface the simulator's update phase relies on."""

    def _update(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Signal(SignalBase, typing.Generic[T]):
    """A single-driver signal with evaluate/update semantics."""

    __slots__ = ("name", "simulator", "_current", "_next", "_update_pending",
                 "_changed_event", "last_change_time", "transition_count")

    def __init__(self, simulator: Simulator, name: str,
                 initial: T) -> None:
        self.name = name
        self.simulator = simulator
        self._current: T = initial
        self._next: T = initial
        self._update_pending = False
        self._changed_event: typing.Optional[Event] = None
        self.last_change_time: int = -1
        self.transition_count: int = 0
        simulator._register_signal(self)

    # -- value access -----------------------------------------------------

    def read(self) -> T:
        """Current committed value."""
        return self._current

    @property
    def value(self) -> T:
        """Alias for :meth:`read`."""
        return self._current

    def write(self, value: T) -> None:
        """Schedule *value* to become current at the next update phase."""
        self._next = value
        if not self._update_pending:
            self._update_pending = True
            self.simulator._request_update(self)

    def _update(self) -> None:
        self._update_pending = False
        if self._next != self._current:
            self._current = self._next
            self.last_change_time = self.simulator.now
            self.transition_count += 1
            if self._changed_event is not None:
                self._changed_event.notify_delta()

    # -- events -----------------------------------------------------------

    @property
    def changed_event(self) -> Event:
        """Event notified (delta) whenever the committed value changes."""
        if self._changed_event is None:
            self._changed_event = Event(self.simulator,
                                        f"{self.name}.changed")
        return self._changed_event

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._current!r})"


class BitSignal(Signal[bool]):
    """A boolean signal with dedicated edge events."""

    __slots__ = ("_posedge_event", "_negedge_event")

    def __init__(self, simulator: Simulator, name: str,
                 initial: bool = False) -> None:
        super().__init__(simulator, name, initial)
        self._posedge_event: typing.Optional[Event] = None
        self._negedge_event: typing.Optional[Event] = None

    @property
    def posedge_event(self) -> Event:
        """Event notified on a False -> True transition."""
        if self._posedge_event is None:
            self._posedge_event = Event(self.simulator,
                                        f"{self.name}.posedge")
        return self._posedge_event

    @property
    def negedge_event(self) -> Event:
        """Event notified on a True -> False transition."""
        if self._negedge_event is None:
            self._negedge_event = Event(self.simulator,
                                        f"{self.name}.negedge")
        return self._negedge_event

    def _update(self) -> None:
        old = self._current
        super()._update()
        if self._current != old:
            if self._current and self._posedge_event is not None:
                self._posedge_event.notify_delta()
            if not self._current and self._negedge_event is not None:
                self._negedge_event.notify_delta()


class Clock:
    """A free-running two-phase clock.

    The clock toggles itself with timed event notifications; consumers
    use :attr:`posedge_event` / :attr:`negedge_event`, the paper's
    rising-edge (masters, slaves) and falling-edge (bus process) hooks.
    """

    def __init__(self, simulator: Simulator, name: str, period: int,
                 start_high: bool = True) -> None:
        if period <= 0 or period % 2:
            raise ValueError(
                f"clock period must be positive and even, got {period}")
        self.simulator = simulator
        self.name = name
        self.period = period
        self.half_period = period // 2
        self.signal = BitSignal(simulator, f"{name}.sig", initial=start_high)
        self._tick_event = Event(simulator, f"{name}.tick")
        self._cycles = 0
        from .module import Process
        self._process = Process(simulator, self._toggle, f"{name}.driver")
        self._process.sensitive(self._tick_event)
        simulator._register_clock(self)

    def _toggle(self) -> None:
        if self._process.run_count > 1:
            new_value = not self.signal.read()
            self.signal.write(new_value)
            if new_value:
                self._cycles += 1
        self._tick_event.notify_delayed(self.half_period)

    @property
    def posedge_event(self):
        """Rising-edge event (masters and slaves trigger here)."""
        return self.signal.posedge_event

    @property
    def negedge_event(self):
        """Falling-edge event (the bus process triggers here)."""
        return self.signal.negedge_event

    @property
    def cycles(self) -> int:
        """Number of rising edges produced so far."""
        return self._cycles

    def read(self) -> bool:
        """Current clock level."""
        return self.signal.read()

    def __repr__(self) -> str:
        return f"Clock({self.name!r}, period={self.period})"
