"""Events and notification semantics.

Implements the SystemC 2.0 notification model the paper's models rely on:

* *immediate* notification — fires in the current evaluation phase,
* *delta* notification — fires in the next delta cycle (after the update
  phase) without advancing simulated time,
* *timed* notification — fires after a simulated delay.

A pending timed notification is cancelled by a later immediate/delta
notification, mirroring ``sc_event`` override rules.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Simulator
    from .module import Process


class Event:
    """A named synchronisation point processes can wait on.

    Processes become *statically* sensitive to an event via their
    sensitivity list, or *dynamically* sensitive via
    :meth:`repro.kernel.module.Process.next_trigger`.
    """

    __slots__ = ("name", "_simulator", "_static_waiters", "_dynamic_waiters",
                 "_timed_handle", "_waiters_version")

    def __init__(self, simulator: "Simulator", name: str = "event") -> None:
        self.name = name
        self._simulator = simulator
        self._static_waiters: list["Process"] = []
        self._dynamic_waiters: list["Process"] = []
        self._timed_handle: typing.Optional[list] = None
        # bumped whenever the waiter set changes, so the fast lane's
        # compiled process lists know when to recompile (see fastlane.py)
        self._waiters_version = 0
        simulator._register_event(self)

    # -- wiring ---------------------------------------------------------

    def add_static_sensitivity(self, process: "Process") -> None:
        """Make *process* run whenever this event fires (static list)."""
        if process not in self._static_waiters:
            self._static_waiters.append(process)
            self._waiters_version += 1

    def remove_static_sensitivity(self, process: "Process") -> None:
        """Remove *process* from the static sensitivity list."""
        if process in self._static_waiters:
            self._static_waiters.remove(process)
            self._waiters_version += 1

    def add_dynamic_waiter(self, process: "Process") -> None:
        """Register a one-shot dynamic waiter (``next_trigger`` support)."""
        if process not in self._dynamic_waiters:
            self._dynamic_waiters.append(process)
            self._waiters_version += 1

    def remove_dynamic_waiter(self, process: "Process") -> None:
        """Drop a dynamic waiter (e.g. its trigger was re-targeted)."""
        if process in self._dynamic_waiters:
            self._dynamic_waiters.remove(process)
            self._waiters_version += 1

    # -- notification ---------------------------------------------------

    def notify(self) -> None:
        """Immediate notification: trigger waiters in this evaluation phase."""
        self._cancel_timed()
        self._simulator._notify_immediate(self)

    def notify_delta(self) -> None:
        """Delta notification: trigger waiters in the next delta cycle."""
        self._cancel_timed()
        self._simulator._notify_delta(self)

    def notify_delayed(self, delay: int) -> None:
        """Timed notification after *delay* kernel time units.

        A pending timed notification is replaced only if the new one is
        earlier, following ``sc_event`` semantics.
        """
        if delay < 0:
            raise ValueError(f"negative notification delay: {delay}")
        if delay == 0:
            self.notify_delta()
            return
        when = self._simulator.now + delay
        if self._timed_handle is not None:
            if self._timed_handle[0] <= when and not self._timed_handle[2]:
                return  # existing notification is earlier or equal: keep it
            self._cancel_timed()
        self._timed_handle = self._simulator._schedule_event(self, when)

    def cancel(self) -> None:
        """Cancel any pending timed notification."""
        self._cancel_timed()

    def _cancel_timed(self) -> None:
        if self._timed_handle is not None:
            self._timed_handle[2] = True  # tombstone in the timed queue
            self._timed_handle = None
            self._simulator._timed_live -= 1

    # -- firing (called by the simulator) --------------------------------

    def waiters(self) -> list[str]:
        """Names of every process currently sensitive to this event."""
        names = [process.name for process in self._static_waiters]
        names.extend(process.name for process in self._dynamic_waiters
                     if process.name not in names)
        return names

    def _collect_triggered(self) -> list["Process"]:
        """Return processes to run because this event fired."""
        self._timed_handle = None
        triggered = list(self._static_waiters)
        if self._dynamic_waiters:
            self._waiters_version += 1
            dynamic, self._dynamic_waiters = self._dynamic_waiters, []
            for process in dynamic:
                process._dynamic_trigger_fired(self)
                if process not in triggered:
                    triggered.append(process)
        return triggered

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
