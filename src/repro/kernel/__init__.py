"""Discrete-event simulation kernel (SystemC 2.0 subset).

This package substitutes for the SystemC 2.0 kernel the paper's models
were implemented on: evaluate/update delta cycles, ``sc_signal``
semantics, ``SC_METHOD`` processes with static and dynamic sensitivity,
and a two-phase clock.
"""

from .event import Event
from .module import Module, Process
from .signal import BitSignal, Clock, Signal
from .simulator import SimulationError, Simulator
from .supervision import (BlockedWaiter, DeadlockError, JournalEntry,
                          ProgressWatchdog, StallError)
from .thread import ThreadProcess, wait_cycles
from . import time

__all__ = [
    "BitSignal",
    "BlockedWaiter",
    "Clock",
    "DeadlockError",
    "Event",
    "JournalEntry",
    "Module",
    "Process",
    "ProgressWatchdog",
    "Signal",
    "SimulationError",
    "Simulator",
    "StallError",
    "ThreadProcess",
    "time",
    "wait_cycles",
]
