"""Coroutine (SC_THREAD-style) processes.

The paper's models use ``SC_METHOD`` processes exclusively, but
SystemC test benches are usually written as threads that suspend with
``wait(...)``.  :class:`ThreadProcess` provides the same authoring
style on this kernel using Python generators: the process function
``yield``-s what it wants to wait for and is resumed when it fires.

Yieldable values:

* an :class:`~repro.kernel.Event` — resume when the event fires,
* an ``int`` — resume after that many kernel time units,
* ``None`` — resume in the next delta cycle.

Example::

    def stimulus():
        yield clock.posedge_event          # wait one rising edge
        bus_request.notify()
        yield 250                          # wait 250 time units
        yield done_event

    ThreadProcess(simulator, stimulus, "stimulus")
"""

from __future__ import annotations

import typing

from .event import Event
from .module import Process
from .simulator import SimulationError, Simulator

Yieldable = typing.Union[Event, int, None]
ThreadFunction = typing.Callable[[], typing.Generator[Yieldable, None,
                                                      typing.Any]]


class ThreadProcess:
    """A generator-based process resumed by what it yields."""

    def __init__(self, simulator: Simulator, func: ThreadFunction,
                 name: str = "thread") -> None:
        self.simulator = simulator
        self.name = name
        self.finished = False
        self.result: typing.Any = None
        self.resume_count = 0
        #: human-readable description of what the thread last suspended
        #: on — surfaced in :class:`~repro.kernel.DeadlockError` reports
        self.waiting_on: typing.Optional[str] = None
        self.finished_event = Event(simulator, f"{name}.finished")
        self._generator = func()
        self._timer = Event(simulator, f"{name}.timer")
        # the driving engine: a method process whose dynamic
        # sensitivity is re-targeted to whatever the generator yields
        self._engine = Process(simulator, self._step, f"{name}.engine")
        simulator._register_thread(self)

    def _step(self) -> None:
        if self.finished:
            return
        self.resume_count += 1
        try:
            wanted = next(self._generator)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.waiting_on = None
            self.finished_event.notify_delta()
            # park the engine so static/dynamic triggers stop firing
            self._engine.next_trigger(self._timer)
            return
        self._wait_on(wanted)

    def _wait_on(self, wanted: Yieldable) -> None:
        if wanted is None:
            self.waiting_on = "next delta cycle"
            self._timer.cancel()
            self._timer.notify_delta()
            self._engine.next_trigger(self._timer)
        elif isinstance(wanted, Event):
            self.waiting_on = f"event {wanted.name!r}"
            self._engine.next_trigger(wanted)
        elif isinstance(wanted, int):
            if wanted < 0:
                raise SimulationError(
                    f"thread {self.name!r} yielded a negative delay")
            self.waiting_on = (f"timer +{wanted} "
                               f"(t={self.simulator.now + wanted})")
            self._timer.cancel()
            self._timer.notify_delayed(wanted)
            self._engine.next_trigger(self._timer)
        else:
            raise SimulationError(
                f"thread {self.name!r} yielded {wanted!r}; expected an "
                f"Event, an int delay or None")

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"ThreadProcess({self.name!r}, {state})"


def wait_cycles(clock, cycles: int
                ) -> typing.Generator[Yieldable, None, None]:
    """Helper: ``yield from wait_cycles(clock, n)`` inside a thread."""
    for _ in range(cycles):
        yield clock.posedge_event
