"""Simulation time representation.

The kernel keeps time as an integer number of picoseconds.  Integer time
avoids the floating-point drift that plagues long clocked simulations and
matches the resolution model of SystemC 2.0 (``sc_time`` with a fixed
global resolution), which the paper's models were written against.
"""

from __future__ import annotations

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ps(value: float) -> int:
    """Return *value* picoseconds as kernel time units."""
    return int(round(value))


def ns(value: float) -> int:
    """Return *value* nanoseconds as kernel time units."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Return *value* microseconds as kernel time units."""
    return int(round(value * PS_PER_US))


def ms(value: float) -> int:
    """Return *value* milliseconds as kernel time units."""
    return int(round(value * PS_PER_MS))


def seconds(value: float) -> int:
    """Return *value* seconds as kernel time units."""
    return int(round(value * PS_PER_S))


def to_ns(time_ps: int) -> float:
    """Convert kernel time units back to nanoseconds."""
    return time_ps / PS_PER_NS


def to_us(time_ps: int) -> float:
    """Convert kernel time units back to microseconds."""
    return time_ps / PS_PER_US


def to_seconds(time_ps: int) -> float:
    """Convert kernel time units back to seconds."""
    return time_ps / PS_PER_S


def period_from_frequency_hz(frequency_hz: float) -> int:
    """Return the clock period, in kernel time units, of *frequency_hz*.

    Smart card cores of the paper's generation run in the single-digit
    MHz (contact-less) to tens of MHz (contact) range, so periods are
    comfortably representable.

    >>> period_from_frequency_hz(10e6)  # 10 MHz -> 100 ns
    100000
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return int(round(PS_PER_S / frequency_hz))


def format_time(time_ps: int) -> str:
    """Render kernel time in the most natural SI unit.

    >>> format_time(1500)
    '1.500 ns'
    """
    if time_ps == 0:
        return "0 s"
    magnitude = abs(time_ps)
    if magnitude < PS_PER_NS:
        return f"{time_ps} ps"
    if magnitude < PS_PER_US:
        return f"{time_ps / PS_PER_NS:.3f} ns"
    if magnitude < PS_PER_MS:
        return f"{time_ps / PS_PER_US:.3f} us"
    if magnitude < PS_PER_S:
        return f"{time_ps / PS_PER_MS:.3f} ms"
    return f"{time_ps / PS_PER_S:.3f} s"
