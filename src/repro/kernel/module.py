"""Modules and method processes.

The paper implements its bus processes as ``SC_METHOD`` processes —
functions executed to completion each time an event in their sensitivity
list fires (for the bus: the falling edge of the system clock, §3.1).
:class:`Process` models exactly that, including SystemC's *dynamic
sensitivity* (``next_trigger``), which the paper cites (via Caldari et
al.) as the trick that avoids calling processes when not necessary.
"""

from __future__ import annotations

import typing

from .event import Event
from .simulator import Simulator


class Process:
    """An SC_METHOD-style process: runs to completion on each trigger."""

    __slots__ = ("name", "func", "simulator", "dont_initialize",
                 "_static_events", "_dynamic_event", "_runnable_flag",
                 "run_count")

    def __init__(self, simulator: Simulator, func: typing.Callable[[], None],
                 name: str, dont_initialize: bool = False) -> None:
        self.name = name
        self.func = func
        self.simulator = simulator
        self.dont_initialize = dont_initialize
        self._static_events: list[Event] = []
        self._dynamic_event: typing.Optional[Event] = None
        self._runnable_flag = False
        self.run_count = 0
        simulator._register_process(self)

    def sensitive(self, *events: Event) -> "Process":
        """Append *events* to the static sensitivity list."""
        for event in events:
            event.add_static_sensitivity(self)
            self._static_events.append(event)
        return self

    def next_trigger(self, event: Event) -> None:
        """Dynamic sensitivity: wait only on *event* for the next run.

        Until that event fires, static sensitivity is suspended —
        mirroring SystemC's ``next_trigger``.
        """
        if self._dynamic_event is not None:
            self._dynamic_event.remove_dynamic_waiter(self)
        for static in self._static_events:
            static.remove_static_sensitivity(self)
        self._dynamic_event = event
        event.add_dynamic_waiter(self)

    def _dynamic_trigger_fired(self, event: Event) -> None:
        if self._dynamic_event is event:
            self._dynamic_event = None
            for static in self._static_events:
                static.add_static_sensitivity(self)

    def _execute(self) -> None:
        self.run_count += 1
        self.func()

    def __repr__(self) -> str:
        return f"Process({self.name!r}, runs={self.run_count})"


class Module:
    """Base class for hardware modules.

    A module owns ports, signals and processes; subclasses register
    method processes with :meth:`method` in their constructor, exactly
    as an ``SC_MODULE`` does with ``SC_METHOD`` + ``sensitive``.
    """

    def __init__(self, simulator: Simulator, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self._module_processes: list[Process] = []

    def method(self, func: typing.Callable[[], None], *,
               name: typing.Optional[str] = None,
               sensitive: typing.Sequence[Event] = (),
               dont_initialize: bool = False) -> Process:
        """Register *func* as an SC_METHOD-style process of this module."""
        process_name = f"{self.name}.{name or func.__name__}"
        process = Process(self.simulator, func, process_name,
                          dont_initialize=dont_initialize)
        process.sensitive(*sensitive)
        self._module_processes.append(process)
        return process

    @property
    def processes(self) -> tuple[Process, ...]:
        """The processes registered by this module, in creation order."""
        return tuple(self._module_processes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
