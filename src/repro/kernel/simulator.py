"""Discrete-event scheduler implementing the SystemC 2.0 evaluate/update
delta-cycle semantics.

The paper's models are written against SystemC 2.0 (``SC_METHOD``
processes, static sensitivity to clock edges, non-blocking interface
method calls).  This module provides the minimal kernel those models
need, structured as the classic three-phase loop:

1. **evaluate** — run every runnable process once,
2. **update**   — commit primitive-channel (signal) writes,
3. **delta notification** — turn value changes into newly runnable
   processes; if any, repeat from 1 without advancing time, otherwise
   advance to the earliest timed notification.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import typing

from . import fastlane
from .event import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import Process
    from .signal import SignalBase
    from .supervision import (BlockedWaiter, DeadlockError, JournalEntry,
                              ProgressWatchdog)
    from .thread import ThreadProcess


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. running a finished simulator)."""


#: Watchdogs are also polled every this many delta cycles within one
#: time instant, so a delta-cycle livelock (processes immediate-notifying
#: each other forever) still hits the wall-clock budget.
_DELTAS_PER_WATCHDOG_CHECK = 4096


class Simulator:
    """The simulation kernel: owns time, events, signals and processes."""

    def __init__(self, name: str = "sim",
                 journal_capacity: int = 32,
                 fast_lane: bool = True) -> None:
        self.name = name
        self.now: int = 0
        self.delta_count: int = 0
        self._events: list[Event] = []
        self._processes: list["Process"] = []
        self._signals: list["SignalBase"] = []
        self._clocks: list = []
        self._runnable: list["Process"] = []
        self._update_requests: list["SignalBase"] = []
        # ordered list (determinism) paired with a set (O(1) membership)
        self._delta_events: list[Event] = []
        self._delta_events_set: set = set()
        self._timed_queue: list[list] = []  # [when, seq, cancelled, event]
        #: live (non-tombstone) entries in the timed queue, maintained at
        #: every push/pop/cancel so pending_activity() never has to scan
        self._timed_live = 0
        self._seq = itertools.count()
        self._fast_lane_enabled = fast_lane
        self._fast_lane = None
        self._stop_requested = False
        self._started = False
        self._powered_off = False
        self.power_off_reason: typing.Optional[str] = None
        self._power_off_hooks: typing.List[
            typing.Callable[[str], None]] = []
        # ring buffer of the most recent event notifications — the
        # "flight recorder" DeadlockError diagnostics embed.  Raw
        # (time, delta, kind, event-name) tuples: this append sits on
        # the kernel's notification hot path, so the pretty
        # JournalEntry objects are only built in journal_entries()
        self._journal: typing.Deque[tuple] = collections.deque(
            maxlen=journal_capacity)
        self._threads: list["ThreadProcess"] = []
        self._waiter_hooks: list[typing.Callable[
            [], typing.Iterable["BlockedWaiter"]]] = []
        self._watchdogs: list["ProgressWatchdog"] = []
        self._deltas_since_check = 0

    # -- registration (used by Event/Signal/Module constructors) ---------

    def _register_event(self, event: Event) -> None:
        self._events.append(event)

    def _register_process(self, process: "Process") -> None:
        self._processes.append(process)

    def _register_signal(self, signal: "SignalBase") -> None:
        self._signals.append(signal)

    def _register_thread(self, thread: "ThreadProcess") -> None:
        self._threads.append(thread)

    def _register_clock(self, clock) -> None:
        self._clocks.append(clock)

    # -- notification plumbing ------------------------------------------

    def _notify_immediate(self, event: Event) -> None:
        self._journal.append((self.now, self.delta_count, "immediate",
                              event.name))
        for process in event._collect_triggered():
            self._make_runnable(process)

    def _notify_delta(self, event: Event) -> None:
        if event not in self._delta_events_set:
            self._delta_events_set.add(event)
            self._delta_events.append(event)

    def _schedule_event(self, event: Event, when: int) -> list:
        entry = [when, next(self._seq), False, event]
        heapq.heappush(self._timed_queue, entry)
        self._timed_live += 1
        return entry

    def _request_update(self, signal: "SignalBase") -> None:
        self._update_requests.append(signal)

    def _make_runnable(self, process: "Process") -> None:
        if not process._runnable_flag:
            process._runnable_flag = True
            self._runnable.append(process)

    # -- control ---------------------------------------------------------

    def stop(self) -> None:
        """Request the simulation stop at the end of the current delta."""
        self._stop_requested = True

    @property
    def powered_off(self) -> bool:
        """True once :meth:`power_off` has been called."""
        return self._powered_off

    def add_power_off_hook(
            self, hook: typing.Callable[[str], None]) -> None:
        """Register *hook* to run inside :meth:`power_off`.

        Hooks model the few nanoseconds of residual charge a dying
        card still has: enough for combinational state to settle into
        non-volatile side effects (a bus bridge flushing its posted
        write buffer), not enough to clock anything.  A hook must not
        schedule events or advance time — the kernel is already
        latched off when it runs.
        """
        self._power_off_hooks.append(hook)

    def power_off(self, reason: str = "power loss") -> None:
        """Cooperative whole-card power loss.

        Stops the simulation like :meth:`stop`, but latches: any later
        :meth:`run` returns immediately without consuming time.  Models
        a contactless card leaving the reader field — in-flight signal
        updates are abandoned exactly where the current delta left
        them, and only state the testbench explicitly carries over
        (e.g. the EEPROM image) survives into the next simulator.
        Registered power-off hooks run exactly once, on the first
        call (see :meth:`add_power_off_hook`).
        """
        if self._powered_off:
            return
        self.power_off_reason = reason
        self._powered_off = True
        self._stop_requested = True
        for hook in list(self._power_off_hooks):
            hook(reason)

    def initialize(self) -> None:
        """Make every process runnable once, as SystemC elaboration does
        (processes created with ``dont_initialize`` are skipped)."""
        if self._started:
            return
        self._started = True
        for process in self._processes:
            if not process.dont_initialize:
                self._make_runnable(process)

    def _drain_delta_events(self) -> None:
        """Turn pending delta notifications into runnable processes."""
        if self._delta_events:
            events, self._delta_events = self._delta_events, []
            self._delta_events_set.clear()
            for event in events:
                self._journal.append((self.now, self.delta_count,
                                      "delta", event.name))
                for process in event._collect_triggered():
                    self._make_runnable(process)

    def _run_delta(self) -> bool:
        """Run one delta cycle.  Returns True if any process ran."""
        if not self._runnable:
            # delta notifications posted from outside a delta cycle
            # (e.g. test benches priming an event) still need to fire
            self._drain_delta_events()
            if not self._runnable:
                return False
        self.delta_count += 1
        # evaluate phase: immediate notifications extend the current
        # phase, so keep draining until no process is runnable
        while self._runnable:
            runnable, self._runnable = self._runnable, []
            for process in runnable:
                process._runnable_flag = False
            for process in runnable:
                process._execute()
        # update phase
        if self._update_requests:
            updates, self._update_requests = self._update_requests, []
            for signal in updates:
                signal._update()
        # delta notification phase
        self._drain_delta_events()
        return True

    def _advance_time(self) -> bool:
        """Pop the earliest timed notification(s).  Returns False if none."""
        queue = self._timed_queue
        while queue and queue[0][2]:
            heapq.heappop(queue)  # drop cancelled tombstones
        if not queue:
            return False
        when = queue[0][0]
        if when < self.now:
            raise SimulationError(
                f"timed queue went backwards: {when} < {self.now}")
        self.now = when
        while queue and queue[0][0] == when:
            entry = heapq.heappop(queue)
            if entry[2]:
                continue
            self._timed_live -= 1
            event: Event = entry[3]
            self._journal.append((self.now, self.delta_count, "timed",
                                  event.name))
            for process in event._collect_triggered():
                self._make_runnable(process)
        return True

    def run(self, duration: typing.Optional[int] = None) -> int:
        """Run the simulation.

        With *duration* (kernel time units) the kernel returns once
        simulated time would exceed ``start + duration``; without it,
        runs until no activity remains or :meth:`stop` is called.
        Returns the simulated time consumed.

        Raises :class:`~repro.kernel.DeadlockError` if all activity
        drains while blocked waiters remain (unfinished thread
        processes, or anything reported by a waiter hook) — a bounded
        run that merely reaches its deadline does not deadlock-check.
        Attached :class:`~repro.kernel.ProgressWatchdog` instances are
        polled at every time advance (and periodically inside delta
        storms) and raise :class:`~repro.kernel.StallError` when their
        budgets expire.
        """
        start = self.now
        if self._powered_off:
            return 0
        deadline = None if duration is None else start + duration
        self.initialize()
        self._stop_requested = False
        while True:
            while self._run_delta():
                if self._stop_requested:
                    return self.now - start
                if self._watchdogs:
                    self._deltas_since_check += 1
                    if (self._deltas_since_check
                            >= _DELTAS_PER_WATCHDOG_CHECK):
                        self._check_watchdogs()
            if self._stop_requested:
                return self.now - start
            queue = self._timed_queue
            while queue and queue[0][2]:
                heapq.heappop(queue)
            if not queue:
                self._check_deadlock()
                return self.now - start
            if deadline is not None and queue[0][0] > deadline:
                self.now = deadline
                return self.now - start
            if self._fast_lane_enabled:
                status = self._run_fast_lane(deadline)
                if status == fastlane.FINISHED:
                    return self.now - start
                if status == fastlane.FELL_BACK:
                    continue
            self._advance_time()
            if self._watchdogs:
                self._check_watchdogs()

    def _run_fast_lane(self, deadline: typing.Optional[int]) -> int:
        """Attempt the precompiled clocked cycle loop (see fastlane.py)."""
        lane = self._fast_lane
        if lane is None:
            lane = self._fast_lane = fastlane.FastLane(self)
        return lane.run(deadline)

    # -- supervision -------------------------------------------------------

    def add_waiter_hook(self, hook: typing.Callable[
            [], typing.Iterable["BlockedWaiter"]]) -> None:
        """Register a callable reporting blocked waiters for diagnostics.

        Hooks are consulted when a deadlock or stall is being diagnosed;
        each returns an iterable of
        :class:`~repro.kernel.BlockedWaiter` records (empty when its
        owner is not blocked).
        """
        self._waiter_hooks.append(hook)

    def attach_watchdog(self, watchdog: "ProgressWatchdog") -> None:
        """Poll *watchdog* during :meth:`run` until it is detached."""
        watchdog.reset(self)
        self._watchdogs.append(watchdog)

    def detach_watchdog(self, watchdog: "ProgressWatchdog") -> None:
        if watchdog in self._watchdogs:
            self._watchdogs.remove(watchdog)

    def blocked_waiters(self) -> list:
        """Everything currently waiting: unfinished threads + hooks."""
        from .supervision import BlockedWaiter
        blocked = []
        for thread in self._threads:
            if not thread.finished:
                blocked.append(BlockedWaiter(
                    f"thread {thread.name!r}",
                    thread.waiting_on or "first resume",
                    f"resumed {thread.resume_count} times"))
        for hook in self._waiter_hooks:
            blocked.extend(hook())
        return blocked

    def journal_entries(self) -> tuple:
        """The event-notification ring buffer as
        :class:`~repro.kernel.JournalEntry` records, oldest first."""
        from .supervision import JournalEntry
        return tuple(JournalEntry(*entry) for entry in self._journal)

    def diagnose(self, message: str, *, kind: str = "deadlock",
                 exc_class: typing.Optional[type] = None
                 ) -> "DeadlockError":
        """Build a structured supervision error with the live context."""
        from .supervision import DeadlockError
        factory = exc_class or DeadlockError
        return factory(message, kind=kind, now=self.now,
                       delta_count=self.delta_count,
                       blocked=self.blocked_waiters(),
                       journal=self.journal_entries())

    def _check_deadlock(self) -> None:
        blocked = self.blocked_waiters()
        if blocked:
            raise self.diagnose(
                f"deadlock in {self.name!r}: no runnable process and no "
                f"pending event, but {len(blocked)} waiter(s) remain",
                kind="deadlock")

    def _check_watchdogs(self) -> None:
        self._deltas_since_check = 0
        for watchdog in self._watchdogs:
            watchdog.check(self)

    # -- conveniences -----------------------------------------------------

    def event(self, name: str = "event") -> Event:
        """Create a fresh :class:`Event` bound to this kernel."""
        return Event(self, name)

    def pending_activity(self) -> bool:
        """True if any runnable process, delta event or timed event exists."""
        if self._update_requests:
            return True
        if self._runnable or self._delta_events:
            return True
        return self._timed_live > 0

    def __repr__(self) -> str:
        return (f"Simulator({self.name!r}, now={self.now}, "
                f"processes={len(self._processes)})")
