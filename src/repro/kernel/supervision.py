"""Kernel-level simulation supervision: deadlock and livelock diagnosis.

A simulation that stops making progress used to fail opaquely: the
kernel either drained its queues and returned (silently abandoning
blocked threads) or a caller's wall-clock guard fired a bare
:class:`TimeoutError` with no hint of *what* was stuck.  This module
provides the structured alternative:

* :class:`DeadlockError` — raised when no process is runnable but
  waiters remain; it names every blocked waiter, its wait condition,
  and carries the tail of the kernel's event journal (a ring buffer of
  the most recent notifications) so the last activity before the hang
  is visible in the exception itself.
* :class:`StallError` — the same diagnostic for *livelocks*: the
  kernel is still scheduling (e.g. a free-running clock keeps time
  advancing) but supervised progress has stopped.  It subclasses both
  :class:`DeadlockError` and :class:`TimeoutError`, so existing
  ``except TimeoutError`` guards keep working while gaining the full
  blocked-waiter context.
* :class:`ProgressWatchdog` — trips a :class:`StallError` when a
  progress fingerprint stops changing for a simulated-time budget or a
  wall-clock budget, whichever expires first.

Blocked waiters come from two sources: unfinished
:class:`~repro.kernel.ThreadProcess` coroutines (registered
automatically) and *waiter hooks* higher layers install on the
simulator — e.g. every scripted bus master reports itself, with its
script position and in-flight transactions, while it is not done.
"""

from __future__ import annotations

import dataclasses
import time as _time
import typing

from .simulator import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Simulator


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One event notification recorded in the kernel's ring buffer."""

    time: int
    delta: int
    kind: str        # "immediate" | "delta" | "timed"
    event: str       # name of the notified event

    def __str__(self) -> str:
        return f"t={self.time} d{self.delta} {self.kind:<9} {self.event}"


@dataclasses.dataclass(frozen=True)
class BlockedWaiter:
    """One entity still waiting when the simulation stopped progressing."""

    name: str
    waiting_on: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"{self.name}: waiting on {self.waiting_on}"
        if self.detail:
            text += f" ({self.detail})"
        return text


class DeadlockError(SimulationError):
    """No runnable process, but waiters remain.

    Attributes
    ----------
    kind:
        ``"deadlock"`` (queues drained) or ``"stall"`` (watchdog trip).
    now / delta_count:
        Kernel time and delta count at detection.
    blocked:
        The :class:`BlockedWaiter` records gathered from the simulator.
    journal:
        The most recent :class:`JournalEntry` records (oldest first).
    """

    def __init__(self, message: str, *, kind: str = "deadlock",
                 now: int = 0, delta_count: int = 0,
                 blocked: typing.Sequence[BlockedWaiter] = (),
                 journal: typing.Sequence[JournalEntry] = ()) -> None:
        self.kind = kind
        self.now = now
        self.delta_count = delta_count
        self.blocked = tuple(blocked)
        self.journal = tuple(journal)
        super().__init__(self._format(message))

    def _format(self, message: str) -> str:
        lines = [message]
        if self.blocked:
            lines.append(f"blocked waiter(s) at t={self.now} "
                         f"(delta {self.delta_count}):")
            lines.extend(f"  - {waiter}" for waiter in self.blocked)
        else:
            lines.append(f"no blocked waiters recorded at t={self.now}")
        if self.journal:
            lines.append(f"last {len(self.journal)} event "
                         f"notification(s), oldest first:")
            lines.extend(f"  {entry}" for entry in self.journal)
        return "\n".join(lines)


class StallError(DeadlockError, TimeoutError):
    """A progress budget expired while the kernel was still scheduling.

    Subclasses :class:`TimeoutError` so the pre-supervision guards
    (``except TimeoutError``) continue to catch global hangs — they now
    receive the structured deadlock diagnostic instead of a bare
    timeout message.
    """

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("kind", "stall")
        super().__init__(message, **kwargs)


class ProgressWatchdog:
    """Trips when a progress fingerprint stops changing.

    Parameters
    ----------
    progress:
        Callable returning any equality-comparable fingerprint of
        forward progress (e.g. a tuple of completion counters).  With
        ``None`` the watchdog never observes progress, so the budgets
        measure from :meth:`reset` (attach time) — an absolute budget.
    stall_time:
        Simulated-time budget (kernel time units) without a fingerprint
        change before the watchdog trips.  ``None`` disables it.
    wall_seconds:
        Wall-clock budget without a fingerprint change.  ``None``
        disables it.  Both budgets may be armed; the first to expire
        trips.
    """

    def __init__(self, progress: typing.Optional[
            typing.Callable[[], typing.Any]] = None, *,
            stall_time: typing.Optional[int] = None,
            wall_seconds: typing.Optional[float] = None,
            name: str = "watchdog") -> None:
        if stall_time is not None and stall_time <= 0:
            raise ValueError(f"stall_time must be positive: {stall_time}")
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError(
                f"wall_seconds must be positive: {wall_seconds}")
        self.progress = progress
        self.stall_time = stall_time
        self.wall_seconds = wall_seconds
        self.name = name
        self._fingerprint: typing.Any = None
        self._since_time = 0
        self._since_wall = _time.monotonic()
        self._primed = False

    def reset(self, simulator: "Simulator") -> None:
        """Restart both budgets (called when the watchdog is attached)."""
        self._fingerprint = (None if self.progress is None
                             else self.progress())
        self._since_time = simulator.now
        self._since_wall = _time.monotonic()
        self._primed = True

    def check(self, simulator: "Simulator") -> None:
        """Raise :class:`StallError` if a budget expired without progress."""
        if simulator.powered_off:
            # a powered-off card is halted, not stalled: power_off() is
            # a clean cooperative end of the run, and any budget that
            # expires afterwards measured a dead simulator
            return
        if not self._primed:
            self.reset(simulator)
            return
        if self.progress is not None:
            fingerprint = self.progress()
            if fingerprint != self._fingerprint:
                self._fingerprint = fingerprint
                self._since_time = simulator.now
                self._since_wall = _time.monotonic()
                return
        if (self.stall_time is not None
                and simulator.now - self._since_time > self.stall_time):
            raise simulator.diagnose(
                f"watchdog {self.name!r}: no progress for "
                f"{simulator.now - self._since_time} time units "
                f"(budget {self.stall_time})",
                kind="stall", exc_class=StallError)
        if (self.wall_seconds is not None
                and _time.monotonic() - self._since_wall
                > self.wall_seconds):
            raise simulator.diagnose(
                f"watchdog {self.name!r}: no progress for "
                f"{_time.monotonic() - self._since_wall:.1f}s of wall "
                f"clock (budget {self.wall_seconds}s)",
                kind="stall", exc_class=StallError)
