#!/usr/bin/env python3
"""The paper's §4.3 case study as a runnable script.

Refines the untimed Java Card VM onto the energy-aware layer-1 bus
(Figure 7) and sweeps the HW/SW interface between the bytecode
interpreter and the hardware stack coprocessor: register organisation,
address map and bus transaction width.  Prints the exploration table
and the winning configuration.

Run:  python examples/javacard_exploration.py
"""

from repro.javacard import (BytecodeInterpreter, FunctionalStack,
                            benchmark_package, run_exploration)
from repro.javacard.workloads import BENCHMARKS


def main() -> None:
    print("=== functional (untimed) java card VM, Figure 7(a) ===")
    interpreter = BytecodeInterpreter(benchmark_package(),
                                      FunctionalStack())
    for name, arguments, reference in BENCHMARKS:
        result = interpreter.run(name, arguments)
        check = "ok" if result == reference(*arguments) else "MISMATCH"
        print(f"  {name:<20} {str(arguments):<8} -> {result:>6}  [{check}]")
    print(f"  bytecodes executed: {interpreter.instructions_executed}")
    print()
    print("=== refined model, Figure 7(b): interface exploration ===")
    print("(this runs a gate-level characterisation first; ~2 s)")
    exploration = run_exploration()
    print()
    print(exploration.format())
    print()
    best = exploration.best_by_energy()
    worst = max(exploration.rows, key=lambda row: row.bus_energy_pj)
    saving = 100.0 * (1 - best.bus_energy_pj / worst.bus_energy_pj)
    print(f"picking {best.config.name!r} over {worst.config.name!r} "
          f"saves {saving:.1f}% bus energy")


if __name__ == "__main__":
    main()
