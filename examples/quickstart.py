#!/usr/bin/env python3
"""Quickstart: a smart card platform, a bus, and an energy estimate.

Builds the Figure-1 smart card platform around the cycle-accurate
layer-1 EC bus with its energy model attached, runs a short assembly
program on the MIPS-like core, and prints what a designer gets out:
cycle counts, per-group bus energy, and the peripherals' ledgers.

Run:  python examples/quickstart.py
"""

from repro.power import Layer1PowerModel, default_table
from repro.power.units import supply_current_ma
from repro.soc import SmartCardPlatform

PROGRAM = """
        lui   $s0, 0x0030          # scratchpad RAM
        lui   $s1, 0x0020          # EEPROM

        # fill eight RAM words with a pattern
        addiu $t0, $zero, 0
        addiu $t1, $zero, 8
fill:   sll   $t2, $t0, 4
        xori  $t2, $t2, 0x00FF
        sll   $t3, $t0, 2
        addu  $t3, $t3, $s0
        sw    $t2, 0($t3)
        addiu $t0, $t0, 1
        bne   $t0, $t1, fill

        # persist the first two words into EEPROM
        lw    $t4, 0($s0)
        sw    $t4, 0($s1)
        lw    $t5, 4($s0)
        sw    $t5, 4($s1)
        halt
"""


def main() -> None:
    power_model = Layer1PowerModel(default_table())
    platform = SmartCardPlatform(bus_layer=1, power_model=power_model,
                                 with_cpu=True)
    platform.load_assembly(PROGRAM)
    platform.cpu.run_to_halt(max_cycles=100_000)

    bus = platform.bus
    print("=== quickstart: smart card transaction on the layer-1 bus ===")
    print(f"instructions executed : {platform.cpu.instructions_executed}")
    print(f"bus cycles simulated  : {bus.cycle}")
    print(f"bus transactions      : {bus.transactions_completed}")
    print(f"EEPROM programmings   : {platform.eeprom.programming_operations}")
    print()
    print("bus energy by signal group:")
    for group, energy in sorted(power_model.group_energy_pj.items(),
                                key=lambda item: -item[1]):
        print(f"  {group.value:<10} {energy:10.2f} pJ")
    total = power_model.total_energy_pj
    print(f"  {'total':<10} {total:10.2f} pJ")
    duration_ps = bus.cycle * platform.clock.period
    print(f"average bus supply current: "
          f"{supply_current_ma(total, duration_ps):.4f} mA "
          f"(contact-less budget check)")
    print()
    print("peripheral energy ledgers:")
    for peripheral in (platform.uart, platform.timers, platform.rng,
                       platform.intc):
        print(f"  {peripheral.name:<8} {peripheral.energy_pj:10.2f} pJ "
              f"({sum(peripheral.event_counts.values())} events)")


if __name__ == "__main__":
    main()
