#!/usr/bin/env python3
"""Hierarchical accuracy study: the paper's Tables 1 and 2 end to end.

Walks the full §4.1 methodology:

1. characterise the TLM energy models against the gate-level reference
   (EC-spec suite + random mix through the RTL bus + Diesel),
2. execute the assembly test program on the platform and trace the bus,
3. replay the trace on all three model layers,
4. print timing and energy accuracy tables next to the paper's rows.

Run:  python examples/accuracy_study.py
"""

from repro.experiments import (characterization, run_table1, run_table2)
from repro.experiments.common import test_program_trace
from repro.experiments.report import PAPER_TABLE1, PAPER_TABLE2
from repro.power.characterize import coefficient_report


def main() -> None:
    print("=== step 1: gate-level power characterisation ===")
    result = characterization()
    print(result.report.format_summary())
    print()
    print(coefficient_report(result.table))
    print()
    print("=== step 2: trace the assembly test program ===")
    trace = test_program_trace()
    print(f"captured {len(trace)} transactions: {trace.summary()}")
    print()
    print("=== step 3/4: replay on every layer and compare ===")
    table1 = run_table1()
    print(table1.format())
    print(PAPER_TABLE1)
    print()
    table2 = run_table2()
    print(table2.format())
    print(PAPER_TABLE2)


if __name__ == "__main__":
    main()
